#include "stores/kv_store.h"

#include "common/strings.h"

namespace estocada::stores {

KeyValueStore::KeyValueStore(CostProfile profile) : profile_(profile) {}

Status KeyValueStore::CreateCollection(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (collections_.count(name)) {
    return Status::AlreadyExists(
        StrCat("collection '", name, "' already exists"));
  }
  collections_.emplace(name, Collection{});
  return Status::OK();
}

Status KeyValueStore::DropCollection(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (collections_.erase(name) == 0) {
    return Status::NotFound(StrCat("collection '", name, "' does not exist"));
  }
  return Status::OK();
}

bool KeyValueStore::HasCollection(const std::string& name) const {
  return collections_.count(name) > 0;
}

Result<const KeyValueStore::Collection*> KeyValueStore::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound(StrCat("collection '", name, "' does not exist"));
  }
  return &it->second;
}

void KeyValueStore::Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
                           uint64_t lookups, uint64_t returned) const {
  StoreStats delta;
  delta.operations = ops;
  delta.rows_scanned = scanned;
  delta.index_lookups = lookups;
  delta.rows_returned = returned;
  delta.simulated_cost =
      profile_.per_operation * static_cast<double>(ops) +
      profile_.per_row_scanned * static_cast<double>(scanned) +
      profile_.per_index_lookup * static_cast<double>(lookups) +
      profile_.per_row_returned * static_cast<double>(returned);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lifetime_stats_.Add(delta);
  }
  if (stats != nullptr) stats->Add(delta);
}

Status KeyValueStore::Put(const std::string& collection, const std::string& key,
                          std::string value) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound(
        StrCat("collection '", collection, "' does not exist"));
  }
  Charge(nullptr, 1, 0, 1, 0);
  it->second.Put(key, std::move(value));
  return Status::OK();
}

Status KeyValueStore::BulkLoad(
    const std::string& collection,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound(
        StrCat("collection '", collection, "' does not exist"));
  }
  // Cost parity with entries.size() individual Puts.
  Charge(nullptr, entries.size(), 0, entries.size(), 0);
  it->second.BulkLoad(entries);
  return it->second.Verify();
}

Result<std::string> KeyValueStore::Get(const std::string& collection,
                                       const std::string& key,
                                       StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Collection* c, GetCollection(collection));
  Charge(stats, 1, 0, 1, 0);
  const std::string* v = c->Find(key);
  if (v == nullptr) {
    return Status::NotFound(
        StrCat("key '", key, "' not in collection '", collection, "'"));
  }
  Charge(stats, 0, 0, 0, 1);
  return *v;
}

Result<std::vector<std::optional<std::string>>> KeyValueStore::MGet(
    const std::string& collection, const std::vector<std::string>& keys,
    StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Collection* c, GetCollection(collection));
  std::vector<std::optional<std::string>> out;
  out.reserve(keys.size());
  uint64_t returned = 0;
  for (const std::string& k : keys) {
    const std::string* v = c->Find(k);
    if (v == nullptr) {
      out.emplace_back(std::nullopt);
    } else {
      out.emplace_back(*v);
      ++returned;
    }
  }
  Charge(stats, 1, 0, keys.size(), returned);
  return out;
}

Status KeyValueStore::Delete(const std::string& collection,
                             const std::string& key) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound(
        StrCat("collection '", collection, "' does not exist"));
  }
  Charge(nullptr, 1, 0, 1, 0);
  if (!it->second.Erase(key)) {
    return Status::NotFound(
        StrCat("key '", key, "' not in collection '", collection, "'"));
  }
  return Status::OK();
}

Result<std::vector<std::pair<std::string, std::string>>> KeyValueStore::Scan(
    const std::string& collection, StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Collection* c, GetCollection(collection));
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(c->size());
  c->ForEach([&out](const std::string& k, const std::string& v) {
    out.emplace_back(k, v);
  });
  Charge(stats, 1, c->size(), 0, c->size());
  return out;
}

Result<size_t> KeyValueStore::Size(const std::string& collection) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Collection* c, GetCollection(collection));
  return c->size();
}

}  // namespace estocada::stores
