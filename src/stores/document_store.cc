#include "stores/document_store.h"

#include <algorithm>

#include "common/strings.h"

namespace estocada::stores {

using json::JsonValue;

namespace {

bool CompareWithOp(const JsonValue& lhs, DocOp op, const JsonValue& rhs) {
  // Numbers compare numerically across int/double; other kinds compare
  // only within their own kind.
  int c;
  if (lhs.is_number() && rhs.is_number()) {
    double a = lhs.as_double();
    double b = rhs.as_double();
    c = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lhs.kind() != rhs.kind()) {
    return false;
  } else {
    c = JsonValue::Compare(lhs, rhs);
  }
  switch (op) {
    case DocOp::kEq:
      return c == 0;
    case DocOp::kLt:
      return c < 0;
    case DocOp::kLe:
      return c <= 0;
    case DocOp::kGt:
      return c > 0;
    case DocOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

bool MatchesPredicate(const JsonValue& doc, const PathPredicate& pred) {
  const JsonValue* v = doc.FindPath(pred.path);
  if (v == nullptr) return false;
  if (v->is_array()) {
    for (const JsonValue& e : v->array()) {
      if (CompareWithOp(e, pred.op, pred.value)) return true;
    }
    return false;
  }
  return CompareWithOp(*v, pred.op, pred.value);
}

DocumentStore::DocumentStore(CostProfile profile) : profile_(profile) {}

Status DocumentStore::CreateCollection(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (collections_.count(name)) {
    return Status::AlreadyExists(
        StrCat("collection '", name, "' already exists"));
  }
  collections_.emplace(name, Collection{});
  return Status::OK();
}

Status DocumentStore::DropCollection(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (collections_.erase(name) == 0) {
    return Status::NotFound(StrCat("collection '", name, "' does not exist"));
  }
  return Status::OK();
}

bool DocumentStore::HasCollection(const std::string& name) const {
  return collections_.count(name) > 0;
}

Result<const DocumentStore::Collection*> DocumentStore::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound(StrCat("collection '", name, "' does not exist"));
  }
  return &it->second;
}

Result<DocumentStore::Collection*> DocumentStore::GetMutableCollection(
    const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound(StrCat("collection '", name, "' does not exist"));
  }
  return &it->second;
}

void DocumentStore::Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
                           uint64_t lookups, uint64_t returned) const {
  StoreStats delta;
  delta.operations = ops;
  delta.rows_scanned = scanned;
  delta.index_lookups = lookups;
  delta.rows_returned = returned;
  delta.simulated_cost =
      profile_.per_operation * static_cast<double>(ops) +
      profile_.per_row_scanned * static_cast<double>(scanned) +
      profile_.per_index_lookup * static_cast<double>(lookups) +
      profile_.per_row_returned * static_cast<double>(returned);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lifetime_stats_.Add(delta);
  }
  if (stats != nullptr) stats->Add(delta);
}

namespace {

/// Index keys for the value at `path` within `doc`: one per array element
/// (multikey) or a single one for scalars/objects. Empty if path missing.
std::vector<std::string> IndexKeysFor(const JsonValue& doc,
                                      const std::string& path) {
  const JsonValue* v = doc.FindPath(path);
  if (v == nullptr) return {};
  std::vector<std::string> keys;
  if (v->is_array()) {
    for (const JsonValue& e : v->array()) keys.push_back(e.Serialize());
  } else {
    keys.push_back(v->Serialize());
  }
  return keys;
}

}  // namespace

Result<std::string> DocumentStore::Insert(const std::string& collection,
                                          JsonValue document) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  ESTOCADA_ASSIGN_OR_RETURN(Collection * c, GetMutableCollection(collection));
  std::string id;
  if (const JsonValue* idv = document.Find("_id");
      idv != nullptr && idv->is_string()) {
    id = idv->string_value();
  } else {
    id = StrCat("doc", c->next_generated_id++);
    if (document.is_object()) {
      document.Set("_id", JsonValue::Str(id));
    }
  }
  if (c->docs.count(id)) {
    return Status::AlreadyExists(
        StrCat("document '", id, "' already in collection '", collection,
               "'"));
  }
  Charge(nullptr, 1, 0, 1, 0);
  for (auto& [path, index] : c->path_indexes) {
    for (const std::string& key : IndexKeysFor(document, path)) {
      index[key].push_back(id);
    }
  }
  c->docs.emplace(id, std::move(document));
  return id;
}

Result<JsonValue> DocumentStore::FindById(const std::string& collection,
                                          const std::string& id,
                                          StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Collection* c, GetCollection(collection));
  Charge(stats, 1, 0, 1, 0);
  auto it = c->docs.find(id);
  if (it == c->docs.end()) {
    return Status::NotFound(
        StrCat("document '", id, "' not in collection '", collection, "'"));
  }
  Charge(stats, 0, 0, 0, 1);
  return it->second;
}

Result<std::vector<std::optional<JsonValue>>> DocumentStore::FindByIdMany(
    const std::string& collection, const std::vector<std::string>& ids,
    StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Collection* c, GetCollection(collection));
  std::vector<std::optional<JsonValue>> out;
  out.reserve(ids.size());
  uint64_t returned = 0;
  for (const std::string& id : ids) {
    auto it = c->docs.find(id);
    if (it == c->docs.end()) {
      out.emplace_back(std::nullopt);
    } else {
      out.emplace_back(it->second);
      ++returned;
    }
  }
  Charge(stats, 1, 0, ids.size(), returned);
  return out;
}

Result<std::vector<JsonValue>> DocumentStore::Find(
    const std::string& collection,
    const std::vector<PathPredicate>& predicates, StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Collection* c, GetCollection(collection));
  uint64_t scanned = 0;
  uint64_t lookups = 0;
  std::vector<JsonValue> out;

  // Pick an indexed equality predicate if one exists.
  const PathPredicate* indexed = nullptr;
  for (const PathPredicate& p : predicates) {
    if (p.op == DocOp::kEq && c->path_indexes.count(p.path)) {
      indexed = &p;
      break;
    }
  }
  auto matches_all = [&](const JsonValue& doc) {
    for (const PathPredicate& p : predicates) {
      if (!MatchesPredicate(doc, p)) return false;
    }
    return true;
  };
  if (indexed != nullptr) {
    ++lookups;
    const auto& index = c->path_indexes.at(indexed->path);
    auto hit = index.find(indexed->value.Serialize());
    if (hit != index.end()) {
      for (const std::string& id : hit->second) {
        auto dit = c->docs.find(id);
        if (dit == c->docs.end()) continue;  // Removed since indexing.
        ++scanned;
        if (matches_all(dit->second)) out.push_back(dit->second);
      }
    }
  } else {
    for (const auto& [id, doc] : c->docs) {
      ++scanned;
      if (matches_all(doc)) out.push_back(doc);
    }
  }
  Charge(stats, 1, scanned, lookups, out.size());
  return out;
}

Status DocumentStore::Remove(const std::string& collection,
                             const std::string& id) {
  ESTOCADA_ASSIGN_OR_RETURN(Collection * c, GetMutableCollection(collection));
  auto it = c->docs.find(id);
  if (it == c->docs.end()) {
    return Status::NotFound(
        StrCat("document '", id, "' not in collection '", collection, "'"));
  }
  Charge(nullptr, 1, 0, 1, 0);
  for (auto& [path, index] : c->path_indexes) {
    for (const std::string& key : IndexKeysFor(it->second, path)) {
      auto hit = index.find(key);
      if (hit == index.end()) continue;
      auto& ids = hit->second;
      ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    }
  }
  c->docs.erase(it);
  return Status::OK();
}

Status DocumentStore::CreatePathIndex(const std::string& collection,
                                      const std::string& path) {
  ESTOCADA_ASSIGN_OR_RETURN(Collection * c, GetMutableCollection(collection));
  if (c->path_indexes.count(path)) {
    return Status::AlreadyExists(
        StrCat("index on '", path, "' already exists in '", collection, "'"));
  }
  auto& index = c->path_indexes[path];
  for (const auto& [id, doc] : c->docs) {
    for (const std::string& key : IndexKeysFor(doc, path)) {
      index[key].push_back(id);
    }
  }
  return Status::OK();
}

Result<size_t> DocumentStore::Count(const std::string& collection) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Collection* c, GetCollection(collection));
  return c->docs.size();
}

}  // namespace estocada::stores
