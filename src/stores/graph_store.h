#ifndef ESTOCADA_STORES_GRAPH_STORE_H_
#define ESTOCADA_STORES_GRAPH_STORE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/value.h"
#include "stores/fault.h"
#include "stores/store_stats.h"

namespace estocada::stores {

/// Which adjacency index anchors a neighbor expansion: `kOut` follows
/// rows whose *first* position equals the anchor (out-edges of a node,
/// properties of an id), `kIn` rows whose *last* position equals it
/// (in-edges — reverse traversal).
enum class ExpandDirection {
  kOut,
  kIn,
};

/// Property-graph store standing in for a Neo4j-class adjacency-list
/// engine: named graphs hold fixed-arity rows of engine::Values, and
/// every graph maintains adjacency indexes on its first position
/// (out-edges: src of Edge(src,label,dst), id of NodeProp(id,key,value)),
/// its last position (in-edges: dst), and — for arity ≥ 3 — the labeled
/// composites (first,second) / (last,second), so `Edge(src,label,dst)`
/// expansion restricted to one label is a single bucket probe. The only
/// cheap ways in are by anchor node (the access pattern a graph engine
/// is built around); a full Scan exists for bulk export but costs
/// proportionally to the graph. Node/edge property maps are just more
/// graphs anchored by id, sharing the same indexes.
class GraphStore : public FaultInjectable {
 public:
  /// Default profile models a pointer-chasing native engine: round trips
  /// are cheap, anchored bucket probes cheaper than B-tree lookups, but
  /// unanchored scans cost more per row than a columnar store.
  explicit GraphStore(CostProfile profile = {/*per_operation=*/6.0,
                                             /*per_row_scanned=*/0.04,
                                             /*per_index_lookup=*/0.2,
                                             /*per_row_returned=*/0.06});

  Status CreateGraph(const std::string& name, size_t arity);
  Status DropGraph(const std::string& name);
  bool HasGraph(const std::string& name) const;

  /// Appends one row, updating every adjacency index.
  Status Insert(const std::string& graph, engine::Row row);

  /// Bulk append (one write-fault check for the whole batch, charged one
  /// operation plus one index touch per row, like the other bulk loads).
  Status InsertBatch(const std::string& graph, std::vector<engine::Row> rows);

  /// Neighbor expansion: all rows anchored at `anchor` on the first
  /// (kOut) or last (kIn) position, optionally restricted to rows whose
  /// second position equals `label` (arity ≥ 3 only). One bucket probe.
  Result<std::vector<engine::Row>> Expand(
      const std::string& graph, ExpandDirection direction,
      const engine::Value& anchor,
      const std::optional<engine::Value>& label = std::nullopt,
      StoreStats* stats = nullptr) const;

  /// General positional pattern match: `pattern[i]` set means position i
  /// must equal it. Served through the adjacency indexes whenever the
  /// first or last position is bound (remaining bound positions become
  /// residual filters over the bucket); a filtered full scan otherwise.
  Result<std::vector<engine::Row>> Match(
      const std::string& graph,
      const std::vector<std::optional<engine::Value>>& pattern,
      StoreStats* stats = nullptr) const;

  /// Paged Match for batch-at-a-time consumers (GraphFetchOperator):
  /// appends up to `limit` matching rows to `out`, resuming from
  /// `*cursor` (an opaque position — start at 0, never modify between
  /// calls). Returns true while more rows may remain. Each page is one
  /// charged operation; the index probe is charged on the first page.
  Result<bool> MatchPage(const std::string& graph,
                         const std::vector<std::optional<engine::Value>>& pattern,
                         size_t limit, size_t* cursor,
                         std::vector<engine::Row>* out,
                         StoreStats* stats = nullptr) const;

  /// Full dump in insertion order. Expensive by design.
  Result<std::vector<engine::Row>> Scan(const std::string& graph,
                                        StoreStats* stats = nullptr) const;

  Result<size_t> RowCount(const std::string& graph) const;
  Result<size_t> Arity(const std::string& graph) const;

  /// Snapshot of the stats accumulated across all calls. Reads under the
  /// stats mutex so concurrent query threads never observe torn counters.
  StoreStats lifetime_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return lifetime_stats_;
  }

 private:
  using Index =
      std::unordered_map<engine::Row, std::vector<size_t>, engine::RowHash>;

  struct Graph {
    size_t arity = 0;
    std::vector<engine::Row> rows;
    Index out_index;        ///< {row[0]} -> row indices, insertion order.
    Index in_index;         ///< {row[last]} -> row indices.
    Index out_label_index;  ///< {row[0], row[1]} (arity >= 3).
    Index in_label_index;   ///< {row[last], row[1]} (arity >= 3, last != 1).
  };

  Result<const Graph*> GetGraph(const std::string& name) const;
  Result<Graph*> GetMutableGraph(const std::string& name);

  static void IndexRow(Graph* g, size_t row_idx);

  /// Shared Match/MatchPage core; no fault injection (callers inject).
  Result<bool> MatchInternal(const Graph& g,
                             const std::vector<std::optional<engine::Value>>& pattern,
                             size_t limit, size_t* cursor,
                             std::vector<engine::Row>* out,
                             StoreStats* stats) const;

  void Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
              uint64_t lookups, uint64_t returned) const;

  CostProfile profile_;
  std::map<std::string, Graph> graphs_;
  mutable StoreStats lifetime_stats_;
  mutable std::mutex stats_mu_;
};

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_GRAPH_STORE_H_
