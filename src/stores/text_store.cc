#include "stores/text_store.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace estocada::stores {

TextStore::TextStore(CostProfile profile) : profile_(profile) {}

std::vector<std::string> TextStore::Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Status TextStore::CreateCore(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (cores_.count(name)) {
    return Status::AlreadyExists(StrCat("core '", name, "' already exists"));
  }
  cores_.emplace(name, Core{});
  return Status::OK();
}

Status TextStore::DropCore(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (cores_.erase(name) == 0) {
    return Status::NotFound(StrCat("core '", name, "' does not exist"));
  }
  return Status::OK();
}

bool TextStore::HasCore(const std::string& name) const {
  return cores_.count(name) > 0;
}

Result<const TextStore::Core*> TextStore::GetCore(
    const std::string& name) const {
  auto it = cores_.find(name);
  if (it == cores_.end()) {
    return Status::NotFound(StrCat("core '", name, "' does not exist"));
  }
  return &it->second;
}

void TextStore::Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
                       uint64_t lookups, uint64_t returned) const {
  StoreStats delta;
  delta.operations = ops;
  delta.rows_scanned = scanned;
  delta.index_lookups = lookups;
  delta.rows_returned = returned;
  delta.simulated_cost =
      profile_.per_operation * static_cast<double>(ops) +
      profile_.per_row_scanned * static_cast<double>(scanned) +
      profile_.per_index_lookup * static_cast<double>(lookups) +
      profile_.per_row_returned * static_cast<double>(returned);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lifetime_stats_.Add(delta);
  }
  if (stats != nullptr) stats->Add(delta);
}

Status TextStore::AddDocument(
    const std::string& core, const std::string& doc_id,
    const std::map<std::string, std::string>& fields) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  auto it = cores_.find(core);
  if (it == cores_.end()) {
    return Status::NotFound(StrCat("core '", core, "' does not exist"));
  }
  Core& c = it->second;
  if (c.docs.count(doc_id)) {
    return Status::AlreadyExists(
        StrCat("document '", doc_id, "' already in core '", core, "'"));
  }
  Charge(nullptr, 1, 0, 1, 0);
  std::vector<std::string> seen;  // Avoid duplicate postings per doc.
  for (const auto& [field, text] : fields) {
    for (const std::string& tok : Tokenize(text)) {
      if (std::find(seen.begin(), seen.end(), tok) == seen.end()) {
        c.inverted[tok].push_back(doc_id);
        seen.push_back(tok);
      }
    }
  }
  c.docs.emplace(doc_id, fields);
  return Status::OK();
}

Result<std::vector<std::string>> TextStore::Search(
    const std::string& core, const std::vector<std::string>& terms,
    StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Core* c, GetCore(core));
  if (terms.empty()) {
    return Status::InvalidArgument("search needs at least one term");
  }
  // Normalize the query terms the same way documents were tokenized.
  std::vector<std::string> norm;
  for (const std::string& t : terms) {
    for (const std::string& tok : Tokenize(t)) norm.push_back(tok);
  }
  if (norm.empty()) {
    return Status::InvalidArgument("search terms tokenize to nothing");
  }
  uint64_t scanned = 0;
  std::vector<std::string> result;
  bool first = true;
  for (const std::string& term : norm) {
    auto hit = c->inverted.find(term);
    std::vector<std::string> postings =
        hit == c->inverted.end() ? std::vector<std::string>{} : hit->second;
    std::sort(postings.begin(), postings.end());
    scanned += postings.size();
    if (first) {
      result = std::move(postings);
      first = false;
    } else {
      std::vector<std::string> merged;
      std::set_intersection(result.begin(), result.end(), postings.begin(),
                            postings.end(), std::back_inserter(merged));
      result = std::move(merged);
    }
    if (result.empty()) break;
  }
  Charge(stats, 1, scanned, norm.size(), result.size());
  return result;
}

Result<std::vector<std::vector<std::string>>> TextStore::SearchMany(
    const std::string& core,
    const std::vector<std::vector<std::string>>& queries,
    StoreStats* stats) const {
  std::vector<std::vector<std::string>> out;
  out.reserve(queries.size());
  for (const std::vector<std::string>& terms : queries) {
    ESTOCADA_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                              Search(core, terms, stats));
    out.push_back(std::move(ids));
  }
  return out;
}

Result<std::map<std::string, std::string>> TextStore::GetDocument(
    const std::string& core, const std::string& doc_id,
    StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Core* c, GetCore(core));
  Charge(stats, 1, 0, 1, 0);
  auto it = c->docs.find(doc_id);
  if (it == c->docs.end()) {
    return Status::NotFound(
        StrCat("document '", doc_id, "' not in core '", core, "'"));
  }
  Charge(stats, 0, 0, 0, 1);
  return it->second;
}

Result<size_t> TextStore::DocumentCount(const std::string& core) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Core* c, GetCore(core));
  return c->docs.size();
}

}  // namespace estocada::stores
