#include "stores/relational_store.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/strings.h"

namespace estocada::stores {

using engine::Row;
using engine::Value;

namespace {

bool ValueMatchesType(const Value& v, ColumnType t) {
  if (v.is_null()) return true;  // SQL null fits any column.
  switch (t) {
    case ColumnType::kInt:
      return v.is_int();
    case ColumnType::kReal:
      return v.is_real() || v.is_int();  // Ints widen to real columns.
    case ColumnType::kStr:
      return v.is_string();
    case ColumnType::kBool:
      return v.is_bool();
    case ColumnType::kAny:
      return !v.is_list();  // Any scalar; lists are serialized upstream.
  }
  return false;
}

}  // namespace

std::string SpjQuery::ToString() const {
  std::string sql = "SELECT ";
  sql += StrJoinMapped(select, ", ", [](const ColumnRef& c) {
    return StrCat(c.alias, ".", c.column);
  });
  sql += " FROM ";
  sql += StrJoinMapped(from, ", ", [](const TableRef& t) {
    return StrCat(t.table, " ", t.alias);
  });
  std::vector<std::string> conds;
  for (const JoinPredicate& j : joins) {
    conds.push_back(StrCat(j.left.alias, ".", j.left.column, " = ",
                           j.right.alias, ".", j.right.column));
  }
  for (const FilterPredicate& f : filters) {
    std::string lit = f.value.is_string() ? StrCat("'", f.value.ToString(), "'")
                                          : f.value.ToString();
    conds.push_back(StrCat(f.column.alias, ".", f.column.column, " = ", lit));
  }
  if (!conds.empty()) {
    sql += " WHERE ";
    sql += StrJoin(conds, " AND ");
  }
  return sql;
}

std::optional<size_t> RelationalStore::Table::ColumnIndex(
    const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return i;
  }
  return std::nullopt;
}

RelationalStore::RelationalStore(CostProfile profile) : profile_(profile) {}

Status RelationalStore::CreateTable(const std::string& name,
                                    std::vector<ColumnDef> columns,
                                    std::vector<std::string> primary_key) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (tables_.count(name)) {
    return Status::AlreadyExists(StrCat("table '", name, "' already exists"));
  }
  if (columns.empty()) {
    return Status::InvalidArgument("a table needs at least one column");
  }
  Table t;
  t.columns = std::move(columns);
  std::unordered_set<std::string> seen;
  for (const ColumnDef& c : t.columns) {
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument(
          StrCat("duplicate column '", c.name, "' in table '", name, "'"));
    }
  }
  for (const std::string& pk : primary_key) {
    auto idx = t.ColumnIndex(pk);
    if (!idx) {
      return Status::InvalidArgument(
          StrCat("primary key column '", pk, "' not in table '", name, "'"));
    }
    t.primary_key.push_back(*idx);
  }
  tables_.emplace(name, std::move(t));
  return Status::OK();
}

Status RelationalStore::DropTable(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (tables_.erase(name) == 0) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  return Status::OK();
}

bool RelationalStore::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const RelationalStore::Table*> RelationalStore::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  return &it->second;
}

Result<RelationalStore::Table*> RelationalStore::GetMutableTable(
    const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  return &it->second;
}

Status RelationalStore::Insert(const std::string& table, Row row) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  ESTOCADA_ASSIGN_OR_RETURN(Table * t, GetMutableTable(table));
  if (row.size() != t->columns.size()) {
    return Status::InvalidArgument(
        StrCat("table '", table, "' expects ", t->columns.size(),
               " columns, got ", row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueMatchesType(row[i], t->columns[i].type)) {
      return Status::InvalidArgument(
          StrCat("column '", t->columns[i].name, "' of table '", table,
                 "': type mismatch for value ", row[i].ToString()));
    }
  }
  if (!t->primary_key.empty()) {
    Row key;
    for (size_t k : t->primary_key) key.push_back(row[k]);
    if (t->pk_index.count(key)) {
      return Status::AlreadyExists(
          StrCat("duplicate primary key ", engine::RowToString(key),
                 " in table '", table, "'"));
    }
    t->pk_index.emplace(std::move(key), t->rows.size());
  }
  size_t row_idx = t->rows.size();
  for (auto& [col, index] : t->indexes) {
    index[row[col]].push_back(row_idx);
  }
  t->rows.push_back(std::move(row));
  return Status::OK();
}

Status RelationalStore::CreateIndex(const std::string& table,
                                    const std::string& column) {
  ESTOCADA_ASSIGN_OR_RETURN(Table * t, GetMutableTable(table));
  auto col = t->ColumnIndex(column);
  if (!col) {
    return Status::NotFound(
        StrCat("column '", column, "' not in table '", table, "'"));
  }
  if (t->indexes.count(*col)) {
    return Status::AlreadyExists(
        StrCat("index on ", table, ".", column, " already exists"));
  }
  auto& index = t->indexes[*col];
  for (size_t i = 0; i < t->rows.size(); ++i) {
    index[t->rows[i][*col]].push_back(i);
  }
  return Status::OK();
}

Result<size_t> RelationalStore::RowCount(const std::string& table) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Table* t, GetTable(table));
  return t->rows.size();
}

Result<std::vector<std::string>> RelationalStore::Columns(
    const std::string& table) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Table* t, GetTable(table));
  std::vector<std::string> out;
  out.reserve(t->columns.size());
  for (const ColumnDef& c : t->columns) out.push_back(c.name);
  return out;
}

void RelationalStore::Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
                             uint64_t lookups, uint64_t returned) const {
  StoreStats delta;
  delta.operations = ops;
  delta.rows_scanned = scanned;
  delta.index_lookups = lookups;
  delta.rows_returned = returned;
  delta.simulated_cost =
      profile_.per_operation * static_cast<double>(ops) +
      profile_.per_row_scanned * static_cast<double>(scanned) +
      profile_.per_index_lookup * static_cast<double>(lookups) +
      profile_.per_row_returned * static_cast<double>(returned);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lifetime_stats_.Add(delta);
  }
  if (stats != nullptr) stats->Add(delta);
}

Result<std::vector<Row>> RelationalStore::Scan(const std::string& table,
                                               StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Table* t, GetTable(table));
  Charge(stats, 1, t->rows.size(), 0, t->rows.size());
  return t->rows;
}

Result<std::vector<Row>> RelationalStore::Lookup(const std::string& table,
                                                 const std::string& column,
                                                 const engine::Value& value,
                                                 StoreStats* stats) const {
  SpjQuery q;
  q.from.push_back({table, "t"});
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(table));
  for (const std::string& c : cols) q.select.push_back({"t", c});
  q.filters.push_back({{"t", column}, value});
  return Execute(q, stats);
}

Result<std::vector<std::vector<Row>>> RelationalStore::LookupMany(
    const std::string& table, const std::string& column,
    const std::vector<engine::Value>& values, StoreStats* stats) const {
  std::vector<std::vector<Row>> out;
  out.reserve(values.size());
  for (const engine::Value& v : values) {
    ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              Lookup(table, column, v, stats));
    out.push_back(std::move(rows));
  }
  return out;
}

Result<std::vector<Row>> RelationalStore::Execute(const SpjQuery& query,
                                                  StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  if (query.from.empty()) {
    return Status::InvalidArgument("SPJ query needs at least one table");
  }
  // Resolve aliases.
  struct Resolved {
    const Table* table;
    std::string alias;
  };
  std::map<std::string, size_t> alias_pos;
  std::vector<Resolved> sources;
  for (const auto& ref : query.from) {
    ESTOCADA_ASSIGN_OR_RETURN(const Table* t, GetTable(ref.table));
    if (!alias_pos.emplace(ref.alias, sources.size()).second) {
      return Status::InvalidArgument(
          StrCat("duplicate alias '", ref.alias, "'"));
    }
    sources.push_back({t, ref.alias});
  }
  auto resolve = [&](const SpjQuery::ColumnRef& c)
      -> Result<std::pair<size_t, size_t>> {
    auto it = alias_pos.find(c.alias);
    if (it == alias_pos.end()) {
      return Status::NotFound(StrCat("unknown alias '", c.alias, "'"));
    }
    auto col = sources[it->second].table->ColumnIndex(c.column);
    if (!col) {
      return Status::NotFound(
          StrCat("unknown column '", c.alias, ".", c.column, "'"));
    }
    return std::make_pair(it->second, *col);
  };

  // Pre-resolve predicates and outputs.
  struct RJoin {
    size_t lsrc, lcol, rsrc, rcol;
  };
  struct RFilter {
    size_t src, col;
    Value value;
  };
  struct ROut {
    size_t src, col;
  };
  std::vector<RJoin> joins;
  for (const auto& j : query.joins) {
    ESTOCADA_ASSIGN_OR_RETURN(auto l, resolve(j.left));
    ESTOCADA_ASSIGN_OR_RETURN(auto r, resolve(j.right));
    joins.push_back({l.first, l.second, r.first, r.second});
  }
  std::vector<RFilter> filters;
  for (const auto& f : query.filters) {
    ESTOCADA_ASSIGN_OR_RETURN(auto c, resolve(f.column));
    filters.push_back({c.first, c.second, f.value});
  }
  std::vector<ROut> outputs;
  for (const auto& s : query.select) {
    ESTOCADA_ASSIGN_OR_RETURN(auto c, resolve(s));
    outputs.push_back({c.first, c.second});
  }

  // Greedy bound-first join order with index/nested-loop evaluation:
  // repeatedly pick the unjoined source with a constant filter or a join
  // column bound by already-joined sources, preferring indexed access.
  uint64_t scanned = 0;
  uint64_t lookups = 0;
  const size_t n = sources.size();
  std::vector<bool> placed(n, false);
  std::vector<size_t> order;
  auto bound_score = [&](size_t s) {
    int score = 0;
    for (const auto& f : filters) {
      if (f.src == s) {
        score += sources[s].table->indexes.count(f.col) ? 8 : 4;
      }
    }
    for (const auto& j : joins) {
      size_t other = j.lsrc == s ? j.rsrc : (j.rsrc == s ? j.lsrc : n);
      if (other < n && placed[other]) {
        size_t mycol = j.lsrc == s ? j.lcol : j.rcol;
        score += sources[s].table->indexes.count(mycol) ? 8 : 2;
      }
    }
    return score;
  };
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    int best_score = -1;
    for (size_t s = 0; s < n; ++s) {
      if (placed[s]) continue;
      int sc = bound_score(s);
      // Tie-break: smaller table first.
      if (sc > best_score ||
          (sc == best_score && best < n &&
           sources[s].table->rows.size() < sources[best].table->rows.size())) {
        best = s;
        best_score = sc;
      }
    }
    placed[best] = true;
    order.push_back(best);
  }

  // Backtracking evaluation along `order`.
  std::vector<const Row*> current(n, nullptr);
  std::vector<Row> results;

  // Checks all predicates whose sources are fully bound, with `upto`
  // sources placed (indices order[0..upto]).
  auto consistent = [&](size_t src) {
    for (const auto& f : filters) {
      if (f.src == src && !((*current[src])[f.col] == f.value)) return false;
    }
    for (const auto& j : joins) {
      if (current[j.lsrc] != nullptr && current[j.rsrc] != nullptr) {
        if (!((*current[j.lsrc])[j.lcol] == (*current[j.rsrc])[j.rcol])) {
          return false;
        }
      }
    }
    return true;
  };

  std::function<void(size_t)> descend = [&](size_t depth) {
    if (depth == n) {
      Row out;
      out.reserve(outputs.size());
      for (const auto& o : outputs) out.push_back((*current[o.src])[o.col]);
      results.push_back(std::move(out));
      return;
    }
    size_t src = order[depth];
    const Table* t = sources[src].table;

    // Try index access: a constant filter or a bound join on an indexed
    // column narrows the candidates. When several indexes apply, probe
    // them all (cheap hash lookups) and keep the smallest hit list.
    const std::vector<size_t>* candidates = nullptr;
    std::vector<size_t> empty;
    auto consider = [&](const std::unordered_map<
                            engine::Value, std::vector<size_t>,
                            engine::ValueHash>& index,
                        const engine::Value& key) {
      ++lookups;
      auto hit = index.find(key);
      const std::vector<size_t>* list =
          hit == index.end() ? &empty : &hit->second;
      if (candidates == nullptr || list->size() < candidates->size()) {
        candidates = list;
      }
    };
    for (const auto& f : filters) {
      if (f.src != src) continue;
      auto idx = t->indexes.find(f.col);
      if (idx != t->indexes.end()) consider(idx->second, f.value);
    }
    for (const auto& j : joins) {
      size_t other = j.lsrc == src ? j.rsrc : (j.rsrc == src ? j.lsrc : n);
      if (other >= n || current[other] == nullptr) continue;
      size_t mycol = j.lsrc == src ? j.lcol : j.rcol;
      size_t othercol = j.lsrc == src ? j.rcol : j.lcol;
      auto idx = t->indexes.find(mycol);
      if (idx != t->indexes.end()) {
        consider(idx->second, (*current[other])[othercol]);
      }
    }

    if (candidates != nullptr) {
      for (size_t ri : *candidates) {
        ++scanned;
        current[src] = &t->rows[ri];
        if (consistent(src)) descend(depth + 1);
      }
    } else {
      for (const Row& r : t->rows) {
        ++scanned;
        current[src] = &r;
        if (consistent(src)) descend(depth + 1);
      }
    }
    current[src] = nullptr;
  };
  descend(0);

  Charge(stats, 1, scanned, lookups, results.size());
  return results;
}

}  // namespace estocada::stores
