#include "stores/fault.h"

#include <chrono>
#include <thread>

#include "common/strings.h"

namespace estocada::stores {

void FaultInjector::SetPlan(const std::string& store, FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_[store] = plan;
}

void FaultInjector::SetOutage(const std::string& store, bool outage) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_[store].outage = outage;
}

void FaultInjector::FailNextReads(const std::string& store, uint64_t reads) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_next_[store] = reads;
}

FaultPlan FaultInjector::GetPlan(const std::string& store) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(store);
  return it == plans_.end() ? FaultPlan{} : it->second;
}

Status FaultInjector::OnRead(const std::string& store) {
  uint64_t spike_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.reads;
    auto plan_it = plans_.find(store);
    const FaultPlan* plan =
        plan_it == plans_.end() ? nullptr : &plan_it->second;
    if (plan != nullptr && plan->outage) {
      ++counters_.outage_faults;
      return Status::Unavailable(
          StrCat("store '", store, "' unavailable (injected outage)"));
    }
    if (auto it = fail_next_.find(store);
        it != fail_next_.end() && it->second > 0) {
      --it->second;
      ++counters_.transient_faults;
      return Status::Unavailable(
          StrCat("store '", store, "' unavailable (injected fault)"));
    }
    if (plan == nullptr) return Status::OK();
    if (plan->transient_fault_rate > 0 &&
        rng_.Chance(plan->transient_fault_rate)) {
      ++counters_.transient_faults;
      return Status::Unavailable(
          StrCat("store '", store, "' unavailable (injected fault)"));
    }
    if (plan->latency_spike_rate > 0 && plan->latency_spike_micros > 0 &&
        rng_.Chance(plan->latency_spike_rate)) {
      ++counters_.latency_spikes;
      spike_micros = plan->latency_spike_micros;
    }
  }
  if (spike_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(spike_micros));
  }
  return Status::OK();
}

Status FaultInjector::OnWrite(const std::string& store) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.writes;
  auto it = plans_.find(store);
  if (it != plans_.end() && it->second.outage) {
    ++counters_.write_faults;
    return Status::Unavailable(
        StrCat("store '", store, "' unavailable (injected outage)"));
  }
  return Status::OK();
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = Counters{};
}

}  // namespace estocada::stores
