#include "stores/store_stats.h"

#include "common/strings.h"

namespace estocada::stores {

std::string StoreStats::ToString() const {
  return StrCat("ops=", operations, " scanned=", rows_scanned,
                " index_lookups=", index_lookups, " returned=", rows_returned,
                " simulated_cost=", simulated_cost);
}

}  // namespace estocada::stores
