#include "stores/open_hash.h"

#include "common/strings.h"

namespace estocada::stores {

namespace {
constexpr size_t kInitialSlots = 16;
}  // namespace

OpenHashMap::OpenHashMap() : slots_(kInitialSlots), mask_(kInitialSlots - 1) {}

uint64_t OpenHashMap::HashKey(const std::string& key) {
  // FNV-1a: cheap, decent distribution for the short keys the translator
  // produces (serialized JSON scalars).
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

size_t OpenHashMap::Probe(uint64_t hash, const std::string& key,
                          bool* found) const {
  size_t i = static_cast<size_t>(hash) & mask_;
  size_t first_tombstone = SIZE_MAX;
  for (;;) {
    const Slot& s = slots_[i];
    if (s.state == State::kEmpty) {
      *found = false;
      return first_tombstone != SIZE_MAX ? first_tombstone : i;
    }
    if (s.state == State::kTombstone) {
      if (first_tombstone == SIZE_MAX) first_tombstone = i;
    } else if (s.hash == hash && s.key == key) {
      *found = true;
      return i;
    }
    i = (i + 1) & mask_;
  }
}

void OpenHashMap::Grow(size_t min_live) {
  size_t buckets = kInitialSlots;
  // Size so min_live keys sit under 70% load with headroom for one more
  // doubling's worth of inserts before the next rehash.
  while (buckets * 7 < min_live * 10) buckets <<= 1;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(buckets, Slot{});
  mask_ = buckets - 1;
  used_ = live_;
  for (Slot& s : old) {
    if (s.state != State::kLive) continue;
    size_t i = static_cast<size_t>(s.hash) & mask_;
    while (slots_[i].state == State::kLive) i = (i + 1) & mask_;
    slots_[i] = std::move(s);
  }
}

bool OpenHashMap::Put(const std::string& key, std::string value) {
  if ((used_ + 1) * 10 >= slots_.size() * 7) Grow((live_ + 1) * 2);
  const uint64_t hash = HashKey(key);
  bool found = false;
  size_t i = Probe(hash, key, &found);
  Slot& s = slots_[i];
  if (found) {
    s.value = std::move(value);
    return false;
  }
  if (s.state == State::kEmpty) ++used_;
  s.hash = hash;
  s.state = State::kLive;
  s.key = key;
  s.value = std::move(value);
  ++live_;
  return true;
}

const std::string* OpenHashMap::Find(const std::string& key) const {
  bool found = false;
  size_t i = Probe(HashKey(key), key, &found);
  return found ? &slots_[i].value : nullptr;
}

bool OpenHashMap::Erase(const std::string& key) {
  bool found = false;
  size_t i = Probe(HashKey(key), key, &found);
  if (!found) return false;
  Slot& s = slots_[i];
  s.state = State::kTombstone;
  s.key.clear();
  s.value.clear();
  --live_;
  return true;
}

void OpenHashMap::Reserve(size_t n) {
  if (n * 10 >= slots_.size() * 7) Grow(n);
}

size_t OpenHashMap::BulkLoad(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  Reserve(live_ + entries.size());
  size_t inserted = 0;
  for (const auto& [k, v] : entries) {
    if (Put(k, v)) ++inserted;
  }
  return inserted;
}

Status OpenHashMap::Verify() const {
  size_t seen = 0;
  for (const Slot& s : slots_) {
    if (s.state != State::kLive) continue;
    ++seen;
    const std::string* v = Find(s.key);
    if (v == nullptr) {
      return Status::Internal(
          StrCat("open-hash verify: key '", s.key, "' unreachable by probe"));
    }
    if (v != &s.value) {
      return Status::Internal(
          StrCat("open-hash verify: key '", s.key, "' resolves to a ",
                 "different slot"));
    }
  }
  if (seen != live_) {
    return Status::Internal(StrCat("open-hash verify: ", seen,
                                   " live slots found, size() says ", live_));
  }
  return Status::OK();
}

}  // namespace estocada::stores
