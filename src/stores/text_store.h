#ifndef ESTOCADA_STORES_TEXT_STORE_H_
#define ESTOCADA_STORES_TEXT_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "stores/fault.h"
#include "stores/store_stats.h"

namespace estocada::stores {

/// Full-text store standing in for the paper's SOLR/Lucene: named cores of
/// documents with string fields, an inverted index (term -> postings) per
/// core built at AddDocument time, and conjunctive term search with
/// postings-intersection. Tokenization is lowercase alphanumeric-run
/// splitting. This is the store the product-catalog fragment lives in.
class TextStore : public FaultInjectable {
 public:
  explicit TextStore(CostProfile profile = {/*per_operation=*/10.0,
                                            /*per_row_scanned=*/0.03,
                                            /*per_index_lookup=*/0.4,
                                            /*per_row_returned=*/0.1});

  Status CreateCore(const std::string& name);
  Status DropCore(const std::string& name);
  bool HasCore(const std::string& name) const;

  /// Indexes a document: every field's text is tokenized into the core's
  /// inverted index. Re-adding an existing id fails.
  Status AddDocument(const std::string& core, const std::string& doc_id,
                     const std::map<std::string, std::string>& fields);

  /// Conjunctive search: ids of documents containing *all* `terms`
  /// (across any field). Terms are tokenized/lowercased the same way as
  /// documents. Sorted by id for determinism.
  Result<std::vector<std::string>> Search(const std::string& core,
                                          const std::vector<std::string>& terms,
                                          StoreStats* stats = nullptr) const;

  /// Batched search: result i holds Search(core, queries[i]). One client
  /// round trip; each query is still charged exactly like a standalone
  /// Search (the inverted-index work is per query, not amortizable).
  Result<std::vector<std::vector<std::string>>> SearchMany(
      const std::string& core,
      const std::vector<std::vector<std::string>>& queries,
      StoreStats* stats = nullptr) const;

  /// Stored field retrieval.
  Result<std::map<std::string, std::string>> GetDocument(
      const std::string& core, const std::string& doc_id,
      StoreStats* stats = nullptr) const;

  Result<size_t> DocumentCount(const std::string& core) const;

  /// Snapshot of the stats accumulated across all calls. Reads under the
  /// stats mutex so concurrent query threads never observe torn counters.
  StoreStats lifetime_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return lifetime_stats_;
  }

  /// Lowercase alphanumeric tokens of `text`.
  static std::vector<std::string> Tokenize(const std::string& text);

 private:
  struct Core {
    std::map<std::string, std::map<std::string, std::string>> docs;
    std::unordered_map<std::string, std::vector<std::string>> inverted;
  };

  Result<const Core*> GetCore(const std::string& name) const;

  void Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
              uint64_t lookups, uint64_t returned) const;

  CostProfile profile_;
  std::map<std::string, Core> cores_;
  mutable StoreStats lifetime_stats_;
  mutable std::mutex stats_mu_;
};

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_TEXT_STORE_H_
