#ifndef ESTOCADA_STORES_OPEN_HASH_H_
#define ESTOCADA_STORES_OPEN_HASH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace estocada::stores {

/// Open-addressing string → string hash table backing the key-value
/// stand-in's collections. Replaces std::unordered_map for the point-lookup
/// hot path: one flat slot array (linear probing, power-of-two capacity,
/// ≤ 70% load including tombstones), so a Get is a hash, a strided scan of
/// a contiguous array, and no per-node pointer chase. Sized for millions of
/// keys: BulkLoad pre-reserves for the full batch and Verify re-probes
/// every loaded key so migrations can prove the table round-trips.
class OpenHashMap {
 public:
  OpenHashMap();

  /// Upserts. Returns true if the key was newly inserted.
  bool Put(const std::string& key, std::string value);

  /// Points at the stored value, or nullptr when absent. Stable until the
  /// next mutation.
  const std::string* Find(const std::string& key) const;

  /// Returns true if the key existed and was removed (tombstoned).
  bool Erase(const std::string& key);

  /// Pre-sizes the slot array for `n` live keys so a bulk load never
  /// rehashes mid-flight.
  void Reserve(size_t n);

  /// Inserts every entry (upserting duplicates, last one wins) after a
  /// single Reserve for the whole batch. Returns the number of newly
  /// inserted (non-duplicate) keys.
  size_t BulkLoad(const std::vector<std::pair<std::string, std::string>>& entries);

  /// Probes every live slot back through the public lookup path; fails if
  /// any stored key does not resolve to its own slot (i.e. the probe
  /// sequence is corrupt). Cheap insurance after BulkLoad.
  Status Verify() const;

  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Calls fn(key, value) for every live entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.state == State::kLive) fn(s.key, s.value);
    }
  }

 private:
  enum class State : uint8_t { kEmpty, kLive, kTombstone };

  struct Slot {
    uint64_t hash = 0;
    State state = State::kEmpty;
    std::string key;
    std::string value;
  };

  static uint64_t HashKey(const std::string& key);

  /// Index of the slot holding `key`, or the first insertable slot
  /// (tombstone-aware) when absent. `found` reports which.
  size_t Probe(uint64_t hash, const std::string& key, bool* found) const;

  void Grow(size_t min_live);

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t live_ = 0;
  size_t used_ = 0;  ///< live + tombstones — drives the load-factor check
};

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_OPEN_HASH_H_
