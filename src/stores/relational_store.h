#ifndef ESTOCADA_STORES_RELATIONAL_STORE_H_
#define ESTOCADA_STORES_RELATIONAL_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/value.h"
#include "stores/fault.h"
#include "stores/store_stats.h"

namespace estocada::stores {

/// Column types of the relational store. kAny accepts every scalar —
/// used for columns whose type could not be inferred at creation (e.g. a
/// materialized view that was empty when first loaded).
enum class ColumnType { kInt, kReal, kStr, kBool, kAny };

struct ColumnDef {
  std::string name;
  ColumnType type;
};

/// A conjunctive select-project-join query in the store's native API —
/// the fragment of SQL the paper's Postgres substrate receives after
/// delegation (SELECT cols FROM t1 a1, t2 a2 WHERE joins AND filters).
struct SpjQuery {
  struct TableRef {
    std::string table;
    std::string alias;  ///< Unique within the query.
  };
  struct ColumnRef {
    std::string alias;
    std::string column;
  };
  struct JoinPredicate {  ///< a1.c1 = a2.c2
    ColumnRef left;
    ColumnRef right;
  };
  struct FilterPredicate {  ///< a.c = constant
    ColumnRef column;
    engine::Value value;
  };

  std::vector<TableRef> from;
  std::vector<ColumnRef> select;
  std::vector<JoinPredicate> joins;
  std::vector<FilterPredicate> filters;

  std::string ToString() const;  ///< Rendered as a SQL SELECT statement.
};

/// In-memory relational engine standing in for the paper's Postgres: typed
/// tables, optional primary key, secondary hash indexes, and an SPJ
/// executor with a greedy bound-first join order that exploits the
/// indexes. Full SPJ support is the contract the rewriting layer relies
/// on when delegating to this store.
class RelationalStore : public FaultInjectable {
 public:
  /// Default cost profile models a client/server SQL round trip.
  explicit RelationalStore(CostProfile profile = {/*per_operation=*/25.0,
                                                  /*per_row_scanned=*/0.05,
                                                  /*per_index_lookup=*/0.8,
                                                  /*per_row_returned=*/0.05});

  Status CreateTable(const std::string& name, std::vector<ColumnDef> columns,
                     std::vector<std::string> primary_key = {});
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;

  /// Inserts one typed row; enforces column count/types and PK uniqueness.
  Status Insert(const std::string& table, engine::Row row);

  /// Creates a secondary hash index.
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Number of rows in `table`.
  Result<size_t> RowCount(const std::string& table) const;

  /// Column names of `table` in declaration order.
  Result<std::vector<std::string>> Columns(const std::string& table) const;

  /// Executes a conjunctive SPJ query. Duplicate rows are preserved (bag
  /// semantics). `stats` (optional) accumulates work counters.
  Result<std::vector<engine::Row>> Execute(const SpjQuery& query,
                                           StoreStats* stats = nullptr) const;

  /// Convenience point lookup: rows of `table` where `column` = `value`.
  Result<std::vector<engine::Row>> Lookup(const std::string& table,
                                          const std::string& column,
                                          const engine::Value& value,
                                          StoreStats* stats = nullptr) const;

  /// Batched point lookup: result i holds Lookup(table, column, values[i]).
  /// One client round trip; each value executes (and is charged) as its
  /// own server-side SPJ, like a rewritten `IN`-list.
  Result<std::vector<std::vector<engine::Row>>> LookupMany(
      const std::string& table, const std::string& column,
      const std::vector<engine::Value>& values,
      StoreStats* stats = nullptr) const;

  /// Full scan of a table.
  Result<std::vector<engine::Row>> Scan(const std::string& table,
                                        StoreStats* stats = nullptr) const;

  /// Snapshot of the stats accumulated across all calls. Reads under the
  /// stats mutex so concurrent query threads never observe torn counters.
  StoreStats lifetime_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return lifetime_stats_;
  }

 private:
  struct Table {
    std::vector<ColumnDef> columns;
    std::vector<size_t> primary_key;  ///< Column positions.
    std::vector<engine::Row> rows;
    /// Secondary indexes: column position -> (value -> row indices).
    std::map<size_t, std::unordered_map<engine::Value, std::vector<size_t>,
                                        engine::ValueHash>>
        indexes;
    std::unordered_map<engine::Row, size_t, engine::RowHash> pk_index;

    std::optional<size_t> ColumnIndex(const std::string& name) const;
  };

  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  void Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
              uint64_t lookups, uint64_t returned) const;

  CostProfile profile_;
  std::map<std::string, Table> tables_;
  mutable StoreStats lifetime_stats_;
  mutable std::mutex stats_mu_;
};

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_RELATIONAL_STORE_H_
