#ifndef ESTOCADA_STORES_DOCUMENT_STORE_H_
#define ESTOCADA_STORES_DOCUMENT_STORE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "json/json.h"
#include "stores/fault.h"
#include "stores/store_stats.h"

namespace estocada::stores {

/// Comparison operators supported by document path predicates.
enum class DocOp { kEq, kLt, kLe, kGt, kGe };

/// One predicate over a dotted document path ("user.address.city" = X).
struct PathPredicate {
  std::string path;
  DocOp op = DocOp::kEq;
  json::JsonValue value;
};

/// Document store standing in for the paper's MongoDB: named collections
/// of JSON documents addressed by a string `_id`, conjunctive find() over
/// dotted path predicates, optional per-path hash indexes — and *no*
/// joins, the feature boundary the rewriting layer must respect when
/// delegating (single-collection filters go down, joins stay up).
class DocumentStore : public FaultInjectable {
 public:
  /// Default profile: BSON-protocol round trip + per-document match cost.
  explicit DocumentStore(CostProfile profile = {/*per_operation=*/12.0,
                                                /*per_row_scanned=*/0.12,
                                                /*per_index_lookup=*/0.5,
                                                /*per_row_returned=*/0.15});

  Status CreateCollection(const std::string& name);
  Status DropCollection(const std::string& name);
  bool HasCollection(const std::string& name) const;

  /// Inserts a document. If it has a string "_id" member that id is used
  /// (must be unique); otherwise one is generated ("doc<N>"). Returns the
  /// id.
  Result<std::string> Insert(const std::string& collection,
                             json::JsonValue document);

  /// Point lookup by document id.
  Result<json::JsonValue> FindById(const std::string& collection,
                                   const std::string& id,
                                   StoreStats* stats = nullptr) const;

  /// Batched point lookup: one round trip covering all `ids`, missing ids
  /// yield nullopt at their position (mirrors KeyValueStore::MGet). Charged
  /// as one operation plus one index touch per id.
  Result<std::vector<std::optional<json::JsonValue>>> FindByIdMany(
      const std::string& collection, const std::vector<std::string>& ids,
      StoreStats* stats = nullptr) const;

  /// Conjunctive find: all documents satisfying every predicate. Equality
  /// predicates on indexed paths use the index; everything else scans.
  Result<std::vector<json::JsonValue>> Find(
      const std::string& collection,
      const std::vector<PathPredicate>& predicates,
      StoreStats* stats = nullptr) const;

  Status Remove(const std::string& collection, const std::string& id);

  /// Hash index over the value at `path` (array values index each
  /// element, Mongo-style multikey).
  Status CreatePathIndex(const std::string& collection,
                         const std::string& path);

  Result<size_t> Count(const std::string& collection) const;

  /// Snapshot of the stats accumulated across all calls. Reads under the
  /// stats mutex so concurrent query threads never observe torn counters.
  StoreStats lifetime_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return lifetime_stats_;
  }

 private:
  struct Collection {
    /// id -> document; std::map for deterministic iteration.
    std::map<std::string, json::JsonValue> docs;
    /// path -> (serialized value -> doc ids).
    std::map<std::string,
             std::unordered_map<std::string, std::vector<std::string>>>
        path_indexes;
    uint64_t next_generated_id = 0;
  };

  Result<const Collection*> GetCollection(const std::string& name) const;
  Result<Collection*> GetMutableCollection(const std::string& name);

  void Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
              uint64_t lookups, uint64_t returned) const;

  CostProfile profile_;
  std::map<std::string, Collection> collections_;
  mutable StoreStats lifetime_stats_;
  mutable std::mutex stats_mu_;
};

/// True iff `doc` satisfies `pred` (missing path = no match; array values
/// match if any element matches, Mongo semantics).
bool MatchesPredicate(const json::JsonValue& doc, const PathPredicate& pred);

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_DOCUMENT_STORE_H_
