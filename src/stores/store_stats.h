#ifndef ESTOCADA_STORES_STORE_STATS_H_
#define ESTOCADA_STORES_STORE_STATS_H_

#include <cstdint>
#include <string>

namespace estocada::stores {

/// Work counters shared by every store stand-in. Stores do real in-memory
/// work; on top of it they accumulate `simulated_cost`, a deterministic
/// abstract-latency figure driven by each store's CostProfile. Benches
/// report both: wall time reflects this machine, simulated cost reflects
/// the relative performance blueprint of the systems the paper used
/// (client/server round trips, job launch overheads, per-row costs) —
/// see DESIGN.md §3 on substitutions.
struct StoreStats {
  uint64_t operations = 0;      ///< API calls served.
  uint64_t rows_scanned = 0;    ///< Tuples/documents examined.
  uint64_t index_lookups = 0;   ///< Point accesses through an index.
  uint64_t rows_returned = 0;   ///< Results produced.
  double simulated_cost = 0.0;  ///< Abstract latency units (≈ microseconds).

  void Add(const StoreStats& other) {
    operations += other.operations;
    rows_scanned += other.rows_scanned;
    index_lookups += other.index_lookups;
    rows_returned += other.rows_returned;
    simulated_cost += other.simulated_cost;
  }

  std::string ToString() const;
};

/// Per-operation abstract costs of one store. Defaults are per-store (see
/// each store's header); units are arbitrary but consistent across stores,
/// calibrated so the E1/E2 scenario experiments reproduce the paper's
/// relative gains.
struct CostProfile {
  double per_operation = 0.0;    ///< Fixed cost per API call (round trip).
  double per_row_scanned = 0.0;  ///< Cost per tuple/doc examined.
  double per_index_lookup = 0.0; ///< Cost per index point access.
  double per_row_returned = 0.0; ///< Cost per result transferred.
};

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_STORE_STATS_H_
