#include "stores/graph_store.h"

#include <algorithm>

#include "common/strings.h"

namespace estocada::stores {

using engine::Row;
using engine::Value;

GraphStore::GraphStore(CostProfile profile) : profile_(profile) {}

Status GraphStore::CreateGraph(const std::string& name, size_t arity) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (arity < 1) {
    return Status::InvalidArgument(
        StrCat("graph '", name, "' needs arity >= 1, got ", arity));
  }
  if (graphs_.count(name)) {
    return Status::AlreadyExists(StrCat("graph '", name, "' already exists"));
  }
  Graph g;
  g.arity = arity;
  graphs_.emplace(name, std::move(g));
  return Status::OK();
}

Status GraphStore::DropGraph(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (graphs_.erase(name) == 0) {
    return Status::NotFound(StrCat("graph '", name, "' does not exist"));
  }
  return Status::OK();
}

bool GraphStore::HasGraph(const std::string& name) const {
  return graphs_.count(name) > 0;
}

void GraphStore::IndexRow(Graph* g, size_t row_idx) {
  const Row& row = g->rows[row_idx];
  const size_t last = g->arity - 1;
  g->out_index[Row{row[0]}].push_back(row_idx);
  g->in_index[Row{row[last]}].push_back(row_idx);
  if (g->arity >= 3) {
    g->out_label_index[Row{row[0], row[1]}].push_back(row_idx);
    g->in_label_index[Row{row[last], row[1]}].push_back(row_idx);
  }
}

Status GraphStore::Insert(const std::string& graph, Row row) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  ESTOCADA_ASSIGN_OR_RETURN(Graph * g, GetMutableGraph(graph));
  if (row.size() != g->arity) {
    return Status::InvalidArgument(
        StrCat("graph '", graph, "' expects arity ", g->arity, ", got ",
               row.size()));
  }
  g->rows.push_back(std::move(row));
  IndexRow(g, g->rows.size() - 1);
  Charge(nullptr, 1, 0, 1, 0);
  return Status::OK();
}

Status GraphStore::InsertBatch(const std::string& graph,
                               std::vector<Row> rows) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  ESTOCADA_ASSIGN_OR_RETURN(Graph * g, GetMutableGraph(graph));
  for (const Row& row : rows) {
    if (row.size() != g->arity) {
      return Status::InvalidArgument(
          StrCat("graph '", graph, "' expects arity ", g->arity, ", got ",
                 row.size()));
    }
  }
  const size_t n = rows.size();
  g->rows.reserve(g->rows.size() + n);
  for (Row& row : rows) {
    g->rows.push_back(std::move(row));
    IndexRow(g, g->rows.size() - 1);
  }
  Charge(nullptr, 1, 0, n, 0);
  return Status::OK();
}

Result<std::vector<Row>> GraphStore::Expand(
    const std::string& graph, ExpandDirection direction, const Value& anchor,
    const std::optional<Value>& label, StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Graph* g, GetGraph(graph));
  if (label.has_value() && g->arity < 3) {
    return Status::InvalidArgument(
        StrCat("graph '", graph, "': labeled expansion needs arity >= 3"));
  }
  std::vector<std::optional<Value>> pattern(g->arity);
  const size_t anchor_pos =
      direction == ExpandDirection::kOut ? 0 : g->arity - 1;
  pattern[anchor_pos] = anchor;
  if (label.has_value()) pattern[1] = *label;
  std::vector<Row> out;
  size_t cursor = 0;
  ESTOCADA_RETURN_NOT_OK(
      MatchInternal(*g, pattern, SIZE_MAX, &cursor, &out, stats).status());
  return out;
}

Result<std::vector<Row>> GraphStore::Match(
    const std::string& graph, const std::vector<std::optional<Value>>& pattern,
    StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Graph* g, GetGraph(graph));
  std::vector<Row> out;
  size_t cursor = 0;
  ESTOCADA_RETURN_NOT_OK(
      MatchInternal(*g, pattern, SIZE_MAX, &cursor, &out, stats).status());
  return out;
}

Result<bool> GraphStore::MatchPage(
    const std::string& graph, const std::vector<std::optional<Value>>& pattern,
    size_t limit, size_t* cursor, std::vector<Row>* out,
    StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Graph* g, GetGraph(graph));
  return MatchInternal(*g, pattern, limit, cursor, out, stats);
}

Result<bool> GraphStore::MatchInternal(
    const Graph& g, const std::vector<std::optional<Value>>& pattern,
    size_t limit, size_t* cursor, std::vector<Row>* out,
    StoreStats* stats) const {
  if (pattern.size() != g.arity) {
    return Status::InvalidArgument(
        StrCat("pattern arity ", pattern.size(), " does not match graph arity ",
               g.arity));
  }
  const size_t last = g.arity - 1;
  const bool labeled = g.arity >= 3 && pattern[1].has_value();

  // Pick the best index: a bound first position beats a bound last one;
  // the labeled composite beats the plain anchor bucket. `indexed_pos`
  // collects the positions the chosen bucket already guarantees — every
  // other bound position becomes a residual filter.
  const std::vector<size_t>* bucket = nullptr;
  bool index_used = false;
  std::vector<bool> covered(g.arity, false);
  if (pattern[0].has_value()) {
    index_used = true;
    covered[0] = true;
    if (labeled) {
      covered[1] = true;
      auto it = g.out_label_index.find(Row{*pattern[0], *pattern[1]});
      bucket = it == g.out_label_index.end() ? nullptr : &it->second;
    } else {
      auto it = g.out_index.find(Row{*pattern[0]});
      bucket = it == g.out_index.end() ? nullptr : &it->second;
    }
  } else if (pattern[last].has_value()) {
    index_used = true;
    covered[last] = true;
    if (labeled && last != 1) {
      covered[1] = true;
      auto it = g.in_label_index.find(Row{*pattern[last], *pattern[1]});
      bucket = it == g.in_label_index.end() ? nullptr : &it->second;
    } else {
      auto it = g.in_index.find(Row{*pattern[last]});
      bucket = it == g.in_index.end() ? nullptr : &it->second;
    }
  }

  std::vector<size_t> residual;
  for (size_t i = 0; i < g.arity; ++i) {
    if (pattern[i].has_value() && !covered[i]) residual.push_back(i);
  }

  const size_t total =
      index_used ? (bucket == nullptr ? 0 : bucket->size()) : g.rows.size();
  const bool first_page = *cursor == 0;
  uint64_t examined = 0;
  uint64_t returned = 0;
  size_t pos = *cursor;
  while (pos < total && returned < limit) {
    const Row& row = index_used ? g.rows[(*bucket)[pos]] : g.rows[pos];
    ++pos;
    // Index hits are pre-filtered; only residual (or scan) positions are
    // examined row-by-row.
    if (!index_used || !residual.empty()) ++examined;
    bool ok = true;
    for (size_t i : residual) {
      if (!(row[i] == *pattern[i])) {
        ok = false;
        break;
      }
    }
    if (!index_used) {
      for (size_t i = 0; ok && i < g.arity; ++i) {
        if (pattern[i].has_value() && !(row[i] == *pattern[i])) ok = false;
      }
    }
    if (ok) {
      out->push_back(row);
      ++returned;
    }
  }
  *cursor = pos;
  Charge(stats, /*ops=*/1, /*scanned=*/examined,
         /*lookups=*/(index_used && first_page) ? 1u : 0u, returned);
  return pos < total;
}

Result<std::vector<Row>> GraphStore::Scan(const std::string& graph,
                                          StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Graph* g, GetGraph(graph));
  Charge(stats, 1, g->rows.size(), 0, g->rows.size());
  return g->rows;
}

Result<size_t> GraphStore::RowCount(const std::string& graph) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Graph* g, GetGraph(graph));
  return g->rows.size();
}

Result<size_t> GraphStore::Arity(const std::string& graph) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Graph* g, GetGraph(graph));
  return g->arity;
}

Result<const GraphStore::Graph*> GraphStore::GetGraph(
    const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound(StrCat("graph '", name, "' does not exist"));
  }
  return &it->second;
}

Result<GraphStore::Graph*> GraphStore::GetMutableGraph(
    const std::string& name) {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound(StrCat("graph '", name, "' does not exist"));
  }
  return &it->second;
}

void GraphStore::Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
                        uint64_t lookups, uint64_t returned) const {
  StoreStats delta;
  delta.operations = ops;
  delta.rows_scanned = scanned;
  delta.index_lookups = lookups;
  delta.rows_returned = returned;
  delta.simulated_cost = profile_.per_operation * ops +
                         profile_.per_row_scanned * scanned +
                         profile_.per_index_lookup * lookups +
                         profile_.per_row_returned * returned;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lifetime_stats_.Add(delta);
  }
  if (stats != nullptr) stats->Add(delta);
}

}  // namespace estocada::stores
