#ifndef ESTOCADA_STORES_KV_STORE_H_
#define ESTOCADA_STORES_KV_STORE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "stores/fault.h"
#include "stores/open_hash.h"
#include "stores/store_stats.h"

namespace estocada::stores {

/// Key-value store standing in for the paper's Redis/Voldemort: named
/// collections of string key → string value pairs, O(1) Get/Put/Delete and
/// batched MGet. Deliberately *no* secondary predicates and no joins — the
/// only way in is by key, which is exactly the access-pattern restriction
/// the pivot model encodes with an input-adorned key position. A full Scan
/// exists (the stores are slave systems, ESTOCADA may bulk-load from them)
/// but costs proportionally to the collection.
class KeyValueStore : public FaultInjectable {
 public:
  /// Default profile models a lightweight binary-protocol round trip —
  /// the cheap-lookup blueprint that motivates the §II migration.
  explicit KeyValueStore(CostProfile profile = {/*per_operation=*/4.0,
                                                /*per_row_scanned=*/0.02,
                                                /*per_index_lookup=*/0.3,
                                                /*per_row_returned=*/0.05});

  Status CreateCollection(const std::string& name);
  Status DropCollection(const std::string& name);
  bool HasCollection(const std::string& name) const;

  /// Upserts `key` in `collection`.
  Status Put(const std::string& collection, const std::string& key,
             std::string value);

  /// Bulk-loads `entries` into `collection` in one call: the table is
  /// pre-sized for the whole batch (no mid-load rehash) and every loaded
  /// key is re-probed afterwards (Verify). Charges exactly what the same
  /// entries written through per-key Put would — one operation and one
  /// index touch per entry — so migration cost accounting is unchanged.
  Status BulkLoad(const std::string& collection,
                  const std::vector<std::pair<std::string, std::string>>& entries);

  /// Point lookup; kNotFound when absent.
  Result<std::string> Get(const std::string& collection, const std::string& key,
                          StoreStats* stats = nullptr) const;

  /// Batched lookup; missing keys yield nullopt at their position. One
  /// round trip, one index access per key.
  Result<std::vector<std::optional<std::string>>> MGet(
      const std::string& collection, const std::vector<std::string>& keys,
      StoreStats* stats = nullptr) const;

  Status Delete(const std::string& collection, const std::string& key);

  /// Full dump of a collection in unspecified order. Expensive by design.
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      const std::string& collection, StoreStats* stats = nullptr) const;

  Result<size_t> Size(const std::string& collection) const;

  /// Snapshot of the stats accumulated across all calls. Reads under the
  /// stats mutex so concurrent query threads never observe torn counters.
  StoreStats lifetime_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return lifetime_stats_;
  }

 private:
  /// Flat open-addressing table (see open_hash.h) — the per-key hot path
  /// behind Get/MGet is a contiguous linear probe, not a bucket-list chase.
  using Collection = OpenHashMap;

  Result<const Collection*> GetCollection(const std::string& name) const;

  void Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
              uint64_t lookups, uint64_t returned) const;

  CostProfile profile_;
  std::map<std::string, Collection> collections_;
  mutable StoreStats lifetime_stats_;
  mutable std::mutex stats_mu_;
};

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_KV_STORE_H_
