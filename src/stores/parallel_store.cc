#include "stores/parallel_store.h"

#include <atomic>

#include "common/strings.h"

namespace estocada::stores {

using engine::Row;
using engine::Value;

ParallelStore::ParallelStore(size_t workers, CostProfile profile)
    : profile_(profile), pool_(std::make_unique<ThreadPool>(workers)) {}

Status ParallelStore::CreateRelation(const std::string& name, size_t arity,
                                     size_t partitions) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (relations_.count(name)) {
    return Status::AlreadyExists(
        StrCat("relation '", name, "' already exists"));
  }
  if (arity == 0 || partitions == 0) {
    return Status::InvalidArgument(
        "relation needs arity >= 1 and partitions >= 1");
  }
  Relation r;
  r.arity = arity;
  r.partitions.resize(partitions);
  relations_.emplace(name, std::move(r));
  return Status::OK();
}

Status ParallelStore::DropRelation(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  if (relations_.erase(name) == 0) {
    return Status::NotFound(StrCat("relation '", name, "' does not exist"));
  }
  return Status::OK();
}

bool ParallelStore::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

Result<const ParallelStore::Relation*> ParallelStore::GetRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' does not exist"));
  }
  return &it->second;
}

Result<ParallelStore::Relation*> ParallelStore::GetMutableRelation(
    const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' does not exist"));
  }
  return &it->second;
}

void ParallelStore::Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
                           uint64_t lookups, uint64_t returned) const {
  StoreStats delta;
  delta.operations = ops;
  delta.rows_scanned = scanned;
  delta.index_lookups = lookups;
  delta.rows_returned = returned;
  // Scans are partition-parallel: the per-row cost amortizes across the
  // worker pool (that is the whole point of delegating bulk work here).
  delta.simulated_cost =
      profile_.per_operation * static_cast<double>(ops) +
      profile_.per_row_scanned * static_cast<double>(scanned) /
          static_cast<double>(pool_->num_threads()) +
      profile_.per_index_lookup * static_cast<double>(lookups) +
      profile_.per_row_returned * static_cast<double>(returned);
  std::lock_guard<std::mutex> lock(stats_mu_);
  lifetime_stats_.Add(delta);
  if (stats != nullptr) stats->Add(delta);
}

std::string ParallelStore::IndexKey(const std::vector<size_t>& columns) {
  return StrJoin(columns, ",");
}

Status ParallelStore::Insert(const std::string& relation, Row row) {
  ESTOCADA_RETURN_NOT_OK(InjectWriteFault());
  ESTOCADA_ASSIGN_OR_RETURN(Relation * r, GetMutableRelation(relation));
  if (row.size() != r->arity) {
    return Status::InvalidArgument(
        StrCat("relation '", relation, "' expects arity ", r->arity,
               ", got ", row.size()));
  }
  size_t part = row[0].Hash() % r->partitions.size();
  size_t offset = r->partitions[part].size();
  for (auto& [cols_key, index] : r->indexes) {
    // Recover column positions from the key.
    Row key;
    for (const std::string& c : StrSplit(cols_key, ',')) {
      key.push_back(row[static_cast<size_t>(std::stoul(c))]);
    }
    index[key].emplace_back(part, offset);
  }
  r->partitions[part].push_back(std::move(row));
  ++r->row_count;
  return Status::OK();
}

Status ParallelStore::InsertBatch(const std::string& relation,
                                  std::vector<Row> rows) {
  for (Row& row : rows) {
    ESTOCADA_RETURN_NOT_OK(Insert(relation, std::move(row)));
  }
  return Status::OK();
}

Result<std::vector<Row>> ParallelStore::ParallelScan(
    const std::string& relation,
    const std::function<bool(const Row&)>& predicate,
    const std::vector<size_t>& projection, StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Relation* r, GetRelation(relation));
  for (size_t col : projection) {
    if (col >= r->arity) {
      return Status::OutOfRange(
          StrCat("projection column ", col, " out of range for '", relation,
                 "'"));
    }
  }
  const size_t parts = r->partitions.size();
  std::vector<std::vector<Row>> partial(parts);
  std::atomic<uint64_t> scanned{0};
  for (size_t p = 0; p < parts; ++p) {
    pool_->Submit([&, p] {
      const auto& rows = r->partitions[p];
      auto& out = partial[p];
      uint64_t local_scanned = 0;
      for (const Row& row : rows) {
        ++local_scanned;
        if (predicate && !predicate(row)) continue;
        if (projection.empty()) {
          out.push_back(row);
        } else {
          Row projected;
          projected.reserve(projection.size());
          for (size_t col : projection) projected.push_back(row[col]);
          out.push_back(std::move(projected));
        }
      }
      scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    });
  }
  pool_->WaitIdle();
  std::vector<Row> results;
  for (auto& part : partial) {
    results.insert(results.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  Charge(stats, 1, scanned.load(), 0, results.size());
  return results;
}

Status ParallelStore::CreateIndex(const std::string& relation,
                                  const std::vector<size_t>& columns) {
  ESTOCADA_ASSIGN_OR_RETURN(Relation * r, GetMutableRelation(relation));
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  for (size_t col : columns) {
    if (col >= r->arity) {
      return Status::OutOfRange(
          StrCat("index column ", col, " out of range for '", relation, "'"));
    }
  }
  std::string key = IndexKey(columns);
  if (r->indexes.count(key)) {
    return Status::AlreadyExists(
        StrCat("index (", key, ") already exists on '", relation, "'"));
  }
  auto& index = r->indexes[key];
  for (size_t p = 0; p < r->partitions.size(); ++p) {
    for (size_t o = 0; o < r->partitions[p].size(); ++o) {
      const Row& row = r->partitions[p][o];
      Row k;
      k.reserve(columns.size());
      for (size_t col : columns) k.push_back(row[col]);
      index[k].emplace_back(p, o);
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> ParallelStore::IndexLookup(
    const std::string& relation, const std::vector<size_t>& columns,
    const Row& key, StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Relation* r, GetRelation(relation));
  auto it = r->indexes.find(IndexKey(columns));
  if (it == r->indexes.end()) {
    return Status::NotFound(
        StrCat("no index (", IndexKey(columns), ") on '", relation, "'"));
  }
  std::vector<Row> out;
  auto hit = it->second.find(key);
  if (hit != it->second.end()) {
    out.reserve(hit->second.size());
    for (const auto& [p, o] : hit->second) {
      out.push_back(r->partitions[p][o]);
    }
  }
  Charge(stats, 1, 0, 1, out.size());
  return out;
}

Result<std::vector<std::vector<Row>>> ParallelStore::IndexLookupMany(
    const std::string& relation, const std::vector<size_t>& columns,
    const std::vector<Row>& keys, StoreStats* stats) const {
  ESTOCADA_RETURN_NOT_OK(InjectReadFault());
  ESTOCADA_ASSIGN_OR_RETURN(const Relation* r, GetRelation(relation));
  auto it = r->indexes.find(IndexKey(columns));
  if (it == r->indexes.end()) {
    return Status::NotFound(
        StrCat("no index (", IndexKey(columns), ") on '", relation, "'"));
  }
  std::vector<std::vector<Row>> out;
  out.reserve(keys.size());
  uint64_t returned = 0;
  for (const Row& key : keys) {
    std::vector<Row>& matches = out.emplace_back();
    auto hit = it->second.find(key);
    if (hit != it->second.end()) {
      matches.reserve(hit->second.size());
      for (const auto& [p, o] : hit->second) {
        matches.push_back(r->partitions[p][o]);
      }
      returned += matches.size();
    }
  }
  Charge(stats, 1, 0, keys.size(), returned);
  return out;
}

Result<size_t> ParallelStore::RowCount(const std::string& relation) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Relation* r, GetRelation(relation));
  return r->row_count;
}

Result<size_t> ParallelStore::Arity(const std::string& relation) const {
  ESTOCADA_ASSIGN_OR_RETURN(const Relation* r, GetRelation(relation));
  return r->arity;
}

}  // namespace estocada::stores
