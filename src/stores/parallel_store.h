#ifndef ESTOCADA_STORES_PARALLEL_STORE_H_
#define ESTOCADA_STORES_PARALLEL_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/value.h"
#include "stores/fault.h"
#include "stores/store_stats.h"

namespace estocada::stores {

/// Massively-parallel nested-relation store standing in for the paper's
/// Spark-on-a-cluster substrate: relations are hash-partitioned by their
/// first column, rows may hold nested collections (engine::Value lists —
/// exactly what the §II materialized join of purchases ⋈ browsing history
/// needs), scans/filters run partition-parallel on a worker pool, and
/// composite-key hash indexes provide the "(userID, product category)"
/// access path. Per-job launch overhead is part of the cost profile:
/// bulk work is cheap, point lookups through the job API are not.
class ParallelStore : public FaultInjectable {
 public:
  /// `workers`: thread-pool size (the "cluster"). Default profile models
  /// job-launch latency + cheap per-row distributed scanning.
  explicit ParallelStore(size_t workers = 4,
                         CostProfile profile = {/*per_operation=*/60.0,
                                                /*per_row_scanned=*/0.01,
                                                /*per_index_lookup=*/0.6,
                                                /*per_row_returned=*/0.05});

  /// Creates a relation with `arity` columns over `partitions` partitions.
  Status CreateRelation(const std::string& name, size_t arity,
                        size_t partitions = 8);
  Status DropRelation(const std::string& name);
  bool HasRelation(const std::string& name) const;

  /// Appends one row (hash-partitioned by row[0]).
  Status Insert(const std::string& relation, engine::Row row);

  /// Bulk append.
  Status InsertBatch(const std::string& relation, std::vector<engine::Row> rows);

  /// Parallel filtered scan: `predicate` is applied to every row (pass
  /// nullptr for all rows), partition-parallel; results are concatenated
  /// in partition order. `projection` selects column positions (empty =
  /// all).
  Result<std::vector<engine::Row>> ParallelScan(
      const std::string& relation,
      const std::function<bool(const engine::Row&)>& predicate,
      const std::vector<size_t>& projection = {},
      StoreStats* stats = nullptr) const;

  /// Builds a composite hash index over `columns` (positions).
  Status CreateIndex(const std::string& relation,
                     const std::vector<size_t>& columns);

  /// Point lookup through a previously created composite index.
  Result<std::vector<engine::Row>> IndexLookup(
      const std::string& relation, const std::vector<size_t>& columns,
      const engine::Row& key, StoreStats* stats = nullptr) const;

  /// Batched index lookup: one round trip resolving the index once and
  /// probing every key; result i holds the matches for keys[i]. Charged as
  /// one operation plus one index probe per key.
  Result<std::vector<std::vector<engine::Row>>> IndexLookupMany(
      const std::string& relation, const std::vector<size_t>& columns,
      const std::vector<engine::Row>& keys, StoreStats* stats = nullptr) const;

  Result<size_t> RowCount(const std::string& relation) const;
  Result<size_t> Arity(const std::string& relation) const;

  size_t workers() const { return pool_->num_threads(); }

  /// Snapshot of the stats accumulated across all calls. Reads under the
  /// stats mutex so concurrent query threads never observe torn counters.
  StoreStats lifetime_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return lifetime_stats_;
  }

 private:
  struct Relation {
    size_t arity;
    std::vector<std::vector<engine::Row>> partitions;
    /// key = column positions (joined by ','); value: composite key rows
    /// -> (partition, offset) pairs.
    std::map<std::string,
             std::unordered_map<engine::Row, std::vector<std::pair<size_t, size_t>>,
                                engine::RowHash>>
        indexes;
    size_t row_count = 0;
  };

  Result<const Relation*> GetRelation(const std::string& name) const;
  Result<Relation*> GetMutableRelation(const std::string& name);

  void Charge(StoreStats* stats, uint64_t ops, uint64_t scanned,
              uint64_t lookups, uint64_t returned) const;

  static std::string IndexKey(const std::vector<size_t>& columns);

  CostProfile profile_;
  std::unique_ptr<ThreadPool> pool_;
  std::map<std::string, Relation> relations_;
  mutable StoreStats lifetime_stats_;
  mutable std::mutex stats_mu_;
};

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_PARALLEL_STORE_H_
