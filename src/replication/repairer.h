#ifndef ESTOCADA_REPLICATION_REPAIRER_H_
#define ESTOCADA_REPLICATION_REPAIRER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "runtime/query_server.h"

namespace estocada::replication {

/// Stages of one replica rebuild, in order:
///
///   Idle → Backfilling → CatchingUp → Verifying → Admitted
///
/// with Aborted reachable from every pre-Admitted stage. An aborted
/// rebuild leaves the placement flagged `rebuilding` — out of routing and
/// out of the write fan-out — so a later repair restarts from a clean
/// container and serving correctness never depends on a rebuild
/// finishing.
enum class RepairStage {
  kIdle = 0,
  kBackfilling,
  kCatchingUp,
  kVerifying,
  kAdmitted,
  kAborted,
};

const char* RepairStageName(RepairStage stage);

struct RepairOptions {
  /// Rows appended per exclusive-lock acquisition during backfill.
  size_t batch_rows = 256;
  /// Retry budget for placement-store operations failing kUnavailable.
  int max_store_retries = 64;
  /// Base backoff between those retries (grows linearly, capped at 8x).
  uint64_t retry_backoff_micros = 100;
  /// Poll interval while paused on the placement store's open breaker.
  uint64_t pause_poll_micros = 200;
  /// Catch-up rounds before the residual backlog is left to the atomic
  /// admission section.
  size_t max_catchup_rounds = 16;
  /// Full restarts allowed when a deletion (or a verify mismatch)
  /// invalidates an in-flight rebuild — deletions have no append delta,
  /// so the only correct answer is starting over from the new truth.
  size_t max_restarts = 4;
  /// Set-compare the rebuilt container against the staging truth before
  /// admission.
  bool verify = true;
  /// Additionally require digest equality with a healthy same-kind
  /// sibling before admission (skipped for text placements and when no
  /// comparable sibling is live).
  bool digest_check = true;
  /// Test hook, fired at every stage entry; a non-OK return aborts the
  /// rebuild right there (deterministic abort-at-stage tests).
  std::function<Status(RepairStage)> stage_hook;
};

/// Outcome and counters of one replica rebuild.
struct RepairReport {
  std::string fragment;
  size_t replica = 0;
  RepairStage stage = RepairStage::kIdle;  ///< Final stage reached.
  Status error;                            ///< Why it aborted (OK otherwise).
  uint64_t rows_copied = 0;     ///< Backfill + catch-up rows appended.
  uint64_t batches = 0;         ///< Exclusive-lock append batches.
  uint64_t catchup_rounds = 0;  ///< Catch-up iterations executed.
  uint64_t store_retries = 0;   ///< kUnavailable retries against the store.
  uint64_t breaker_pauses = 0;  ///< Pauses on the open placement breaker.
  uint64_t restarts = 0;        ///< Full restarts (deletes / verify misses).
  bool digest_checked = false;  ///< Sibling digest equality was enforced.

  bool admitted() const { return stage == RepairStage::kAdmitted; }
  std::string ToString() const;
};

/// Self-healing for K-way replicated fragments: detects dead or stale
/// replicas, rebuilds them from the staging truth while their siblings
/// keep serving, verifies the rebuilt container, and atomically re-admits
/// it into routing and the write fan-out.
///
/// A rebuild mirrors the online-migration engine's shape:
///
///  * Backfilling — the placement is flagged `rebuilding` (routing and
///    the maintenance fan-out stop touching it), its container is
///    re-created empty, an update listener attaches, the fragment view is
///    snapshot over staging, and the snapshot is appended in throttled
///    batches, each under a short exclusive-lock window; store failures
///    walk the same retry/pause/breaker envelope migrations use.
///  * CatchingUp — inserts that landed during the backfill are drained by
///    set difference against the already-appended rows (set semantics
///    make re-appends benign); a deletion restarts the rebuild, since
///    deletes have no append delta.
///  * Verifying — one exclusive-lock section drains the residual rows,
///    set-compares the container against the staging truth, checks digest
///    equality with a healthy same-kind sibling, and admits the replica
///    (epoch stamped to the fragment's write epoch, `rebuilding`
///    cleared). No catalog-epoch bump: routing is per-translation, so
///    cached plans pick the replica up immediately.
///
/// Text placements cannot take appends; their rebuild is a one-shot
/// rematerialization from staging inside the same envelope.
///
/// Thread-safe against the serving path (every catalog touch goes through
/// the server's locks). Run one repairer instance; repairs are
/// sequential. The Autopilot checks repair_in_progress() before launching
/// migrations so a layout change never races a rebuild.
class ReplicaRepairer {
 public:
  explicit ReplicaRepairer(runtime::QueryServer* server,
                           RepairOptions options = {});

  ReplicaRepairer(const ReplicaRepairer&) = delete;
  ReplicaRepairer& operator=(const ReplicaRepairer&) = delete;

  /// Rebuilds one replica synchronously. The report carries the outcome:
  /// report.error is OK iff the replica was admitted. (Failure leaves the
  /// placement `rebuilding`; a later call — or Tick() — retries.)
  RepairReport RepairReplica(const std::string& fragment, size_t replica);

  /// One repair pass: scans the catalog for replicas that are stale
  /// (epoch behind the fragment's write epoch — they missed writes while
  /// their store was down) or stuck mid-rebuild, skips those whose store
  /// breaker is still open (the store is not back yet), and rebuilds the
  /// rest. Returns the number of replicas admitted; failures stay flagged
  /// for the next tick.
  Result<size_t> Tick();

  /// Anti-entropy pass over *live* replicas: same-kind sibling groups are
  /// digest-compared, and a disagreeing group (or any replica digests
  /// cannot cover — text, singletons-of-kind) is set-verified against the
  /// staging truth; corrupt replicas are rebuilt. A group that is
  /// identically corrupt escapes the digest screen — the bench's chaos
  /// does not produce that, and truth-verification of every replica every
  /// pass would defeat the point of cheap digests. Returns the number of
  /// replicas repaired.
  Result<size_t> Scrub();

  /// True while RepairReplica/Tick/Scrub is rebuilding something. The
  /// Autopilot's hold guard reads this.
  bool repair_in_progress() const {
    return active_.load(std::memory_order_acquire) > 0;
  }

  /// Reports of every rebuild attempted, in order (test introspection).
  std::vector<RepairReport> history() const;

 private:
  /// One full rebuild attempt (all stages); restarts handled inside.
  void RunRebuild(RepairReport* report);

  /// Runs `op` with the kUnavailable retry/pause envelope against
  /// `store`, feeding its breaker with the outcomes.
  Status RetryStoreOp(const std::string& store, RepairReport* report,
                      const std::function<Status()>& op);
  void PauseWhileBreakerOpen(const std::string& store, RepairReport* report);

  runtime::QueryServer* server_;
  RepairOptions options_;
  std::atomic<int> active_{0};
  mutable std::mutex history_mu_;
  std::vector<RepairReport> history_;
};

}  // namespace estocada::replication

#endif  // ESTOCADA_REPLICATION_REPAIRER_H_
