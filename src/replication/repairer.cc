#include "replication/repairer.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "runtime/retry.h"

namespace estocada::replication {

using engine::Row;
using runtime::QueryServer;

const char* RepairStageName(RepairStage stage) {
  switch (stage) {
    case RepairStage::kIdle:
      return "Idle";
    case RepairStage::kBackfilling:
      return "Backfilling";
    case RepairStage::kCatchingUp:
      return "CatchingUp";
    case RepairStage::kVerifying:
      return "Verifying";
    case RepairStage::kAdmitted:
      return "Admitted";
    case RepairStage::kAborted:
      return "Aborted";
  }
  return "?";
}

std::string RepairReport::ToString() const {
  std::string out = StrCat("[", RepairStageName(stage), "] ", fragment, "#",
                           replica, ": copied ", rows_copied, " rows in ",
                           batches, " batches, ", catchup_rounds,
                           " catch-up rounds, ", store_retries, " retries, ",
                           breaker_pauses, " pauses, ", restarts, " restarts",
                           digest_checked ? ", digest-checked" : "");
  if (!error.ok()) out += StrCat(" — ", error.ToString());
  return out;
}

ReplicaRepairer::ReplicaRepairer(QueryServer* server, RepairOptions options)
    : server_(server), options_(options) {}

void ReplicaRepairer::PauseWhileBreakerOpen(const std::string& store,
                                            RepairReport* report) {
  bool counted = false;
  for (;;) {
    // ExcludedStores() also performs due open → half-open transitions,
    // which is exactly what lets a paused repair resume and probe.
    std::vector<std::string> excluded = server_->health().ExcludedStores();
    if (std::find(excluded.begin(), excluded.end(), store) ==
        excluded.end()) {
      break;
    }
    if (!counted) {
      ++report->breaker_pauses;
      counted = true;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.pause_poll_micros));
  }
}

Status ReplicaRepairer::RetryStoreOp(const std::string& store,
                                     RepairReport* report,
                                     const std::function<Status()>& op) {
  Status last = Status::Internal("repair retry loop never ran");
  const int budget = std::max(1, options_.max_store_retries);
  for (int attempt = 1; attempt <= budget; ++attempt) {
    PauseWhileBreakerOpen(store, report);
    Status st = op();
    if (st.ok()) {
      server_->health().ReportSuccess(store);
      return st;
    }
    if (!runtime::RetryPolicy::IsRetryable(st)) return st;
    last = st;
    ++report->store_retries;
    // Feed the breaker: enough consecutive failures trip it open, and
    // the next attempt waits out the cooldown instead of hammering a
    // down store.
    server_->health().ReportFailure(store);
    uint64_t backoff = options_.retry_backoff_micros *
                       static_cast<uint64_t>(std::min(attempt, 8));
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
  }
  return last;
}

namespace {

/// Insert/delete flags fed by the server's update listener while a
/// rebuild is in flight. Held via shared_ptr so a listener that fires
/// during teardown never touches a dead frame.
struct DeltaFlags {
  std::mutex mu;
  bool inserts = false;
  bool deletes = false;
};

std::string RowKey(const Row& row) { return engine::RowToString(row); }

}  // namespace

void ReplicaRepairer::RunRebuild(RepairReport* report) {
  const std::string& fragment = report->fragment;
  const size_t replica = report->replica;

  auto enter = [&](RepairStage stage) -> Status {
    report->stage = stage;
    return options_.stage_hook ? options_.stage_hook(stage) : Status::OK();
  };

  // Pre-flight: the placement's store, its kind, the view's relations.
  std::string store_name;
  catalog::StoreKind kind = catalog::StoreKind::kRelational;
  std::set<std::string> relations;
  Status preflight = server_->WithReadLock([&](const Estocada& sys) {
    ESTOCADA_ASSIGN_OR_RETURN(const catalog::StorageDescriptor* desc,
                              sys.catalog().GetFragment(fragment));
    if (desc->replicas.size() <= 1) {
      return Status::FailedPrecondition(
          StrCat("fragment '", fragment, "' is not replicated"));
    }
    if (replica >= desc->replicas.size()) {
      return Status::OutOfRange(StrCat("fragment '", fragment, "' has ",
                                       desc->replicas.size(),
                                       " replica(s), asked for #", replica));
    }
    store_name = desc->replicas[replica].store_name;
    ESTOCADA_ASSIGN_OR_RETURN(const catalog::StoreHandle* handle,
                              sys.catalog().GetStore(store_name));
    kind = handle->kind;
    for (const pivot::Atom& a : desc->view.query.body) {
      relations.insert(a.relation);
    }
    return Status::OK();
  });
  if (!preflight.ok()) {
    report->error = std::move(preflight);
    report->stage = RepairStage::kAborted;
    return;
  }

  // Listener before snapshot: an update in the gap is both captured as a
  // flag and visible to the snapshot — draining it twice is benign under
  // set semantics, missing it would not be.
  auto flags = std::make_shared<DeltaFlags>();
  uint64_t token = server_->AddUpdateListener(
      [flags, relations](const QueryServer::UpdateEvent& event) {
        if (relations.find(event.relation) == relations.end()) return;
        std::lock_guard<std::mutex> lock(flags->mu);
        if (event.kind == QueryServer::UpdateEvent::Kind::kInsert) {
          flags->inserts = true;
        } else {
          flags->deletes = true;
        }
      });

  const size_t batch_rows = std::max<size_t>(1, options_.batch_rows);
  Status outcome = Status::OK();
  bool admitted = false;

  for (size_t attempt = 0; attempt <= options_.max_restarts; ++attempt) {
    report->restarts = attempt;
    bool restart = false;

    outcome = [&]() -> Status {
      // ---- Backfilling: clean container, snapshot, throttled copy. ----
      ESTOCADA_RETURN_NOT_OK(enter(RepairStage::kBackfilling));
      ESTOCADA_RETURN_NOT_OK(RetryStoreOp(store_name, report, [&] {
        return server_->WithAdminLock([&](Estocada* sys) {
          return sys->BeginReplicaRebuild(fragment, replica);
        });
      }));
      // Everything staged before the snapshot below is covered by it:
      // reset the flags so only post-snapshot updates trigger catch-up.
      {
        std::lock_guard<std::mutex> lock(flags->mu);
        flags->inserts = false;
        flags->deletes = false;
      }

      if (kind == catalog::StoreKind::kText) {
        // Text containers cannot take appends: the backfill is a one-shot
        // rematerialization, repeated while updates race it.
        ESTOCADA_RETURN_NOT_OK(RetryStoreOp(store_name, report, [&] {
          return server_->WithAdminLock([&](Estocada* sys) {
            return sys->RebuildReplicaFromStaging(fragment, replica);
          });
        }));
        ++report->batches;
        ESTOCADA_RETURN_NOT_OK(enter(RepairStage::kCatchingUp));
        for (size_t round = 0; round < options_.max_catchup_rounds; ++round) {
          bool dirty;
          {
            std::lock_guard<std::mutex> lock(flags->mu);
            dirty = flags->inserts || flags->deletes;
            flags->inserts = false;
            flags->deletes = false;
          }
          if (!dirty) break;
          ++report->catchup_rounds;
          ESTOCADA_RETURN_NOT_OK(RetryStoreOp(store_name, report, [&] {
            return server_->WithAdminLock([&](Estocada* sys) {
              return sys->RebuildReplicaFromStaging(fragment, replica);
            });
          }));
          ++report->batches;
        }
        ESTOCADA_RETURN_NOT_OK(enter(RepairStage::kVerifying));
        // One exclusive-lock section: residual drain, truth check,
        // admission. No update can land while it runs.
        return RetryStoreOp(store_name, report, [&] {
          return server_->WithAdminLock([&](Estocada* sys) {
            bool dirty;
            {
              std::lock_guard<std::mutex> lock(flags->mu);
              dirty = flags->inserts || flags->deletes;
              flags->inserts = false;
              flags->deletes = false;
            }
            if (dirty) {
              ESTOCADA_RETURN_NOT_OK(
                  sys->RebuildReplicaFromStaging(fragment, replica));
              ++report->batches;
            }
            if (options_.verify) {
              ESTOCADA_RETURN_NOT_OK(sys->VerifyReplica(fragment, replica));
            }
            return sys->AdmitReplica(fragment, replica);
          });
        });
      }

      // Row-store path: snapshot once, append in batches, track what was
      // appended so catch-up is a cheap set difference.
      std::vector<Row> truth;
      ESTOCADA_RETURN_NOT_OK(server_->WithReadLock([&](const Estocada& sys) {
        ESTOCADA_ASSIGN_OR_RETURN(truth, sys.EvaluateFragmentView(fragment));
        return Status::OK();
      }));
      std::set<std::string> appended;
      auto append_batched = [&](const std::vector<Row>& rows) -> Status {
        for (size_t pos = 0; pos < rows.size(); pos += batch_rows) {
          const size_t end = std::min(rows.size(), pos + batch_rows);
          std::vector<Row> batch(rows.begin() + pos, rows.begin() + end);
          ESTOCADA_RETURN_NOT_OK(RetryStoreOp(store_name, report, [&] {
            return server_->WithAdminLock([&](Estocada* sys) {
              return sys->AppendToReplicaRows(fragment, replica, batch);
            });
          }));
          for (const Row& row : batch) appended.insert(RowKey(row));
          ++report->batches;
          report->rows_copied += batch.size();
        }
        return Status::OK();
      };
      ESTOCADA_RETURN_NOT_OK(append_batched(truth));

      // ---- CatchingUp: drain post-snapshot inserts by set difference;
      // a deletion restarts (no append delta exists for it). ----
      ESTOCADA_RETURN_NOT_OK(enter(RepairStage::kCatchingUp));
      for (size_t round = 0; round < options_.max_catchup_rounds; ++round) {
        bool inserts, deletes;
        {
          std::lock_guard<std::mutex> lock(flags->mu);
          inserts = flags->inserts;
          deletes = flags->deletes;
          flags->inserts = false;
        }
        if (deletes) {
          restart = true;
          return Status::OK();
        }
        if (!inserts) break;
        ++report->catchup_rounds;
        std::vector<Row> now;
        ESTOCADA_RETURN_NOT_OK(
            server_->WithReadLock([&](const Estocada& sys) {
              ESTOCADA_ASSIGN_OR_RETURN(now,
                                        sys.EvaluateFragmentView(fragment));
              return Status::OK();
            }));
        std::vector<Row> missing;
        for (Row& row : now) {
          if (appended.find(RowKey(row)) == appended.end()) {
            missing.push_back(std::move(row));
          }
        }
        ESTOCADA_RETURN_NOT_OK(append_batched(missing));
      }

      // ---- Verifying: one exclusive-lock section — residual drain,
      // truth check, sibling digest, admission. ----
      ESTOCADA_RETURN_NOT_OK(enter(RepairStage::kVerifying));
      bool deletes_in_final = false;
      Status admission = RetryStoreOp(store_name, report, [&] {
        return server_->WithAdminLock([&](Estocada* sys) {
          {
            std::lock_guard<std::mutex> lock(flags->mu);
            deletes_in_final = flags->deletes;
          }
          if (deletes_in_final) return Status::OK();  // Restart outside.
          ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> now,
                                    sys->EvaluateFragmentView(fragment));
          std::vector<Row> missing;
          for (Row& row : now) {
            if (appended.find(RowKey(row)) == appended.end()) {
              missing.push_back(std::move(row));
            }
          }
          if (!missing.empty()) {
            ESTOCADA_RETURN_NOT_OK(
                sys->AppendToReplicaRows(fragment, replica, missing));
            for (const Row& row : missing) appended.insert(RowKey(row));
            ++report->batches;
            report->rows_copied += missing.size();
          }
          if (options_.verify) {
            ESTOCADA_RETURN_NOT_OK(sys->VerifyReplica(fragment, replica));
          }
          if (options_.digest_check) {
            ESTOCADA_ASSIGN_OR_RETURN(const catalog::StorageDescriptor* desc,
                                      sys->catalog().GetFragment(fragment));
            Result<uint64_t> mine = sys->ReplicaDigest(fragment, replica);
            if (mine.ok()) {
              for (size_t i = 0; i < desc->replicas.size(); ++i) {
                if (i == replica) continue;
                const catalog::ReplicaPlacement& sib = desc->replicas[i];
                if (sib.rebuilding || sib.epoch != desc->write_epoch) {
                  continue;
                }
                auto handle = sys->catalog().GetStore(sib.store_name);
                if (!handle.ok() || (*handle)->kind != kind) continue;
                Result<uint64_t> theirs = sys->ReplicaDigest(fragment, i);
                if (!theirs.ok()) continue;  // Sibling store down: skip.
                if (*theirs != *mine) {
                  return Status::FailedPrecondition(StrCat(
                      "rebuilt replica #", replica, " of '", fragment,
                      "' digests ", *mine, " but healthy sibling #", i,
                      " digests ", *theirs));
                }
                report->digest_checked = true;
                break;  // One healthy same-kind sibling suffices.
              }
            }
          }
          return sys->AdmitReplica(fragment, replica);
        });
      });
      if (deletes_in_final) {
        restart = true;
        return Status::OK();
      }
      return admission;
    }();

    if (outcome.ok() && !restart) {
      admitted = true;
      break;
    }
    if (!restart) {
      // A verify/digest mismatch can be a transient race losing to a
      // concurrent update burst — start over from the new truth instead
      // of giving up, as long as the restart budget holds.
      if (outcome.code() == StatusCode::kFailedPrecondition &&
          (report->stage == RepairStage::kVerifying ||
           report->stage == RepairStage::kCatchingUp)) {
        continue;
      }
      break;
    }
    // Deletion-triggered restart: loop around with a fresh container.
  }

  server_->RemoveUpdateListener(token);
  if (admitted) {
    report->stage = RepairStage::kAdmitted;
    report->error = Status::OK();
  } else {
    report->stage = RepairStage::kAborted;
    report->error = outcome.ok()
                        ? Status::Aborted(StrCat(
                              "replica rebuild of '", fragment, "'#", replica,
                              " kept restarting under updates; giving up"))
                        : std::move(outcome);
  }
}

RepairReport ReplicaRepairer::RepairReplica(const std::string& fragment,
                                            size_t replica) {
  RepairReport report;
  report.fragment = fragment;
  report.replica = replica;
  active_.fetch_add(1, std::memory_order_acq_rel);
  RunRebuild(&report);
  active_.fetch_sub(1, std::memory_order_acq_rel);
  if (report.admitted()) {
    server_->server_metrics().RecordReplicaRebuild();
  }
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    history_.push_back(report);
  }
  return report;
}

Result<size_t> ReplicaRepairer::Tick() {
  struct Candidate {
    std::string fragment;
    size_t replica;
    std::string store;
  };
  std::vector<Candidate> candidates;
  ESTOCADA_RETURN_NOT_OK(server_->WithReadLock([&](const Estocada& sys) {
    for (const auto& [name, desc] : sys.catalog().fragments()) {
      // Partitioned fragments repair per shard via MaterializeShardReplica
      // (their legacy replica list is a single inert mirror anyway).
      if (desc.is_shadow() || desc.partitioned() || desc.replicas.size() <= 1) {
        continue;
      }
      for (size_t i = 0; i < desc.replicas.size(); ++i) {
        const catalog::ReplicaPlacement& p = desc.replicas[i];
        // Stale (missed writes while its store was down) or stuck
        // mid-rebuild (an earlier repair aborted): both need a rebuild.
        if (p.rebuilding || p.epoch != desc.write_epoch) {
          candidates.push_back({name, i, p.store_name});
        }
      }
    }
    return Status::OK();
  }));
  if (candidates.empty()) return static_cast<size_t>(0);
  // A store whose breaker is still open is still down: rebuilding against
  // it would only burn the retry budget. ExcludedStores() performs due
  // open → half-open transitions, so a recovered store is probed by the
  // repair itself.
  std::vector<std::string> open = server_->health().ExcludedStores();
  size_t admitted = 0;
  for (const Candidate& c : candidates) {
    if (std::find(open.begin(), open.end(), c.store) != open.end()) continue;
    RepairReport report = RepairReplica(c.fragment, c.replica);
    if (report.admitted()) ++admitted;
  }
  return admitted;
}

Result<size_t> ReplicaRepairer::Scrub() {
  struct Member {
    size_t replica;
    catalog::StoreKind kind;
    std::string store;
  };
  struct Scan {
    std::string fragment;
    std::vector<Member> live;
  };
  std::vector<Scan> scans;
  ESTOCADA_RETURN_NOT_OK(server_->WithReadLock([&](const Estocada& sys) {
    for (const auto& [name, desc] : sys.catalog().fragments()) {
      if (desc.is_shadow() || desc.partitioned() || desc.replicas.size() <= 1) {
        continue;
      }
      Scan scan;
      scan.fragment = name;
      for (size_t i = 0; i < desc.replicas.size(); ++i) {
        const catalog::ReplicaPlacement& p = desc.replicas[i];
        // Stale/rebuilding replicas are Tick()'s job, not the scrub's.
        if (p.rebuilding || p.epoch != desc.write_epoch) continue;
        auto handle = sys.catalog().GetStore(p.store_name);
        if (!handle.ok()) continue;
        scan.live.push_back({i, (*handle)->kind, p.store_name});
      }
      if (!scan.live.empty()) scans.push_back(std::move(scan));
    }
    return Status::OK();
  }));
  std::vector<std::string> open = server_->health().ExcludedStores();
  size_t repaired = 0;
  for (const Scan& scan : scans) {
    // Digest screen: same-kind groups of two or more compare digests;
    // only a disagreeing group — or replicas digests cannot cover (text,
    // a kind's lone replica) — pays for truth verification.
    std::map<int, std::vector<const Member*>> by_kind;
    for (const Member& m : scan.live) {
      if (std::find(open.begin(), open.end(), m.store) != open.end()) {
        continue;  // Store down: unreadable, and Tick owns the fallout.
      }
      by_kind[static_cast<int>(m.kind)].push_back(&m);
    }
    std::vector<size_t> suspects;
    for (const auto& [kind, members] : by_kind) {
      bool need_verify =
          static_cast<catalog::StoreKind>(kind) == catalog::StoreKind::kText ||
          members.size() < 2;
      if (!need_verify) {
        std::vector<uint64_t> digests;
        for (const Member* m : members) {
          Result<uint64_t> digest = Status::Unavailable("digest not read");
          Status st = server_->WithReadLock([&](const Estocada& sys) {
            digest = sys.ReplicaDigest(scan.fragment, m->replica);
            return Status::OK();
          });
          if (!st.ok() || !digest.ok()) {
            need_verify = true;
            break;
          }
          digests.push_back(*digest);
        }
        if (!need_verify) {
          need_verify = std::adjacent_find(digests.begin(), digests.end(),
                                           std::not_equal_to<uint64_t>()) !=
                        digests.end();
        }
      }
      if (need_verify) {
        for (const Member* m : members) suspects.push_back(m->replica);
      }
    }
    for (size_t replica : suspects) {
      Status verified = server_->WithReadLock([&](const Estocada& sys) {
        return sys.VerifyReplica(scan.fragment, replica);
      });
      if (verified.ok()) continue;
      RepairReport report = RepairReplica(scan.fragment, replica);
      if (report.admitted()) ++repaired;
    }
  }
  return repaired;
}

std::vector<RepairReport> ReplicaRepairer::history() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  return history_;
}

}  // namespace estocada::replication
