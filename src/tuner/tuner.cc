#include "tuner/tuner.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"

namespace estocada::tuner {

using advisor::CostModel;
using advisor::CostProbe;
using advisor::ScoredCandidate;
using advisor::WorkloadPattern;
using migration::MigrationSpec;
using migration::MigrationStage;
using migration::MigrationStatus;

std::string AutopilotMetricsSnapshot::ToString() const {
  return StrCat("autopilot: ", ticks, " tick(s), ", evaluations,
                " evaluation(s), ", launches, " launch(es), ", completions,
                " completion(s), ", aborts, " abort(s), ", regressions,
                " regression(s), ", reverts, " revert(s), skipped ",
                skipped_ambiguous, " ambiguous / ", skipped_blacklist,
                " blacklist / ", skipped_cooldown, " cooldown / ",
                skipped_concurrency, " concurrency / ", skipped_threshold,
                " threshold / ", skipped_hold, " hold, blacklist size ",
                blacklist_size);
}

std::string Decision::ToString() const {
  std::string out = StrCat("[tick ", tick, "] ", action);
  if (!shape_key.empty()) out = StrCat(out, " shape=", shape_key);
  if (!detail.empty()) out = StrCat(out, "  # ", detail);
  return out;
}

Autopilot::Autopilot(runtime::QueryServer* server,
                     migration::MigrationManager* manager,
                     AutopilotOptions options)
    : server_(server), manager_(manager), options_(std::move(options)) {}

Autopilot::~Autopilot() { Stop(); }

void Autopilot::LogDecision(uint64_t tick, std::string action,
                            std::string shape_key, std::string detail) {
  std::lock_guard<std::mutex> lock(log_mu_);
  decisions_.push_back(Decision{tick, std::move(action), std::move(shape_key),
                                std::move(detail)});
  while (decisions_.size() > options_.decision_log_capacity) {
    decisions_.pop_front();
  }
}

Result<double> Autopilot::MeasureProbes(
    const std::vector<CostProbe>& probes) {
  CostModel model(
      [this](const std::string& text,
             const std::map<std::string, engine::Value>& parameters)
          -> Result<double> {
        ESTOCADA_ASSIGN_OR_RETURN(Estocada::QueryResult r,
                                  server_->Query(text, parameters));
        return r.simulated_cost();
      });
  return model.MeanCost(probes);
}

void Autopilot::RevertLocked(const InFlight& flight, uint64_t tick,
                             double measured) {
  blacklist_.insert(flight.shape_key);
  MigrationSpec spec;
  spec.retire = {flight.fragment_name};
  auto id = manager_->Start(std::move(spec), options_.migration);
  if (!id.ok()) {
    LogDecision(tick, "error", flight.shape_key,
                StrCat("revert of ", flight.fragment_name,
                       " failed to start: ", id.status().ToString()));
    return;
  }
  metrics_.reverts.fetch_add(1, std::memory_order_relaxed);
  // Drop-only migrations are quick (no backfill); waiting keeps the tick
  // deterministic and guarantees the bad fragment is gone before the
  // next evaluation round sees the catalog.
  auto final_status = manager_->Wait(*id);
  LogDecision(
      tick, "revert", flight.shape_key,
      StrCat("measured ", measured, " vs observed ", flight.observed_mean_cost,
             " (predicted ", flight.predicted_cost, "): dropped ",
             flight.fragment_name, ", blacklisted",
             final_status.ok() ? "" : " (revert migration itself failed)"));
}

void Autopilot::HarvestCompletionsLocked(uint64_t tick) {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    auto status = manager_->GetStatus(it->migration_id);
    if (!status.ok()) {
      LogDecision(tick, "error", it->shape_key,
                  StrCat("lost migration ", it->migration_id, ": ",
                         status.status().ToString()));
      it = in_flight_.erase(it);
      continue;
    }
    if (status->stage != MigrationStage::kRetired &&
        status->stage != MigrationStage::kAborted) {
      ++it;
      continue;
    }
    cooldown_until_[it->shape_key] = tick + options_.cooldown_ticks;
    if (status->stage == MigrationStage::kAborted) {
      // The migration machinery itself gave up (fault storm, verify
      // failure): blacklist the shape so the loop does not relaunch a
      // migration that just proved unviable.
      metrics_.aborts.fetch_add(1, std::memory_order_relaxed);
      blacklist_.insert(it->shape_key);
      LogDecision(tick, "abort", it->shape_key,
                  StrCat("migration ", it->migration_id, " aborted: ",
                         status->error.ToString(), "; blacklisted"));
    } else if (it->probes.empty()) {
      // No recorded bindings to re-measure with; accept the cutover.
      metrics_.completions.fetch_add(1, std::memory_order_relaxed);
      LogDecision(tick, "complete", it->shape_key,
                  "retired (no probes to verify the gain)");
    } else {
      auto measured = MeasureProbes(it->probes);
      if (!measured.ok()) {
        metrics_.completions.fetch_add(1, std::memory_order_relaxed);
        LogDecision(tick, "complete", it->shape_key,
                    StrCat("retired; post-cutover measurement failed: ",
                           measured.status().ToString()));
      } else if (*measured >=
                 it->observed_mean_cost *
                     (1.0 - options_.min_realized_improvement)) {
        // The cost model lied: serving got no better (or worse). Undo.
        metrics_.regressions.fetch_add(1, std::memory_order_relaxed);
        RevertLocked(*it, tick, *measured);
      } else {
        metrics_.completions.fetch_add(1, std::memory_order_relaxed);
        LogDecision(tick, "complete", it->shape_key,
                    StrCat("realized ", *measured, " vs observed ",
                           it->observed_mean_cost, " (predicted ",
                           it->predicted_cost, ")"));
      }
    }
    it = in_flight_.erase(it);
  }
}

Status Autopilot::TickOnce() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  uint64_t tick = metrics_.ticks.fetch_add(1, std::memory_order_relaxed) + 1;

  HarvestCompletionsLocked(tick);

  // External hold (e.g. a replica rebuild in flight): harvesting above is
  // safe — those migrations already ran — but launching a layout change
  // now would race whoever raised the hold.
  if (options_.hold && options_.hold()) {
    metrics_.skipped_hold.fetch_add(1, std::memory_order_relaxed);
    LogDecision(tick, "skip-hold", "", "external hold raised");
    return Status::OK();
  }

  advisor::PatternSummary pattern =
      server_->ClassifyWorkload(options_.advisor);
  if (pattern.pattern == WorkloadPattern::kInsufficient) {
    return Status::OK();  // Nothing observed yet; try again later.
  }
  if (options_.advisor.require_dominant_pattern &&
      pattern.pattern == WorkloadPattern::kMixed) {
    metrics_.skipped_ambiguous.fetch_add(1, std::memory_order_relaxed);
    LogDecision(tick, "skip-ambiguous", "", pattern.ToString());
    return Status::OK();
  }

  std::vector<ScoredCandidate> candidates =
      server_->AdviseCandidates(options_.advisor);
  for (ScoredCandidate& c : candidates) {
    metrics_.evaluations.fetch_add(1, std::memory_order_relaxed);
    if (c.rec.action == advisor::Recommendation::Action::kDropFragment) {
      // Drop advice stays advisory: autonomously deleting fragments is a
      // sharper knife than adding them, and the add path never needs it.
      LogDecision(tick, "skip-drop", "", c.rec.ToString());
      continue;
    }
    if (blacklist_.count(c.shape_key) != 0) {
      metrics_.skipped_blacklist.fetch_add(1, std::memory_order_relaxed);
      LogDecision(tick, "skip-blacklist", c.shape_key, "shape blacklisted");
      continue;
    }
    bool already_migrating =
        std::any_of(in_flight_.begin(), in_flight_.end(),
                    [&](const InFlight& f) {
                      return f.shape_key == c.shape_key;
                    });
    auto cooldown = cooldown_until_.find(c.shape_key);
    if (already_migrating ||
        (cooldown != cooldown_until_.end() && cooldown->second > tick)) {
      metrics_.skipped_cooldown.fetch_add(1, std::memory_order_relaxed);
      LogDecision(tick, "skip-cooldown", c.shape_key,
                  already_migrating ? "migration already in flight"
                                    : StrCat("cooling down until tick ",
                                             cooldown->second));
      continue;
    }
    if (in_flight_.size() >= options_.max_concurrent_migrations) {
      metrics_.skipped_concurrency.fetch_add(1, std::memory_order_relaxed);
      LogDecision(tick, "skip-concurrency", c.shape_key,
                  StrCat(in_flight_.size(), " migration(s) in flight"));
      continue;
    }
    double predicted =
        CostModel::PredictProbeCost(c.store_kind, c.observed_mean_rows) *
        options_.cost_model_bias;
    double required =
        c.observed_mean_cost * (1.0 - options_.min_cost_improvement);
    if (predicted > required) {
      metrics_.skipped_threshold.fetch_add(1, std::memory_order_relaxed);
      LogDecision(tick, "skip-threshold", c.shape_key,
                  StrCat("predicted ", predicted, " vs required <= ",
                         required, " (observed ", c.observed_mean_cost, ")"));
      continue;
    }
    // Launch. The advisor's fresh names restart at 0 every call, so the
    // tuner renames the target with its own monotonic counter — two ticks
    // must never produce colliding fragment names.
    std::string fragment = StrCat("F_auto_", launch_counter_++);
    c.rec.view.query.name = fragment;
    std::shared_ptr<WakeSignal> wake = wake_;
    auto id = manager_->StartRecommendation(
        c.rec, options_.migration,
        [wake](uint64_t, const MigrationStatus&) {
          std::lock_guard<std::mutex> wlock(wake->mu);
          wake->nudged = true;
          wake->cv.notify_all();
        });
    if (!id.ok()) {
      LogDecision(tick, "error", c.shape_key,
                  StrCat("launch failed: ", id.status().ToString()));
      continue;
    }
    metrics_.launches.fetch_add(1, std::memory_order_relaxed);
    LogDecision(tick, "launch", c.shape_key,
                StrCat("migration ", *id, " -> ", fragment, " @ ",
                       c.rec.store_name, ": predicted ", predicted,
                       " vs observed ", c.observed_mean_cost, " over ",
                       c.count, " call(s)"));
    in_flight_.push_back(InFlight{*id, c.shape_key, std::move(fragment),
                                  c.observed_mean_cost, predicted,
                                  std::move(c.probes)});
  }
  return Status::OK();
}

void Autopilot::DaemonLoop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    (void)TickOnce();
    std::unique_lock<std::mutex> lock(wake_->mu);
    wake_->cv.wait_for(
        lock, std::chrono::microseconds(options_.tick_period_micros), [&] {
          return stop_requested_.load(std::memory_order_acquire) ||
                 wake_->nudged;
        });
    wake_->nudged = false;
  }
}

void Autopilot::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_requested_.store(false, std::memory_order_release);
  daemon_ = std::thread([this] { DaemonLoop(); });
}

void Autopilot::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_->mu);
    wake_->cv.notify_all();
  }
  if (daemon_.joinable()) daemon_.join();
  running_.store(false, std::memory_order_release);
}

AutopilotMetricsSnapshot Autopilot::metrics() const {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  AutopilotMetricsSnapshot s;
  s.ticks = metrics_.ticks.load(kRelaxed);
  s.evaluations = metrics_.evaluations.load(kRelaxed);
  s.launches = metrics_.launches.load(kRelaxed);
  s.completions = metrics_.completions.load(kRelaxed);
  s.aborts = metrics_.aborts.load(kRelaxed);
  s.regressions = metrics_.regressions.load(kRelaxed);
  s.reverts = metrics_.reverts.load(kRelaxed);
  s.skipped_ambiguous = metrics_.skipped_ambiguous.load(kRelaxed);
  s.skipped_blacklist = metrics_.skipped_blacklist.load(kRelaxed);
  s.skipped_cooldown = metrics_.skipped_cooldown.load(kRelaxed);
  s.skipped_concurrency = metrics_.skipped_concurrency.load(kRelaxed);
  s.skipped_threshold = metrics_.skipped_threshold.load(kRelaxed);
  s.skipped_hold = metrics_.skipped_hold.load(kRelaxed);
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    s.blacklist_size = blacklist_.size();
  }
  return s;
}

std::vector<Decision> Autopilot::decision_log() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return {decisions_.begin(), decisions_.end()};
}

std::vector<std::string> Autopilot::blacklist() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return {blacklist_.begin(), blacklist_.end()};
}

size_t Autopilot::in_flight() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return in_flight_.size();
}

}  // namespace estocada::tuner
