#ifndef ESTOCADA_TUNER_TUNER_H_
#define ESTOCADA_TUNER_TUNER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/cost_model.h"
#include "migration/migration.h"
#include "runtime/query_server.h"

namespace estocada::tuner {

/// Tuning knobs of the Autopilot decision loop (DESIGN.md "Autopilot").
struct AutopilotOptions {
  /// Advisor configuration for candidate enumeration. Defaults to the
  /// cautious profile: with require_dominant_pattern on, an ambiguous
  /// 50/50 workload yields *no* candidates — an autonomous tuner must
  /// never migrate on a coin-flip.
  advisor::AdvisorOptions advisor = [] {
    advisor::AdvisorOptions o;
    o.require_dominant_pattern = true;
    return o;
  }();

  /// A candidate launches only when its predicted per-probe cost beats
  /// the observed mean by at least this fraction (0.2 = predicted cost
  /// must be <= 80% of observed).
  double min_cost_improvement = 0.2;

  /// Concurrent-migration cap: launches beyond it wait for a later tick.
  size_t max_concurrent_migrations = 1;

  /// Ticks a shape stays off-limits after its migration terminates
  /// (success or abort) — back-to-back re-tuning of one shape is churn.
  size_t cooldown_ticks = 4;

  /// After cutover the realized probe cost must be strictly below
  /// observed * (1 - min_realized_improvement), or the Autopilot reverts
  /// the migration and blacklists the shape. 0 = any non-improvement
  /// (measured >= observed) is a regression.
  double min_realized_improvement = 0.0;

  /// Multiplies the blueprint prediction before the threshold check.
  /// 1.0 = trust the model. The "cost model lies" bench leg sets it low
  /// to force launches the post-cutover measurement must then catch.
  double cost_model_bias = 1.0;

  /// Bounded structured decision log (oldest entries evicted).
  size_t decision_log_capacity = 256;

  /// Daemon mode: sleep between ticks (a completion callback wakes the
  /// loop early so terminal migrations are handled promptly).
  uint64_t tick_period_micros = 50'000;

  /// Options for the migrations the Autopilot launches.
  migration::MigrationOptions migration;

  /// External hold: while set and returning true, a tick still harvests
  /// terminal migrations but launches nothing new. The replication layer
  /// wires the ReplicaRepairer's repair_in_progress() in here so an
  /// autonomous layout change never races a replica rebuild.
  std::function<bool()> hold;
};

/// Counter snapshot of the decision loop (relaxed atomics underneath,
/// mirroring ServerMetrics).
struct AutopilotMetricsSnapshot {
  uint64_t ticks = 0;                ///< TickOnce passes.
  uint64_t evaluations = 0;          ///< Candidates scored.
  uint64_t launches = 0;             ///< Migrations started.
  uint64_t completions = 0;          ///< Migrations retired successfully.
  uint64_t aborts = 0;               ///< Migrations that ended kAborted.
  uint64_t regressions = 0;          ///< Post-cutover cost regressions.
  uint64_t reverts = 0;              ///< Revert migrations launched.
  uint64_t skipped_ambiguous = 0;    ///< Ticks skipped on a mixed pattern.
  uint64_t skipped_blacklist = 0;    ///< Candidates skipped: blacklisted.
  uint64_t skipped_cooldown = 0;     ///< Candidates skipped: cooling down.
  uint64_t skipped_concurrency = 0;  ///< Candidates skipped: cap reached.
  uint64_t skipped_threshold = 0;    ///< Candidates skipped: gain too small.
  uint64_t skipped_hold = 0;         ///< Ticks skipped: external hold up.
  uint64_t blacklist_size = 0;       ///< Shapes currently blacklisted.

  std::string ToString() const;
};

/// One structured entry of the Autopilot's decision log.
struct Decision {
  uint64_t tick = 0;
  /// "launch", "complete", "revert", "abort", "skip-blacklist",
  /// "skip-cooldown", "skip-concurrency", "skip-threshold",
  /// "skip-ambiguous", "skip-drop", "skip-hold", "error".
  std::string action;
  std::string shape_key;  ///< Source shape ("" for tick-level entries).
  std::string detail;     ///< Human-readable rationale with the numbers.

  std::string ToString() const;
};

/// The Autopilot: an autonomous self-tuning daemon that closes the
/// advisor -> migration loop. Each tick it
///
///  1. harvests terminal migrations it launched: a retired migration is
///     re-measured with the shape's recorded probes, and when the
///     realized cost regressed instead of improved (the cost model
///     lied), the new fragment is reverted (drop-only migration) and the
///     shape blacklisted;
///  2. classifies the live workload under the server's shared lock and
///     refuses to act on an ambiguous mix;
///  3. scores each advisor candidate — blueprint-predicted cost vs the
///     observed mean from the workload log — and launches a migration
///     through the MigrationManager when the prediction clears the
///     improvement threshold and every guardrail (blacklist, cooldown,
///     concurrency cap) passes.
///
/// TickOnce() is the deterministic entry (tests and benches drive it
/// directly); Start()/Stop() wrap it in a background daemon thread.
/// Thread-safe; faults on the query path surface as skipped probes, not
/// crashes (the HealthRegistry keeps serving degraded underneath).
class Autopilot {
 public:
  Autopilot(runtime::QueryServer* server,
            migration::MigrationManager* manager,
            AutopilotOptions options = {});
  ~Autopilot();

  Autopilot(const Autopilot&) = delete;
  Autopilot& operator=(const Autopilot&) = delete;

  /// One deterministic decision-loop pass (see class comment). Safe to
  /// call concurrently with serving traffic; not reentrant with itself
  /// (an internal mutex serializes ticks).
  Status TickOnce();

  /// Starts the daemon thread (idempotent).
  void Start();
  /// Stops and joins the daemon thread; in-flight migrations keep
  /// running (the MigrationManager owns them).
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  AutopilotMetricsSnapshot metrics() const;

  /// Copy of the bounded decision log, oldest first.
  std::vector<Decision> decision_log() const;

  /// Currently blacklisted shape keys.
  std::vector<std::string> blacklist() const;

  /// Migrations launched and not yet harvested by a tick.
  size_t in_flight() const;

 private:
  /// A migration the Autopilot launched, awaiting harvest.
  struct InFlight {
    uint64_t migration_id = 0;
    std::string shape_key;
    std::string fragment_name;         ///< The F_auto_<n> target.
    double observed_mean_cost = 0;     ///< Pre-migration baseline.
    double predicted_cost = 0;         ///< What the model promised.
    std::vector<advisor::CostProbe> probes;
  };

  /// Harvests terminal migrations; tick_mu_ held.
  void HarvestCompletionsLocked(uint64_t tick);
  /// Mean simulated probe cost against the live server layout.
  Result<double> MeasureProbes(const std::vector<advisor::CostProbe>& probes);
  /// Reverts a regressed migration (drop-only) and blacklists its shape;
  /// tick_mu_ held.
  void RevertLocked(const InFlight& flight, uint64_t tick, double measured);
  void LogDecision(uint64_t tick, std::string action, std::string shape_key,
                   std::string detail);
  void DaemonLoop();

  runtime::QueryServer* server_;
  migration::MigrationManager* manager_;
  AutopilotOptions options_;

  /// Serializes ticks and guards the decision state below. Completion
  /// callbacks never take it — they only nudge wake_cv_ — so a worker
  /// thread finishing mid-tick cannot deadlock with the tick.
  mutable std::mutex tick_mu_;
  std::vector<InFlight> in_flight_;
  std::set<std::string> blacklist_;
  std::map<std::string, uint64_t> cooldown_until_;  ///< shape -> tick.
  uint64_t launch_counter_ = 0;  ///< Names fragments F_auto_<n>.

  mutable std::mutex log_mu_;
  std::deque<Decision> decisions_;

  struct Metrics {
    std::atomic<uint64_t> ticks{0};
    std::atomic<uint64_t> evaluations{0};
    std::atomic<uint64_t> launches{0};
    std::atomic<uint64_t> completions{0};
    std::atomic<uint64_t> aborts{0};
    std::atomic<uint64_t> regressions{0};
    std::atomic<uint64_t> reverts{0};
    std::atomic<uint64_t> skipped_ambiguous{0};
    std::atomic<uint64_t> skipped_blacklist{0};
    std::atomic<uint64_t> skipped_cooldown{0};
    std::atomic<uint64_t> skipped_concurrency{0};
    std::atomic<uint64_t> skipped_threshold{0};
    std::atomic<uint64_t> skipped_hold{0};
  };
  mutable Metrics metrics_;

  /// Daemon wake signal. Shared-ptr-owned so completion callbacks (which
  /// run on MigrationManager worker threads and may outlive this object)
  /// capture the signal, never `this`.
  struct WakeSignal {
    std::mutex mu;
    std::condition_variable cv;
    bool nudged = false;  ///< A completion wants a prompt tick.
  };
  std::shared_ptr<WakeSignal> wake_ = std::make_shared<WakeSignal>();
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread daemon_;
};

}  // namespace estocada::tuner

#endif  // ESTOCADA_TUNER_TUNER_H_
