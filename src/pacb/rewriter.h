#ifndef ESTOCADA_PACB_REWRITER_H_
#define ESTOCADA_PACB_REWRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "chase/containment.h"
#include "common/result.h"
#include "pacb/feasibility.h"
#include "pacb/view.h"
#include "pivot/query.h"
#include "pivot/schema.h"

namespace estocada {
class ThreadPool;
}

namespace estocada::pacb {

/// Knobs for a rewriting run.
struct RewriterOptions {
  chase::ChaseOptions chase;
  /// Upper bound on returned rewritings (smallest-body first).
  size_t max_rewritings = 16;
  /// Verify each provenance-derived candidate with a chase-based
  /// containment check. Sound candidates only; costs one small chase per
  /// candidate. Disable only in benchmarks measuring raw candidate
  /// generation.
  bool verify_candidates = true;
  /// Optional worker pool for candidate verification. When set (and
  /// provenance tracking is on), provenance-derived candidates and each
  /// minimization round's drop probes are chase-verified concurrently —
  /// one chase scratch per worker, shared state read-only. Results are
  /// merged into the same memo the sequential path fills, and the accept
  /// loop consumes them in the identical order, so the rewriting set is
  /// byte-for-byte the same with and without a pool. The pool path
  /// verifies speculatively (it does not early-stop at max_rewritings or
  /// at the first successful drop), so `candidates_verified` may be
  /// higher than in a sequential run. nullptr = sequential.
  ThreadPool* verify_pool = nullptr;
  /// Drop rewritings that violate access-pattern feasibility.
  bool require_feasible = true;
  /// Ablation switch: when false, the backchase does not track provenance
  /// and candidates are enumerated naively from the universal plan (this
  /// is what makes "naive C&B" slow; kept here so the E3 bench can flip
  /// one flag).
  bool track_provenance = true;
  /// Subset-size cap for the naive enumeration path (0 = |universal plan|).
  size_t naive_max_subset = 0;
};

/// Counters reported by one rewriting run (feed the E3 bench and the demo
/// "inspect the output of the PACB rewriting algorithm" step).
struct RewriterStats {
  size_t universal_plan_atoms = 0;   ///< View atoms in the universal plan.
  size_t forward_chase_atoms = 0;    ///< Instance size after forward chase.
  size_t backchase_atoms = 0;        ///< Instance size after backchase.
  size_t query_matches = 0;          ///< Matches of Q in the backchase.
  size_t candidates_considered = 0;  ///< Candidate subsets examined.
  size_t candidates_verified = 0;    ///< Chase-verification calls made.
  size_t rewritings_found = 0;
};

/// One rewriting: a CQ whose body mentions only view relations, equivalent
/// to the input query under the schema + view constraints.
struct Rewriting {
  pivot::ConjunctiveQuery query;
  bool feasible = true;  ///< Under the views' access patterns.
};

struct RewritingResult {
  std::vector<Rewriting> rewritings;  ///< Sorted by body size ascending.
  RewriterStats stats;
};

/// Stable multi-line rendering of a rewriting set: a count header followed
/// by one "  <query text>[  [infeasible]]" line per rewriting, ordered by
/// (body size, text) so the output is independent of tie-breaks inside the
/// rewriter. Golden-file tests diff this against checked-in expectations.
std::string DescribeRewritingSet(const RewritingResult& result);

/// View-based query rewriting under constraints via the Provenance-Aware
/// Chase & Backchase (PACB) of Ileana, Cautis, Deutsch & Katsis
/// (SIGMOD'14), the engine at the heart of ESTOCADA:
///
///  1. (chase) Freeze the query body and chase it with the schema
///     constraints plus the forward view constraints; the view atoms
///     produced form the *universal plan*.
///  2. (backchase) Chase the universal plan with the schema constraints
///     plus the *backward* view constraints, annotating every derived atom
///     with a provenance formula — a minimized positive DNF over universal
///     plan atom ids recording which view atoms suffice to derive it.
///  3. Every match of the query in the backchased instance (with the head
///     mapped onto the frozen head terms) contributes the conjunction of
///     its atoms' provenance; the minimal disjuncts of the combined
///     formula are the candidate rewritings.
///  4. Candidates are (optionally, on by default) verified with a
///     chase-based containment check, filtered for access-pattern
///     feasibility, and returned smallest-first.
class Rewriter {
 public:
  /// `schema` carries the source relations and their constraints (data
  /// model encodings, keys...); `views` describe the stored fragments.
  Rewriter(pivot::Schema schema, std::vector<ViewDefinition> views);

  /// Pre-compiles the view constraints; call once before Rewrite.
  Status Prepare();

  /// Rewrites `query` (a CQ over source relations) into equivalent CQs
  /// over view relations. Returns kNoRewriting when none exists.
  Result<RewritingResult> Rewrite(const pivot::ConjunctiveQuery& query,
                                  const RewriterOptions& options = {}) const;

  const std::vector<ViewDefinition>& views() const { return views_; }
  const pivot::Schema& schema() const { return schema_; }
  const AdornmentMap& view_adornments() const { return adornments_; }

 private:
  struct UniversalPlan {
    /// View atoms produced by the forward chase (ground: nulls+constants).
    std::vector<pivot::Atom> view_atoms;
    /// Canonical image of each frozen query head term after the chase.
    std::vector<pivot::Term> head_targets;
    /// null id -> original query variable name (for readable rewritings
    /// and for preserving '$'-parameter names).
    std::map<uint64_t, std::string> null_names;
    /// The forward-chase instance the plan was read off (the frozen query
    /// body chased with schema + forward view constraints). Kept because it
    /// doubles as the right-hand side of the exactness test q ⊑ candidate:
    /// a candidate whose atoms all still denote atoms of this instance is
    /// exact by the identity homomorphism, no chase needed.
    chase::Instance instance;
  };

  /// Phase 1: forward chase. Fails with kNoRewriting if no view atom is
  /// derivable.
  Result<UniversalPlan> BuildUniversalPlan(const pivot::ConjunctiveQuery& q,
                                           const RewriterOptions& options,
                                           chase::ChaseEngine* forward,
                                           RewriterStats* stats) const;

  /// Converts a subset of universal-plan atoms into a candidate CQ.
  /// Returns kInvalidArgument when a head target is not covered.
  Result<pivot::ConjunctiveQuery> CandidateToQuery(
      const pivot::ConjunctiveQuery& q, const UniversalPlan& plan,
      const std::vector<uint32_t>& atom_ids) const;


  pivot::Schema schema_;
  std::vector<ViewDefinition> views_;
  /// schema + view fwd / bwd constraints. Shared immutable vectors:
  /// Rewrite() stamps out per-call ChaseEngines over them (Rewrite is
  /// const and must stay safe for concurrent callers, so the engines —
  /// which hold run scratch — cannot live here).
  std::shared_ptr<const std::vector<pivot::Dependency>> forward_deps_;
  std::shared_ptr<const std::vector<pivot::Dependency>> backward_deps_;
  AdornmentMap adornments_;
  bool prepared_ = false;

  friend class NaiveChaseBackchase;
};

}  // namespace estocada::pacb

#endif  // ESTOCADA_PACB_REWRITER_H_
