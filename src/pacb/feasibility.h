#ifndef ESTOCADA_PACB_FEASIBILITY_H_
#define ESTOCADA_PACB_FEASIBILITY_H_

#include <map>
#include <string>
#include <vector>

#include "pivot/query.h"
#include "pivot/schema.h"

namespace estocada::pacb {

/// Map from relation name to the adornments of its positions. Relations
/// absent from the map are all-free.
using AdornmentMap = std::map<std::string, std::vector<pivot::Adornment>>;

/// Decides whether `body` is *feasible* under access-pattern restrictions:
/// there is an evaluation order in which every kInput position of every
/// atom is bound at the time the atom is accessed. Bound means: a
/// constant, a '$'-prefixed parameter variable (provided by the
/// application at execution time), or a variable output by an earlier
/// atom. This implements the paper's "the information needed to access a
/// given data source is either provided by the query, or has been obtained
/// from data sources previously accessed".
///
/// The greedy strategy is complete here: once an atom becomes accessible
/// it stays accessible, so any feasible order can be reproduced greedily.
bool IsFeasible(const std::vector<pivot::Atom>& body,
                const AdornmentMap& adornments);

/// Returns a feasible evaluation order (indices into `body`), or empty if
/// none exists. The order is the greedy one: at each step the first
/// accessible unused atom (stable, so plans are deterministic).
std::vector<size_t> FeasibleOrder(const std::vector<pivot::Atom>& body,
                                  const AdornmentMap& adornments);

/// True for variables bound by the application at execution time ("$uid").
bool IsParameterVariable(const std::string& name);

}  // namespace estocada::pacb

#endif  // ESTOCADA_PACB_FEASIBILITY_H_
