#include "pacb/view.h"

#include "common/strings.h"

namespace estocada::pacb {

using pivot::Atom;
using pivot::Dependency;
using pivot::Egd;
using pivot::Term;
using pivot::Tgd;

Result<ViewConstraints> MakeViewConstraints(const ViewDefinition& view) {
  ESTOCADA_RETURN_NOT_OK(view.query.Validate());
  if (!view.adornments.empty() &&
      view.adornments.size() != view.query.arity()) {
    return Status::InvalidArgument(
        StrCat("view '", view.name(), "': adornment count ",
               view.adornments.size(), " != arity ", view.query.arity()));
  }
  Atom head_atom(view.name(), view.query.head);

  Tgd forward;
  forward.label = StrCat("view:", view.name(), ":fwd");
  forward.body = view.query.body;
  forward.head = {head_atom};

  Tgd backward;
  backward.label = StrCat("view:", view.name(), ":bwd");
  backward.body = {head_atom};
  backward.head = view.query.body;

  ViewConstraints out;
  out.forward = Dependency::FromTgd(std::move(forward));
  out.backward = Dependency::FromTgd(std::move(backward));
  return out;
}

Result<std::vector<Dependency>> CompileViewConstraints(
    const std::vector<ViewDefinition>& views, ViewConstraintDirection which) {
  std::vector<Dependency> out;
  for (const ViewDefinition& v : views) {
    ESTOCADA_ASSIGN_OR_RETURN(ViewConstraints vc, MakeViewConstraints(v));
    if (which != ViewConstraintDirection::kBackward) {
      out.push_back(vc.forward);
    }
    if (which != ViewConstraintDirection::kForward) {
      out.push_back(vc.backward);
    }
  }
  return out;
}

}  // namespace estocada::pacb
