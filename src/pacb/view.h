#ifndef ESTOCADA_PACB_VIEW_H_
#define ESTOCADA_PACB_VIEW_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "pivot/dependency.h"
#include "pivot/query.h"
#include "pivot/schema.h"

namespace estocada::pacb {

/// A materialized view in the pivot model: a named CQ over the source
/// schema whose head relation is the view's *stored* relation. In ESTOCADA
/// every fragment stored in some DMS is described by one of these (the
/// "what" part of a storage descriptor).
struct ViewDefinition {
  /// The defining query over the source/pivot relations; `query.name` is
  /// the stored relation name (e.g. "V_cart_by_user").
  pivot::ConjunctiveQuery query;

  /// Access-pattern adornment of the stored relation's positions. Empty
  /// means all-free; a kInput position encodes a binding-pattern store
  /// (e.g. the key column of a key-value fragment must be bound first).
  std::vector<pivot::Adornment> adornments;

  const std::string& name() const { return query.name; }
  size_t arity() const { return query.arity(); }
};

/// The LAV constraint pair for a view V(x̄) :- body(x̄, ȳ):
///   forward:  body(x̄, ȳ) → V(x̄)          ("data in the sources appears
///                                           in the view")
///   backward: V(x̄) → ∃ȳ body(x̄, ȳ)       ("view tuples are witnessed by
///                                           source data")
/// Chasing a query with forward constraints introduces the view atoms
/// available for rewriting; chasing candidate rewritings with backward
/// constraints re-expands them for the containment check.
struct ViewConstraints {
  pivot::Dependency forward;
  pivot::Dependency backward;
};

/// Builds the forward/backward dependency pair for `view`. Fails when the
/// view query is unsafe or has an empty body.
Result<ViewConstraints> MakeViewConstraints(const ViewDefinition& view);

/// Convenience: compiles a whole view set; `which` selects the directions.
enum class ViewConstraintDirection { kForward, kBackward, kBoth };
Result<std::vector<pivot::Dependency>> CompileViewConstraints(
    const std::vector<ViewDefinition>& views, ViewConstraintDirection which);

}  // namespace estocada::pacb

#endif  // ESTOCADA_PACB_VIEW_H_
