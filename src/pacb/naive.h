#ifndef ESTOCADA_PACB_NAIVE_H_
#define ESTOCADA_PACB_NAIVE_H_

#include "pacb/rewriter.h"

namespace estocada::pacb {

/// The classical (pre-PACB) Chase & Backchase: build the universal plan by
/// the forward chase, then *enumerate subqueries of the universal plan
/// bottom-up by size* and run a full chase-based equivalence check on each
/// one. This is the algorithm "long considered too inefficient to be of
/// practical relevance" that the paper contrasts PACB against; bench E3
/// reproduces the 1–2 orders of magnitude gap.
///
/// Implemented as a thin driver over Rewriter with provenance tracking
/// off, so both algorithms share the chase machinery and the comparison
/// isolates exactly the provenance bookkeeping.
class NaiveChaseBackchase {
 public:
  NaiveChaseBackchase(pivot::Schema schema, std::vector<ViewDefinition> views)
      : rewriter_(std::move(schema), std::move(views)) {}

  Status Prepare() { return rewriter_.Prepare(); }

  /// Same contract as Rewriter::Rewrite. `options.naive_max_subset` caps
  /// the enumerated subquery size (0 = universal plan size).
  Result<RewritingResult> Rewrite(const pivot::ConjunctiveQuery& query,
                                  RewriterOptions options = {}) const {
    options.track_provenance = false;
    options.verify_candidates = true;  // The naive algorithm must verify.
    return rewriter_.Rewrite(query, options);
  }

  const Rewriter& rewriter() const { return rewriter_; }

 private:
  Rewriter rewriter_;
};

}  // namespace estocada::pacb

#endif  // ESTOCADA_PACB_NAIVE_H_
