#include "pacb/rewriter.h"

#include <algorithm>
#include <unordered_set>

#include "chase/containment.h"
#include "chase/homomorphism.h"
#include "common/strings.h"

namespace estocada::pacb {

using chase::Instance;
using chase::Match;
using chase::ProvFormula;
using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Substitution;
using pivot::Term;

Rewriter::Rewriter(pivot::Schema schema, std::vector<ViewDefinition> views)
    : schema_(std::move(schema)), views_(std::move(views)) {}

Status Rewriter::Prepare() {
  forward_deps_ = schema_.dependencies();
  backward_deps_ = schema_.dependencies();
  for (const ViewDefinition& v : views_) {
    ESTOCADA_ASSIGN_OR_RETURN(ViewConstraints vc, MakeViewConstraints(v));
    forward_deps_.push_back(vc.forward);
    backward_deps_.push_back(vc.backward);
    if (!v.adornments.empty()) {
      adornments_[v.name()] = v.adornments;
    }
  }
  prepared_ = true;
  return Status::OK();
}

Result<Rewriter::UniversalPlan> Rewriter::BuildUniversalPlan(
    const ConjunctiveQuery& q, const RewriterOptions& options,
    RewriterStats* stats) const {
  pivot::FrozenBody fb = pivot::FreezeBody(q);
  Instance inst;
  ESTOCADA_RETURN_NOT_OK(inst.InsertAll(fb.atoms));
  ESTOCADA_RETURN_NOT_OK(RunChase(forward_deps_, &inst, options.chase));
  stats->forward_chase_atoms = inst.live_size();

  UniversalPlan plan;
  std::unordered_set<std::string> view_names;
  for (const ViewDefinition& v : views_) view_names.insert(v.name());
  for (const ViewDefinition& v : views_) {
    for (size_t id : inst.AtomsOf(v.name())) {
      if (!inst.alive(id)) continue;
      plan.view_atoms.push_back(inst.atom(id));
    }
  }
  // Deterministic order (relation name, then terms) so candidate ids and
  // rewriting variable names are stable run to run.
  std::sort(plan.view_atoms.begin(), plan.view_atoms.end());
  plan.view_atoms.erase(
      std::unique(plan.view_atoms.begin(), plan.view_atoms.end()),
      plan.view_atoms.end());
  stats->universal_plan_atoms = plan.view_atoms.size();

  for (const Term& h : q.head) {
    plan.head_targets.push_back(
        inst.Canonical(pivot::ApplySubstitution(fb.freeze, h)));
  }
  for (const auto& [var, null_term] : fb.freeze) {
    Term canon = inst.Canonical(null_term);
    if (!canon.is_labelled_null()) continue;
    auto it = plan.null_names.find(canon.null_id());
    // Prefer parameter names ('$uid'), then keep the first seen.
    if (it == plan.null_names.end() ||
        (IsParameterVariable(var) && !IsParameterVariable(it->second))) {
      plan.null_names[canon.null_id()] = var;
    }
  }
  return plan;
}

namespace {

/// Names a canonical null for use as a rewriting variable.
std::string NullVarName(const std::map<uint64_t, std::string>& names,
                        uint64_t null_id) {
  auto it = names.find(null_id);
  if (it != names.end()) return it->second;
  return StrCat("_x", null_id);
}

}  // namespace

Result<ConjunctiveQuery> Rewriter::CandidateToQuery(
    const ConjunctiveQuery& q, const UniversalPlan& plan,
    const std::vector<uint32_t>& atom_ids) const {
  ConjunctiveQuery out;
  out.name = q.name;
  std::unordered_set<uint64_t> covered;
  for (uint32_t id : atom_ids) {
    if (id >= plan.view_atoms.size()) {
      return Status::Internal("candidate atom id out of range");
    }
    const Atom& ground = plan.view_atoms[id];
    Atom a;
    a.relation = ground.relation;
    for (const Term& t : ground.terms) {
      if (t.is_labelled_null()) {
        covered.insert(t.null_id());
        a.terms.push_back(Term::Var(NullVarName(plan.null_names, t.null_id())));
      } else {
        a.terms.push_back(t);
      }
    }
    out.body.push_back(std::move(a));
  }
  for (const Term& target : plan.head_targets) {
    if (target.is_labelled_null()) {
      if (!covered.count(target.null_id())) {
        return Status::InvalidArgument(
            "candidate does not expose a head value");
      }
      out.head.push_back(
          Term::Var(NullVarName(plan.null_names, target.null_id())));
    } else {
      out.head.push_back(target);
    }
  }
  return out;
}

Result<bool> Rewriter::VerifyCandidate(const ConjunctiveQuery& candidate,
                                       const ConjunctiveQuery& q,
                                       const RewriterOptions& options) const {
  // Soundness: candidate ⊑ q under schema + backward view constraints.
  ESTOCADA_ASSIGN_OR_RETURN(
      bool sound,
      chase::IsContainedIn(candidate, q, backward_deps_, options.chase));
  if (!sound) return false;
  // Exactness: q ⊑ candidate under schema + forward view constraints. This
  // holds by construction for candidates read off the forward chase, but
  // backchase EGD merges can occasionally canonicalize a candidate more
  // aggressively than the forward instance; the explicit check keeps the
  // rewriting exact in those corner cases too.
  return chase::IsContainedIn(q, candidate, forward_deps_, options.chase);
}

Result<RewritingResult> Rewriter::Rewrite(const ConjunctiveQuery& query,
                                          const RewriterOptions& options) const {
  if (!prepared_) {
    return Status::Internal("Rewriter::Prepare() was not called");
  }
  ESTOCADA_RETURN_NOT_OK(query.Validate());

  RewritingResult result;
  RewriterStats& stats = result.stats;

  ESTOCADA_ASSIGN_OR_RETURN(UniversalPlan plan,
                            BuildUniversalPlan(query, options, &stats));
  if (plan.view_atoms.empty()) return result;  // No views apply: empty.

  // ---- Backchase: chase the universal plan with backward constraints,
  // tracking provenance over universal-plan atom ids.
  Instance back;
  back.set_track_provenance(options.track_provenance);
  std::vector<size_t> plan_atom_ids;
  plan_atom_ids.reserve(plan.view_atoms.size());
  for (size_t i = 0; i < plan.view_atoms.size(); ++i) {
    auto ins = back.Insert(plan.view_atoms[i],
                           ProvFormula::Leaf(static_cast<uint32_t>(i)));
    plan_atom_ids.push_back(ins.id);
  }
  ESTOCADA_RETURN_NOT_OK(RunChase(backward_deps_, &back, options.chase));
  stats.backchase_atoms = back.live_size();

  // Canonical name preference, recomputed under the backchase merges.
  std::map<uint64_t, std::string> canon_names;
  for (const auto& [nid, name] : plan.null_names) {
    Term canon = back.Canonical(Term::Null(nid));
    if (!canon.is_labelled_null()) continue;
    auto it = canon_names.find(canon.null_id());
    if (it == canon_names.end() ||
        (IsParameterVariable(name) && !IsParameterVariable(it->second))) {
      canon_names[canon.null_id()] = name;
    }
  }
  UniversalPlan canon_plan;
  canon_plan.null_names = std::move(canon_names);
  for (const Atom& a : plan.view_atoms) {
    Atom c = a;
    for (Term& t : c.terms) t = back.Canonical(t);
    canon_plan.view_atoms.push_back(std::move(c));
  }
  for (const Term& t : plan.head_targets) {
    canon_plan.head_targets.push_back(back.Canonical(t));
  }

  // ---- Find matches of the query in the backchased instance, with the
  // head pinned onto the frozen head terms.
  Substitution required;
  for (size_t i = 0; i < query.head.size(); ++i) {
    const Term& h = query.head[i];
    const Term& target = canon_plan.head_targets[i];
    if (h.is_variable()) {
      auto it = required.find(h.var_name());
      if (it != required.end() && !(it->second == target)) {
        return result;  // Inconsistent head: no rewriting.
      }
      required.emplace(h.var_name(), target);
    } else if (!(back.Canonical(h) == target)) {
      return result;
    }
  }

  ProvFormula combined;    // starts false
  ProvFormula optimistic;  // unconditioned supports; need verification
  constexpr size_t kMaxMatches = 4096;
  size_t match_count = 0;
  ForEachHomomorphism(query.body, back, required, [&](const Match& m) {
    ++match_count;
    if (options.track_provenance) {
      ProvFormula p = ProvFormula::True();
      for (size_t id : m.atom_ids) p = p.And(back.provenance(id));
      combined = combined.Or(p);
    }
    return match_count < kMaxMatches;
  });
  stats.query_matches = match_count;

  if (options.track_provenance && options.verify_candidates) {
    // EGD merge conditioning is sound but over-conservative: a match that
    // does not actually rely on an equality (the merged position maps to a
    // don't-care variable, or the match lands on an atom's pre-merge ghost
    // form) still holds under the atoms' unconditioned base provenance.
    // Re-match against an augmented instance — every live atom under its
    // base provenance plus every pre-merge ghost form — and collect those
    // optimistic supports too. Candidates built from them go through the
    // full chase verification, which rejects any that truly needed the
    // equality; without this pass, absorption in `combined` can erase the
    // only evidence of a minimal rewriting.
    Instance aug;
    aug.set_track_provenance(true);
    for (size_t id = 0; id < back.size(); ++id) {
      if (!back.alive(id)) continue;
      aug.Insert(back.atom(id), back.base_provenance(id));
    }
    for (const Instance::GhostForm& g : back.ghost_forms()) {
      aug.Insert(g.form, g.base);
    }
    size_t aug_matches = 0;
    ForEachHomomorphism(query.body, aug, required, [&](const Match& m) {
      ++aug_matches;
      ProvFormula b = ProvFormula::True();
      for (size_t id : m.atom_ids) b = b.And(aug.provenance(id));
      optimistic = optimistic.Or(b);
      return aug_matches < kMaxMatches;
    });
  }
  if (match_count == 0 && optimistic.is_false()) return result;

  // ---- Candidate generation.
  std::vector<std::vector<uint32_t>> candidates;
  if (options.track_provenance) {
    candidates.assign(combined.disjuncts().begin(),
                      combined.disjuncts().end());
    candidates.insert(candidates.end(), optimistic.disjuncts().begin(),
                      optimistic.disjuncts().end());
  } else {
    // Ablation path: enumerate subsets of the universal plan by size.
    size_t n = canon_plan.view_atoms.size();
    size_t cap = options.naive_max_subset == 0
                     ? n
                     : std::min(options.naive_max_subset, n);
    std::vector<uint32_t> subset;
    // Iterative combination enumeration, sizes 1..cap.
    for (size_t k = 1; k <= cap; ++k) {
      std::vector<uint32_t> idx(k);
      for (size_t i = 0; i < k; ++i) idx[i] = static_cast<uint32_t>(i);
      for (;;) {
        candidates.push_back(idx);
        // Next combination.
        size_t i = k;
        while (i > 0 && idx[i - 1] == n - k + i - 1) --i;
        if (i == 0) break;
        ++idx[i - 1];
        for (size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
      }
      if (candidates.size() > 100000) break;  // Safety valve.
    }
  }

  // ---- Convert, verify, filter; smallest-first; skip supersets of
  // accepted rewritings (minimality).
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<std::vector<uint32_t>> accepted_sets;
  for (const auto& original_cand : candidates) {
    if (result.rewritings.size() >= options.max_rewritings) break;
    ++stats.candidates_considered;
    bool superset = false;
    for (const auto& acc : accepted_sets) {
      if (std::includes(original_cand.begin(), original_cand.end(),
                        acc.begin(), acc.end())) {
        superset = true;
        break;
      }
    }
    if (superset) continue;
    auto cq = CandidateToQuery(query, canon_plan, original_cand);
    if (!cq.ok()) continue;  // Head not exposed: not a rewriting.
    if (options.verify_candidates) {
      ++stats.candidates_verified;
      ESTOCADA_ASSIGN_OR_RETURN(bool sound,
                                VerifyCandidate(*cq, query, options));
      if (!sound) continue;
    }
    std::vector<uint32_t> cand = original_cand;
    if (options.verify_candidates) {
      // Classical backchase minimization: EGD merges can over-condition
      // provenance (a witness null merged away makes a candidate look
      // larger than necessary), so greedily try dropping each atom and
      // keep the candidate exactly-minimal.
      bool shrunk = true;
      while (shrunk && cand.size() > 1) {
        shrunk = false;
        for (size_t drop = 0; drop < cand.size(); ++drop) {
          std::vector<uint32_t> smaller = cand;
          smaller.erase(smaller.begin() + static_cast<long>(drop));
          auto smaller_cq = CandidateToQuery(query, canon_plan, smaller);
          if (!smaller_cq.ok()) continue;
          ++stats.candidates_verified;
          ESTOCADA_ASSIGN_OR_RETURN(
              bool still_exact,
              VerifyCandidate(*smaller_cq, query, options));
          if (still_exact) {
            cand = std::move(smaller);
            cq = std::move(smaller_cq);
            shrunk = true;
            break;
          }
        }
      }
      // The minimized set may now duplicate or subsume an accepted one.
      bool dominated = false;
      for (const auto& acc : accepted_sets) {
        if (std::includes(cand.begin(), cand.end(), acc.begin(),
                          acc.end())) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
    }
    Rewriting rw;
    rw.query = std::move(*cq);
    rw.feasible = IsFeasible(rw.query.body, adornments_);
    if (options.require_feasible && !rw.feasible) continue;
    accepted_sets.push_back(cand);
    result.rewritings.push_back(std::move(rw));
  }
  stats.rewritings_found = result.rewritings.size();
  return result;
}

std::string DescribeRewritingSet(const RewritingResult& result) {
  std::vector<std::pair<size_t, std::string>> lines;
  lines.reserve(result.rewritings.size());
  for (const Rewriting& rw : result.rewritings) {
    std::string line = StrCat("  ", rw.query.ToString());
    if (!rw.feasible) line += "  [infeasible]";
    lines.emplace_back(rw.query.body.size(), std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out = StrCat(result.rewritings.size(), " rewritings\n");
  for (auto& [size, line] : lines) out += line + "\n";
  return out;
}

}  // namespace estocada::pacb
