#include "pacb/rewriter.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <unordered_set>

#include "chase/containment.h"
#include "chase/homomorphism.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace estocada::pacb {

using chase::Instance;
using chase::Match;
using chase::ProvFormula;
using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Substitution;
using pivot::Term;

Rewriter::Rewriter(pivot::Schema schema, std::vector<ViewDefinition> views)
    : schema_(std::move(schema)), views_(std::move(views)) {}

Status Rewriter::Prepare() {
  std::vector<pivot::Dependency> forward = schema_.dependencies();
  std::vector<pivot::Dependency> backward = schema_.dependencies();
  for (const ViewDefinition& v : views_) {
    ESTOCADA_ASSIGN_OR_RETURN(ViewConstraints vc, MakeViewConstraints(v));
    forward.push_back(vc.forward);
    backward.push_back(vc.backward);
    if (!v.adornments.empty()) {
      adornments_[v.name()] = v.adornments;
    }
  }
  forward_deps_ = std::make_shared<const std::vector<pivot::Dependency>>(
      std::move(forward));
  backward_deps_ = std::make_shared<const std::vector<pivot::Dependency>>(
      std::move(backward));
  prepared_ = true;
  return Status::OK();
}

Result<Rewriter::UniversalPlan> Rewriter::BuildUniversalPlan(
    const ConjunctiveQuery& q, const RewriterOptions& options,
    chase::ChaseEngine* forward, RewriterStats* stats) const {
  pivot::FrozenBody fb = pivot::FreezeBody(q);
  Instance inst;
  ESTOCADA_RETURN_NOT_OK(inst.InsertAll(fb.atoms));
  ESTOCADA_RETURN_NOT_OK(forward->Run(&inst, options.chase));
  stats->forward_chase_atoms = inst.live_size();

  UniversalPlan plan;
  std::unordered_set<std::string> view_names;
  for (const ViewDefinition& v : views_) view_names.insert(v.name());
  for (const ViewDefinition& v : views_) {
    for (size_t id : inst.AtomsOf(v.name())) {
      if (!inst.alive(id)) continue;
      plan.view_atoms.push_back(inst.atom(id));
    }
  }
  // Deterministic order (relation name, then terms) so candidate ids and
  // rewriting variable names are stable run to run.
  std::sort(plan.view_atoms.begin(), plan.view_atoms.end());
  plan.view_atoms.erase(
      std::unique(plan.view_atoms.begin(), plan.view_atoms.end()),
      plan.view_atoms.end());
  stats->universal_plan_atoms = plan.view_atoms.size();

  for (const Term& h : q.head) {
    plan.head_targets.push_back(
        inst.Canonical(pivot::ApplySubstitution(fb.freeze, h)));
  }
  for (const auto& [var, null_term] : fb.freeze) {
    Term canon = inst.Canonical(null_term);
    if (!canon.is_labelled_null()) continue;
    auto it = plan.null_names.find(canon.null_id());
    // Prefer parameter names ('$uid'), then keep the first seen.
    if (it == plan.null_names.end() ||
        (IsParameterVariable(var) && !IsParameterVariable(it->second))) {
      plan.null_names[canon.null_id()] = var;
    }
  }
  plan.instance = std::move(inst);
  return plan;
}

namespace {

/// Names a canonical null for use as a rewriting variable.
std::string NullVarName(const std::map<uint64_t, std::string>& names,
                        uint64_t null_id) {
  auto it = names.find(null_id);
  if (it != names.end()) return it->second;
  return StrCat("_x", null_id);
}

/// Whether the candidate exposes every head value: each labelled-null head
/// target must occur in some candidate atom — CandidateToQuery fails on
/// exactly these, but this id-level check lets doomed candidates skip both
/// verification and query construction. Out-of-range atom ids read as not
/// exposing (CandidateToQuery rejects those too).
bool ExposesHead(const std::vector<Atom>& view_atoms,
                 const std::vector<Term>& head_targets,
                 const std::vector<uint32_t>& ids) {
  for (uint32_t id : ids) {
    if (id >= view_atoms.size()) return false;
  }
  for (const Term& target : head_targets) {
    if (!target.is_labelled_null()) continue;
    bool covered = false;
    for (uint32_t id : ids) {
      for (const Term& t : view_atoms[id].terms) {
        if (t.is_labelled_null() && t.null_id() == target.null_id()) {
          covered = true;
          break;
        }
      }
      if (covered) break;
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace

Result<ConjunctiveQuery> Rewriter::CandidateToQuery(
    const ConjunctiveQuery& q, const UniversalPlan& plan,
    const std::vector<uint32_t>& atom_ids) const {
  ConjunctiveQuery out;
  out.name = q.name;
  std::unordered_set<uint64_t> covered;
  for (uint32_t id : atom_ids) {
    if (id >= plan.view_atoms.size()) {
      return Status::Internal("candidate atom id out of range");
    }
    const Atom& ground = plan.view_atoms[id];
    Atom a;
    a.relation = ground.relation;
    for (const Term& t : ground.terms) {
      if (t.is_labelled_null()) {
        covered.insert(t.null_id());
        a.terms.push_back(Term::Var(NullVarName(plan.null_names, t.null_id())));
      } else {
        a.terms.push_back(t);
      }
    }
    out.body.push_back(std::move(a));
  }
  for (const Term& target : plan.head_targets) {
    if (target.is_labelled_null()) {
      if (!covered.count(target.null_id())) {
        return Status::InvalidArgument(
            "candidate does not expose a head value");
      }
      out.head.push_back(
          Term::Var(NullVarName(plan.null_names, target.null_id())));
    } else {
      out.head.push_back(target);
    }
  }
  return out;
}

Result<RewritingResult> Rewriter::Rewrite(const ConjunctiveQuery& query,
                                          const RewriterOptions& options) const {
  if (!prepared_) {
    return Status::Internal("Rewriter::Prepare() was not called");
  }
  ESTOCADA_RETURN_NOT_OK(query.Validate());

  RewritingResult result;
  RewriterStats& stats = result.stats;

  // One compiled engine per constraint set for this whole call: the
  // forward chase, the backchase, and every candidate verification reuse
  // the compiled matchers instead of re-deriving them per chase.
  chase::ChaseEngine forward_engine(forward_deps_);
  chase::ChaseEngine backward_engine(backward_deps_);

  ESTOCADA_ASSIGN_OR_RETURN(
      UniversalPlan plan,
      BuildUniversalPlan(query, options, &forward_engine, &stats));
  if (plan.view_atoms.empty()) return result;  // No views apply: empty.

  // ---- Backchase: chase the universal plan with backward constraints,
  // tracking provenance over universal-plan atom ids.
  Instance back;
  back.set_track_provenance(options.track_provenance);
  std::vector<size_t> plan_atom_ids;
  plan_atom_ids.reserve(plan.view_atoms.size());
  for (size_t i = 0; i < plan.view_atoms.size(); ++i) {
    auto ins = back.Insert(plan.view_atoms[i],
                           ProvFormula::Leaf(static_cast<uint32_t>(i)));
    plan_atom_ids.push_back(ins.id);
  }
  ESTOCADA_RETURN_NOT_OK(backward_engine.Run(&back, options.chase));
  stats.backchase_atoms = back.live_size();

  // Canonical name preference, recomputed under the backchase merges.
  std::map<uint64_t, std::string> canon_names;
  for (const auto& [nid, name] : plan.null_names) {
    Term canon = back.Canonical(Term::Null(nid));
    if (!canon.is_labelled_null()) continue;
    auto it = canon_names.find(canon.null_id());
    if (it == canon_names.end() ||
        (IsParameterVariable(name) && !IsParameterVariable(it->second))) {
      canon_names[canon.null_id()] = name;
    }
  }
  UniversalPlan canon_plan;
  canon_plan.null_names = std::move(canon_names);
  for (const Atom& a : plan.view_atoms) {
    Atom c = a;
    for (Term& t : c.terms) t = back.Canonical(t);
    canon_plan.view_atoms.push_back(std::move(c));
  }
  for (const Term& t : plan.head_targets) {
    canon_plan.head_targets.push_back(back.Canonical(t));
  }

  // ---- Find matches of the query in the backchased instance, with the
  // head pinned onto the frozen head terms.
  Substitution required;
  for (size_t i = 0; i < query.head.size(); ++i) {
    const Term& h = query.head[i];
    const Term& target = canon_plan.head_targets[i];
    if (h.is_variable()) {
      auto it = required.find(h.var_name());
      if (it != required.end() && !(it->second == target)) {
        return result;  // Inconsistent head: no rewriting.
      }
      required.emplace(h.var_name(), target);
    } else if (!(back.Canonical(h) == target)) {
      return result;
    }
  }

  ProvFormula combined;    // starts false
  ProvFormula optimistic;  // unconditioned supports; need verification
  constexpr size_t kMaxMatches = 4096;
  size_t match_count = 0;
  chase::HomomorphismMatcher query_matcher(query.body);
  query_matcher.ForEach(back, required, [&](const Match& m) {
    ++match_count;
    if (options.track_provenance) {
      ProvFormula p = ProvFormula::True();
      for (size_t id : m.atom_ids) p = p.And(back.provenance(id));
      combined = combined.Or(p);
    }
    return match_count < kMaxMatches;
  });
  stats.query_matches = match_count;

  if (options.track_provenance && options.verify_candidates) {
    // EGD merge conditioning is sound but over-conservative: a match that
    // does not actually rely on an equality (the merged position maps to a
    // don't-care variable, or the match lands on an atom's pre-merge ghost
    // form) still holds under the atoms' unconditioned base provenance.
    // Re-match against an augmented instance — every live atom under its
    // base provenance plus every pre-merge ghost form — and collect those
    // optimistic supports too. Candidates built from them go through the
    // full chase verification, which rejects any that truly needed the
    // equality; without this pass, absorption in `combined` can erase the
    // only evidence of a minimal rewriting.
    Instance aug;
    aug.set_track_provenance(true);
    for (size_t id = 0; id < back.size(); ++id) {
      if (!back.alive(id)) continue;
      aug.Insert(back.atom(id), back.base_provenance(id));
    }
    for (const Instance::GhostForm& g : back.ghost_forms()) {
      aug.Insert(g.form, g.base);
    }
    size_t aug_matches = 0;
    query_matcher.ForEach(aug, required, [&](const Match& m) {
      ++aug_matches;
      ProvFormula b = ProvFormula::True();
      for (size_t id : m.atom_ids) b = b.And(aug.provenance(id));
      optimistic = optimistic.Or(b);
      return aug_matches < kMaxMatches;
    });
  }
  if (match_count == 0 && optimistic.is_false()) return result;

  // ---- Candidate generation.
  std::vector<std::vector<uint32_t>> candidates;
  if (options.track_provenance) {
    candidates.assign(combined.disjuncts().begin(),
                      combined.disjuncts().end());
    candidates.insert(candidates.end(), optimistic.disjuncts().begin(),
                      optimistic.disjuncts().end());
  } else {
    // Ablation path: enumerate subsets of the universal plan by size.
    size_t n = canon_plan.view_atoms.size();
    size_t cap = options.naive_max_subset == 0
                     ? n
                     : std::min(options.naive_max_subset, n);
    std::vector<uint32_t> subset;
    // Iterative combination enumeration, sizes 1..cap.
    for (size_t k = 1; k <= cap; ++k) {
      std::vector<uint32_t> idx(k);
      for (size_t i = 0; i < k; ++i) idx[i] = static_cast<uint32_t>(i);
      for (;;) {
        candidates.push_back(idx);
        // Next combination.
        size_t i = k;
        while (i > 0 && idx[i - 1] == n - k + i - 1) --i;
        if (i == 0) break;
        ++idx[i - 1];
        for (size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
      }
      if (candidates.size() > 100000) break;  // Safety valve.
    }
  }

  // Per-run verification state: the soundness direction compiles the
  // query-body matcher once for all candidates; the exactness direction
  // freezes and chases the query once (lazily) instead of once per
  // candidate — each check is then a single homomorphism test.
  chase::FixedRightContainment sound_check(query, backward_engine,
                                           options.chase);
  chase::FixedLeftContainment exact_check(query, forward_engine,
                                          options.chase);

  // Exactness fast path. q ⊑ candidate is classically tested by chasing
  // freeze(q) with the forward constraints and finding a homomorphism from
  // the candidate body into the result — but that chase is exactly
  // plan.instance, and the candidate body is canon_plan atoms with nulls
  // read as variables. Mapping each null to itself is therefore a witness
  // whenever (a) every candidate atom's canonical image is still an atom of
  // plan.instance, and (b) each canonical head target maps back onto the
  // required head image. Backchase EGD merges can break either condition
  // (a null collapsed into a term the forward instance never produced);
  // those candidates fall back to the full chase-based check below.
  const Instance& uplan = plan.instance;
  bool heads_identity = true;
  for (size_t i = 0; i < canon_plan.head_targets.size(); ++i) {
    if (!(uplan.Canonical(canon_plan.head_targets[i]) ==
          plan.head_targets[i])) {
      heads_identity = false;
      break;
    }
  }
  std::vector<char> atom_in_uplan(canon_plan.view_atoms.size(), 0);
  if (heads_identity) {
    for (size_t i = 0; i < canon_plan.view_atoms.size(); ++i) {
      atom_in_uplan[i] = uplan.Contains(canon_plan.view_atoms[i]) ? 1 : 0;
    }
  }

  // Relation-coverage pruning for the soundness direction. The soundness
  // chase of a candidate only ever adds atoms whose relations are reachable
  // from the candidate's relations through backward-TGD body→head edges
  // (any body relation may enable the head — a deliberate
  // over-approximation; EGDs merge terms but never introduce relations).
  // So a candidate whose reachable-relation set misses some q-body
  // relation has an empty match space and is unsound with no chase at all
  // — which disposes of most greedy-minimization drop probes, since
  // dropping an atom typically orphans one source relation. Disabled
  // (empty atom_cover) when q touches more than 64 distinct relations.
  std::unordered_map<std::string, uint64_t> qrel_bit;
  uint64_t qrel_mask = 0;
  for (const Atom& a : query.body) qrel_bit.emplace(a.relation, 0);
  std::vector<uint64_t> atom_cover;
  if (qrel_bit.size() <= 64) {
    uint32_t next_bit = 0;
    for (auto& [rel, bit] : qrel_bit) bit = 1ull << next_bit++;
    for (const auto& [rel, bit] : qrel_bit) qrel_mask |= bit;
    auto self_bit = [&](const std::string& rel) -> uint64_t {
      auto it = qrel_bit.find(rel);
      return it == qrel_bit.end() ? 0 : it->second;
    };
    std::vector<std::pair<const std::string*, const std::string*>> edges;
    for (const pivot::Dependency& d : *backward_deps_) {
      if (!d.is_tgd()) continue;
      for (const Atom& b : d.tgd.body) {
        for (const Atom& h : d.tgd.head) {
          edges.emplace_back(&b.relation, &h.relation);
        }
      }
    }
    std::unordered_map<std::string, uint64_t> derivable;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const auto& [body_rel, head_rel] : edges) {
        uint64_t add = derivable[*head_rel] | self_bit(*head_rel);
        uint64_t& mask = derivable[*body_rel];
        if ((mask | add) != mask) {
          mask |= add;
          grew = true;
        }
      }
    }
    atom_cover.reserve(canon_plan.view_atoms.size());
    for (const Atom& a : canon_plan.view_atoms) {
      auto it = derivable.find(a.relation);
      atom_cover.push_back(self_bit(a.relation) |
                           (it == derivable.end() ? 0 : it->second));
    }
  }

  // The greedy minimization loop re-probes subsets that were already
  // verified as candidates or as earlier drop probes; verification is
  // deterministic, so outcomes are memoized per (sorted) atom-id set.
  // candidates_verified counts actual chase checks, not memo hits or
  // coverage-pruned rejections.
  std::map<std::vector<uint32_t>, bool> verify_memo;
  // Soundness fast path: disjuncts of the conditioned provenance formula
  // are sound by the PACB provenance invariant — every disjunct of an
  // atom's provenance is a sufficient support for deriving the atom's
  // current canonical form, merge conditioning included, so the q-match
  // the disjunct came from reappears in the candidate's own chase (this is
  // the invariant the randomized differential suite pins against naive
  // C&B). Optimistic supports and minimization drop probes carry no such
  // guarantee and still go through the chase.
  const std::set<std::vector<uint32_t>> provenance_sound(
      combined.disjuncts().begin(), combined.disjuncts().end());

  auto covers_query = [&](const std::vector<uint32_t>& ids) {
    if (atom_cover.empty()) return true;
    uint64_t got = 0;
    for (uint32_t id : ids) got |= atom_cover[id];
    return (got & qrel_mask) == qrel_mask;
  };

  // Chase-level verification of one candidate — the thread-safe core. All
  // captured state is read-only here (canon_plan, the fast-path tables,
  // the provenance-sound set); every mutable chase scratch comes in
  // through the caller-supplied per-worker checkers.
  std::atomic<size_t> chase_checks{0};
  auto verify_chased = [&](const std::vector<uint32_t>& ids,
                           chase::FixedRightContainment& sound,
                           chase::FixedLeftContainment& exact,
                           std::vector<const Atom*>& atoms) -> Result<bool> {
    bool ok = provenance_sound.count(ids) > 0;
    if (!ok) {
      chase_checks.fetch_add(1, std::memory_order_relaxed);
      // Soundness: candidate ⊑ q under schema + backward constraints. The
      // candidate goes in as the raw plan-atom subset — its frozen form —
      // so rejected candidates (the common case during minimization
      // probes) never pay for query construction.
      atoms.clear();
      for (uint32_t id : ids) atoms.push_back(&canon_plan.view_atoms[id]);
      ESTOCADA_ASSIGN_OR_RETURN(
          ok, sound.ContainsFrozen(atoms, canon_plan.head_targets));
    }
    if (ok) {
      // Exactness: q ⊑ candidate under schema + forward constraints. Try
      // the identity-witness fast path first; only merge-mangled
      // candidates pay for query construction and a homomorphism search.
      bool identity = heads_identity;
      for (size_t k = 0; identity && k < ids.size(); ++k) {
        identity = atom_in_uplan[ids[k]] != 0;
      }
      if (!identity) {
        ESTOCADA_ASSIGN_OR_RETURN(ConjunctiveQuery cq,
                                  CandidateToQuery(query, canon_plan, ids));
        ESTOCADA_ASSIGN_OR_RETURN(ok, exact.ContainedIn(cq));
      }
    }
    return ok;
  };

  std::vector<const Atom*> cand_atoms;  // reused scratch
  auto verify = [&](const std::vector<uint32_t>& ids) -> Result<bool> {
    auto it = verify_memo.find(ids);
    if (it != verify_memo.end()) return it->second;
    if (!covers_query(ids)) {
      verify_memo.emplace(ids, false);
      return false;
    }
    ESTOCADA_ASSIGN_OR_RETURN(
        bool ok, verify_chased(ids, sound_check, exact_check, cand_atoms));
    verify_memo.emplace(ids, ok);
    return ok;
  };

  // Concurrent batch verification (see RewriterOptions::verify_pool).
  // Outcomes land in the memo keyed by id set; the accept loop below then
  // takes exactly the sequential decisions, so rewriting sets are
  // byte-identical with and without a pool. Workers never touch WaitIdle —
  // a per-batch countdown keeps a shared pool usable by other clients.
  ThreadPool* pool =
      options.track_provenance ? options.verify_pool : nullptr;
  auto verify_batch = [&](std::vector<std::vector<uint32_t>> sets) -> Status {
    std::sort(sets.begin(), sets.end());
    sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
    std::vector<std::vector<uint32_t>> need;
    for (auto& ids : sets) {
      if (verify_memo.count(ids) > 0) continue;
      if (!covers_query(ids)) {
        verify_memo.emplace(std::move(ids), false);
        continue;
      }
      need.push_back(std::move(ids));
    }
    if (pool == nullptr || need.size() < 2) {
      for (auto& ids : need) {
        ESTOCADA_ASSIGN_OR_RETURN(
            bool ok, verify_chased(ids, sound_check, exact_check, cand_atoms));
        verify_memo.emplace(std::move(ids), ok);
      }
      return Status::OK();
    }
    const size_t workers = std::min(pool->num_threads(), need.size());
    std::vector<char> outcomes(need.size(), 0);
    std::vector<Status> errors(workers, Status::OK());
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending = workers;
    for (size_t w = 0; w < workers; ++w) {
      pool->Submit([&, w] {
        chase::ChaseEngine bwd(backward_deps_);
        chase::ChaseEngine fwd(forward_deps_);
        chase::FixedRightContainment sound(query, bwd, options.chase);
        chase::FixedLeftContainment exact(query, fwd, options.chase);
        std::vector<const Atom*> scratch;
        for (size_t i = w; i < need.size(); i += workers) {
          auto r = verify_chased(need[i], sound, exact, scratch);
          if (!r.ok()) {
            errors[w] = r.status();
            break;
          }
          outcomes[i] = *r ? 1 : 0;
        }
        std::lock_guard<std::mutex> lock(mu);
        if (--pending == 0) done_cv.notify_all();
      });
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock, [&] { return pending == 0; });
    }
    for (const Status& s : errors) ESTOCADA_RETURN_NOT_OK(s);
    for (size_t i = 0; i < need.size(); ++i) {
      verify_memo.emplace(std::move(need[i]), outcomes[i] != 0);
    }
    return Status::OK();
  };

  // ---- Convert, verify, filter; smallest-first; skip supersets of
  // accepted rewritings (minimality).
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (options.verify_candidates && pool != nullptr) {
    // Speculative top-level pass: chase-verify every exposed candidate up
    // front, concurrently, so the accept loop below is pure memo lookups.
    std::vector<std::vector<uint32_t>> batch;
    batch.reserve(candidates.size());
    for (const auto& c : candidates) {
      if (ExposesHead(canon_plan.view_atoms, canon_plan.head_targets, c)) {
        batch.push_back(c);
      }
    }
    ESTOCADA_RETURN_NOT_OK(verify_batch(std::move(batch)));
  }
  std::vector<std::vector<uint32_t>> accepted_sets;
  for (const auto& original_cand : candidates) {
    if (result.rewritings.size() >= options.max_rewritings) break;
    ++stats.candidates_considered;
    bool superset = false;
    for (const auto& acc : accepted_sets) {
      if (std::includes(original_cand.begin(), original_cand.end(),
                        acc.begin(), acc.end())) {
        superset = true;
        break;
      }
    }
    if (superset) continue;
    if (!ExposesHead(canon_plan.view_atoms, canon_plan.head_targets, original_cand)) continue;  // Not a rewriting.
    if (options.verify_candidates) {
      ESTOCADA_ASSIGN_OR_RETURN(bool sound, verify(original_cand));
      if (!sound) continue;
    }
    std::vector<uint32_t> cand = original_cand;
    if (options.verify_candidates) {
      // Classical backchase minimization: EGD merges can over-condition
      // provenance (a witness null merged away makes a candidate look
      // larger than necessary), so greedily try dropping each atom and
      // keep the candidate exactly-minimal.
      bool shrunk = true;
      while (shrunk && cand.size() > 1) {
        shrunk = false;
        if (pool != nullptr) {
          // Probe all of this round's drops concurrently; the scan below
          // then picks the first success in drop order, exactly as the
          // sequential path does.
          std::vector<std::vector<uint32_t>> probes;
          probes.reserve(cand.size());
          for (size_t drop = 0; drop < cand.size(); ++drop) {
            std::vector<uint32_t> smaller = cand;
            smaller.erase(smaller.begin() + static_cast<long>(drop));
            if (ExposesHead(canon_plan.view_atoms, canon_plan.head_targets,
                            smaller)) {
              probes.push_back(std::move(smaller));
            }
          }
          ESTOCADA_RETURN_NOT_OK(verify_batch(std::move(probes)));
        }
        for (size_t drop = 0; drop < cand.size(); ++drop) {
          std::vector<uint32_t> smaller = cand;
          smaller.erase(smaller.begin() + static_cast<long>(drop));
          if (!ExposesHead(canon_plan.view_atoms, canon_plan.head_targets, smaller)) continue;
          ESTOCADA_ASSIGN_OR_RETURN(bool still_exact, verify(smaller));
          if (still_exact) {
            cand = std::move(smaller);
            shrunk = true;
            break;
          }
        }
      }
      // The minimized set may now duplicate or subsume an accepted one.
      bool dominated = false;
      for (const auto& acc : accepted_sets) {
        if (std::includes(cand.begin(), cand.end(), acc.begin(),
                          acc.end())) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
    }
    auto cq = CandidateToQuery(query, canon_plan, cand);
    if (!cq.ok()) continue;  // Defensive: ExposesHead already vetted cand.
    Rewriting rw;
    rw.query = std::move(*cq);
    rw.feasible = IsFeasible(rw.query.body, adornments_);
    if (options.require_feasible && !rw.feasible) continue;
    accepted_sets.push_back(cand);
    result.rewritings.push_back(std::move(rw));
  }
  stats.candidates_verified = chase_checks.load(std::memory_order_relaxed);
  stats.rewritings_found = result.rewritings.size();
  return result;
}

std::string DescribeRewritingSet(const RewritingResult& result) {
  std::vector<std::pair<size_t, std::string>> lines;
  lines.reserve(result.rewritings.size());
  for (const Rewriting& rw : result.rewritings) {
    std::string line = StrCat("  ", rw.query.ToString());
    if (!rw.feasible) line += "  [infeasible]";
    lines.emplace_back(rw.query.body.size(), std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out = StrCat(result.rewritings.size(), " rewritings\n");
  for (auto& [size, line] : lines) out += line + "\n";
  return out;
}

}  // namespace estocada::pacb
