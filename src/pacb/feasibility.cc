#include "pacb/feasibility.h"

#include <unordered_set>

namespace estocada::pacb {

using pivot::Adornment;
using pivot::Atom;
using pivot::Term;

bool IsParameterVariable(const std::string& name) {
  return !name.empty() && name[0] == '$';
}

std::vector<size_t> FeasibleOrder(const std::vector<Atom>& body,
                                  const AdornmentMap& adornments) {
  std::unordered_set<std::string> bound;
  for (const Atom& a : body) {
    for (const Term& t : a.terms) {
      if (t.is_variable() && IsParameterVariable(t.var_name())) {
        bound.insert(t.var_name());
      }
    }
  }

  auto accessible = [&](const Atom& a) {
    auto it = adornments.find(a.relation);
    if (it == adornments.end()) return true;
    const std::vector<Adornment>& ad = it->second;
    for (size_t i = 0; i < a.terms.size() && i < ad.size(); ++i) {
      if (ad[i] != Adornment::kInput) continue;
      const Term& t = a.terms[i];
      if (t.is_variable() && !bound.count(t.var_name())) return false;
      // Constants and labelled nulls count as bound; a labelled null in a
      // rewriting body would be a bug upstream, but is at least ground.
    }
    return true;
  };

  std::vector<size_t> order;
  std::vector<bool> used(body.size(), false);
  for (size_t step = 0; step < body.size(); ++step) {
    size_t pick = body.size();
    for (size_t i = 0; i < body.size(); ++i) {
      if (!used[i] && accessible(body[i])) {
        pick = i;
        break;
      }
    }
    if (pick == body.size()) return {};  // Stuck: infeasible.
    used[pick] = true;
    order.push_back(pick);
    for (const Term& t : body[pick].terms) {
      if (t.is_variable()) bound.insert(t.var_name());
    }
  }
  return order;
}

bool IsFeasible(const std::vector<Atom>& body, const AdornmentMap& adornments) {
  if (body.empty()) return true;
  return !FeasibleOrder(body, adornments).empty();
}

}  // namespace estocada::pacb
