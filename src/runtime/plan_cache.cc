#include "runtime/plan_cache.h"

#include "common/hash.h"

namespace estocada::runtime {

PlanCache::PlanCache(Options options) {
  if (options.shards == 0) options.shards = 1;
  if (options.capacity == 0) options.capacity = 1;
  shards_.reserve(options.shards);
  for (size_t i = 0; i < options.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ =
      (options.capacity + options.shards - 1) / options.shards;
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[FnvHash64(key) % shards_.size()];
}

PlanCache::CachedRewritings PlanCache::Lookup(const std::string& key,
                                              uint64_t epoch,
                                              uint64_t health_epoch) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second->epoch != epoch || it->second->health_epoch != health_epoch) {
    // Computed against a fragment layout or store-availability state that
    // no longer exists.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Move to the front (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void PlanCache::Insert(const std::string& key, uint64_t epoch,
                       CachedRewritings value, uint64_t health_epoch) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->epoch = epoch;
    it->second->health_epoch = health_epoch;
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.lru.push_front(Entry{key, epoch, health_epoch, std::move(value)});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

PlanCache::Stats PlanCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.entries = size();
  return s;
}

}  // namespace estocada::runtime
