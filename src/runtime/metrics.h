#ifndef ESTOCADA_RUNTIME_METRICS_H_
#define ESTOCADA_RUNTIME_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"

namespace estocada::runtime {

/// Point-in-time view of a server's counters, for reports and benchmark
/// JSON. Percentiles come from the latency histogram snapshot.
struct MetricsSnapshot {
  uint64_t queries_served = 0;   ///< Successfully answered queries.
  uint64_t cache_hits = 0;       ///< Plan-cache hits.
  uint64_t cache_misses = 0;     ///< Plan-cache misses.
  uint64_t rewrites = 0;         ///< Full PACB rewrites performed.
  uint64_t errors = 0;           ///< Queries that returned a non-OK status.
  uint64_t retries = 0;          ///< Re-executions after a transient fault.
  uint64_t breaker_trips = 0;    ///< Circuit breakers tripped open.
  uint64_t reroutes = 0;         ///< Immediate sibling-replica re-routes.
  uint64_t failovers = 0;        ///< Re-plans that excluded unhealthy stores.
  uint64_t degraded = 0;         ///< Answers served from the staging area.
  uint64_t replica_rebuilds = 0; ///< Replicas rebuilt and re-admitted.
  LatencyHistogram::Snapshot latency;

  double CacheHitRate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  double p50_micros() const { return latency.Quantile(0.50); }
  double p95_micros() const { return latency.Quantile(0.95); }
  double p99_micros() const { return latency.Quantile(0.99); }

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Per-server counters, written concurrently by every serving thread (all
/// relaxed atomics — the numbers are observability, not synchronization).
class ServerMetrics {
 public:
  void RecordCacheHit() { cache_hits_.fetch_add(1, kRelaxed); }
  void RecordCacheMiss() { cache_misses_.fetch_add(1, kRelaxed); }
  void RecordRewrite() { rewrites_.fetch_add(1, kRelaxed); }
  void RecordRetry() { retries_.fetch_add(1, kRelaxed); }
  void RecordBreakerTrip() { breaker_trips_.fetch_add(1, kRelaxed); }
  void RecordReroute() { reroutes_.fetch_add(1, kRelaxed); }
  void RecordFailover() { failovers_.fetch_add(1, kRelaxed); }
  void RecordDegraded() { degraded_.fetch_add(1, kRelaxed); }
  void RecordReplicaRebuild() { replica_rebuilds_.fetch_add(1, kRelaxed); }

  /// Call once per finished query with its end-to-end latency.
  void RecordQuery(bool ok, double latency_micros) {
    if (ok) {
      queries_served_.fetch_add(1, kRelaxed);
    } else {
      errors_.fetch_add(1, kRelaxed);
    }
    latency_.Record(latency_micros);
  }

  MetricsSnapshot snapshot() const;

  /// Zeroes every counter (between benchmark phases; quiesce writers
  /// first).
  void Reset();

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> rewrites_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> breaker_trips_{0};
  std::atomic<uint64_t> reroutes_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> replica_rebuilds_{0};
  LatencyHistogram latency_;
};

}  // namespace estocada::runtime

#endif  // ESTOCADA_RUNTIME_METRICS_H_
