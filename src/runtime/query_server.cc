#include "runtime/query_server.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "pivot/parser.h"

namespace estocada::runtime {

namespace {
double ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

QueryServer::QueryServer(Estocada* system, ServerOptions options)
    : system_(system),
      options_(options),
      cache_(options.cache),
      health_(options.health),
      rng_(options.backoff_jitter_seed),
      pool_(options.worker_threads == 0 ? 1 : options.worker_threads) {
  // Build the rewriter eagerly so the first queries take the fast path.
  std::unique_lock lock(mu_);
  (void)system_->PrepareRewriter();
}

QueryServer::~QueryServer() { pool_.WaitIdle(); }

std::vector<std::string> QueryServer::AttributeFailure(
    const Status& st, const std::vector<std::string>& plan_stores) const {
  std::vector<std::string> out;
  for (const std::string& store : plan_stores) {
    if (st.message().find(StrCat("store '", store, "'")) !=
        std::string::npos) {
      out.push_back(store);
    }
  }
  if (out.empty()) out = plan_stores;
  return out;
}

Result<Estocada::QueryResult> QueryServer::ServeFromStaging(
    const CanonicalQuery& canonical,
    const std::map<std::string, engine::Value>& parameters,
    std::vector<std::string> excluded, int attempt) {
  metrics_.RecordDegraded();
  Estocada::QueryResult result;
  ESTOCADA_ASSIGN_OR_RETURN(
      result.rows,
      system_->EvaluateOverStagingPrepared(canonical.query, parameters));
  result.degraded_to_staging = true;
  result.attempts = attempt;
  result.excluded_stores = std::move(excluded);
  result.rewriting_text = "(staging fallback)";
  result.plan_text = "(staging fallback: no rewriting survived the health "
                     "exclusions)";
  return result;
}

Result<Estocada::QueryResult> QueryServer::ServeLocked(
    const CanonicalQuery& canonical,
    const std::map<std::string, engine::Value>& parameters, int attempt,
    uint64_t* planned_health_epoch) {
  uint64_t epoch = system_->catalog_epoch();
  // ExcludedStores() first: it performs due open → half-open transitions,
  // which bump the health epoch we key the cache on.
  std::vector<std::string> excluded;
  std::vector<std::string> probation;
  if (options_.fault_tolerant) {
    excluded = health_.ExcludedStores();
    probation = health_.ProbationStores();
  }
  uint64_t health_epoch = health_.health_epoch();
  if (planned_health_epoch != nullptr) *planned_health_epoch = health_epoch;
  rewriting::PlanConstraints constraints{excluded, probation};

  // The cache holds the *complete* rewriting set of a query shape;
  // exclusions are applied at translation time, so an entry stays correct
  // for whatever breaker state holds at the moment it is used. Keying on
  // the health epoch additionally drops entries across availability
  // changes, re-admitting them against the new store set.
  PlanCache::CachedRewritings cached =
      cache_.Lookup(canonical.key, epoch, health_epoch);
  Result<rewriting::PlanSet> planned = [&]() -> Result<rewriting::PlanSet> {
    if (cached != nullptr) {
      metrics_.RecordCacheHit();
      // Translation only — the PACB rewrite is skipped.
      return system_->PlanFromRewritings(*cached, parameters, constraints);
    }
    metrics_.RecordCacheMiss();
    metrics_.RecordRewrite();
    return system_->PlanPrepared(canonical.query, parameters, constraints);
  }();
  if (!planned.ok()) {
    if (options_.fault_tolerant &&
        planned.status().code() == StatusCode::kUnavailable) {
      // Planning starved by the exclusions: no rewriting avoids every
      // open-circuit store. Bottom of the ladder — answer from staging.
      return ServeFromStaging(canonical, parameters, std::move(excluded),
                              attempt);
    }
    return planned.status();
  }
  if (cached == nullptr) {
    cache_.Insert(canonical.key, epoch,
                  std::make_shared<const pacb::RewritingResult>(
                      planned->rewriting_result),
                  health_epoch);
  }

  std::vector<std::string> plan_stores = planned->best_plan().stores_used;
  Result<Estocada::QueryResult> result =
      system_->ExecutePlanned(std::move(*planned), canonical.query, parameters);
  if (result.ok()) {
    if (options_.fault_tolerant) {
      for (const std::string& store : plan_stores) {
        health_.ReportSuccess(store);
      }
      // Answered while avoiding an unhealthy store: a failover — the
      // rewriting multiplicity carried the query around the outage.
      if (!excluded.empty()) metrics_.RecordFailover();
    }
    result->attempts = attempt;
    result->excluded_stores = std::move(excluded);
    return result;
  }
  if (options_.fault_tolerant && RetryPolicy::IsRetryable(result.status())) {
    for (const std::string& store :
         AttributeFailure(result.status(), plan_stores)) {
      if (health_.ReportFailure(store)) metrics_.RecordBreakerTrip();
    }
  }
  return result;
}

Result<std::shared_ptr<const CanonicalQuery>> QueryServer::CanonicalizeCached(
    const std::string& query_text) {
  {
    std::lock_guard<std::mutex> lock(canon_mu_);
    auto it = canon_cache_.find(query_text);
    if (it != canon_cache_.end()) return it->second;
  }
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(query_text));
  auto canonical = std::make_shared<const CanonicalQuery>(Canonicalize(q));
  {
    std::lock_guard<std::mutex> lock(canon_mu_);
    if (canon_cache_.size() >= kCanonCacheCap) canon_cache_.clear();
    canon_cache_.emplace(query_text, canonical);
  }
  return canonical;
}

Result<Estocada::QueryResult> QueryServer::ServeTimed(
    const std::string& query_text,
    const std::map<std::string, engine::Value>& parameters) {
  ESTOCADA_ASSIGN_OR_RETURN(std::shared_ptr<const CanonicalQuery> canon,
                            CanonicalizeCached(query_text));
  const CanonicalQuery& canonical = *canon;
  std::map<std::string, engine::Value> remapped =
      RemapParameters(canonical, parameters);

  const auto start = std::chrono::steady_clock::now();
  Status last_error = Status::OK();
  int attempt = 1;
  // The loop serves two kinds of re-entry, neither holding the lock
  // across iterations: rewriter upgrades (the rewriter may be stale right
  // after a catalog change; rebuilding needs the exclusive lock, serving
  // only the shared one) and retries of transient execution failures
  // (backoff sleeps happen with no lock held). The spin bound is a
  // backstop against admin calls perpetually racing the upgrade.
  int reroutes = 0;
  for (int spin = 0; spin < 64; ++spin) {
    bool served = false;
    uint64_t planned_health_epoch = 0;
    {
      std::shared_lock read_lock(mu_);
      if (system_->rewriter_ready()) {
        served = true;
        Result<Estocada::QueryResult> result =
            ServeLocked(canonical, remapped, attempt, &planned_health_epoch);
        if (result.ok() || !options_.fault_tolerant ||
            !RetryPolicy::IsRetryable(result.status())) {
          if (result.ok()) result->reroutes = reroutes;
          return result;
        }
        last_error = result.status();
      }
    }
    if (!served) {
      std::unique_lock write_lock(mu_);
      ESTOCADA_RETURN_NOT_OK(system_->PrepareRewriter());
      continue;  // Upgrades do not consume retry attempts.
    }
    // Re-route rung, above retry: the attempt's failure moved the health
    // epoch (its own breaker trip, or a concurrent one), so planning now
    // routes around the tripped instance — replicated fragments land on a
    // sibling replica. Re-plan immediately: no backoff, no attempt
    // consumed; waiting would buy nothing because the outage is already
    // circuit-broken out of the plan.
    if (reroutes < options_.max_reroutes &&
        health_.health_epoch() != planned_health_epoch) {
      metrics_.RecordReroute();
      ++reroutes;
      continue;
    }
    const RetryPolicy& retry = options_.retry;
    if (attempt >= retry.max_attempts) return last_error;
    if (retry.deadline_micros > 0 &&
        ElapsedMicros(start) >= static_cast<double>(retry.deadline_micros)) {
      return last_error;
    }
    metrics_.RecordRetry();
    uint64_t wait_micros;
    {
      std::lock_guard<std::mutex> rng_lock(rng_mu_);
      wait_micros = retry.BackoffMicros(attempt, rng_);
    }
    if (wait_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(wait_micros));
    }
    ++attempt;
  }
  return Status::Internal(
      "rewriter preparation kept racing catalog changes; giving up");
}

Result<Estocada::QueryResult> QueryServer::Query(
    const std::string& query_text,
    const std::map<std::string, engine::Value>& parameters) {
  auto start = std::chrono::steady_clock::now();
  Result<Estocada::QueryResult> result = ServeTimed(query_text, parameters);
  metrics_.RecordQuery(result.ok(), ElapsedMicros(start));
  return result;
}

std::future<Result<Estocada::QueryResult>> QueryServer::Submit(
    std::string query_text, std::map<std::string, engine::Value> parameters) {
  auto task = std::make_shared<
      std::packaged_task<Result<Estocada::QueryResult>()>>(
      [this, text = std::move(query_text), params = std::move(parameters)] {
        return Query(text, params);
      });
  std::future<Result<Estocada::QueryResult>> future = task->get_future();
  pool_.Submit([task] { (*task)(); });
  return future;
}

void QueryServer::Drain() { pool_.WaitIdle(); }

Status QueryServer::DefineFragment(const std::string& view_text,
                                   const std::string& store_name,
                                   std::vector<pivot::Adornment> adornments,
                                   std::vector<size_t> index_positions) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->DefineFragment(
      view_text, store_name, std::move(adornments), std::move(index_positions)));
  return system_->PrepareRewriter();
}

Status QueryServer::DefineReplicatedFragment(
    const std::string& view_text,
    const std::vector<std::string>& replica_stores,
    std::vector<pivot::Adornment> adornments,
    std::vector<size_t> index_positions) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->DefineReplicatedFragment(
      view_text, replica_stores, std::move(adornments),
      std::move(index_positions)));
  return system_->PrepareRewriter();
}

Status QueryServer::DefinePartitionedFragment(
    const std::string& view_text, catalog::PartitionSpec::Kind kind,
    size_t key_position,
    const std::vector<std::vector<std::string>>& shard_replica_stores,
    std::vector<engine::Value> bounds, std::vector<pivot::Adornment> adornments,
    std::vector<size_t> index_positions) {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(view_text));
  pacb::ViewDefinition view;
  view.query = std::move(q);
  view.adornments = std::move(adornments);
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->DefinePartitionedFragment(
      std::move(view), kind, key_position, shard_replica_stores,
      std::move(bounds), std::move(index_positions)));
  return system_->PrepareRewriter();
}

Status QueryServer::DropFragment(const std::string& name) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->DropFragment(name));
  return system_->PrepareRewriter();
}

Status QueryServer::ApplyRecommendation(const advisor::Recommendation& rec) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->ApplyRecommendation(rec));
  return system_->PrepareRewriter();
}

Status QueryServer::InsertRow(const std::string& relation, engine::Row row) {
  std::unique_lock lock(mu_);
  UpdateEvent event{UpdateEvent::Kind::kInsert, relation, row};
  ESTOCADA_RETURN_NOT_OK(system_->InsertRow(relation, std::move(row)));
  NotifyUpdate(event);
  return Status::OK();
}

Status QueryServer::DeleteRow(const std::string& relation,
                              const engine::Row& row) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->DeleteRow(relation, row));
  NotifyUpdate(UpdateEvent{UpdateEvent::Kind::kDelete, relation, row});
  return Status::OK();
}

Status QueryServer::WithAdminLock(
    const std::function<Status(Estocada*)>& fn) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(fn(system_));
  // Cheap no-op unless fn dirtied the rewriter (e.g. a cutover).
  return system_->PrepareRewriter();
}

Status QueryServer::WithReadLock(
    const std::function<Status(const Estocada&)>& fn) {
  std::shared_lock lock(mu_);
  return fn(*system_);
}

uint64_t QueryServer::AddUpdateListener(UpdateListener listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  uint64_t token = next_listener_token_++;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void QueryServer::RemoveUpdateListener(uint64_t token) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(token);
}

void QueryServer::NotifyUpdate(const UpdateEvent& event) {
  std::vector<UpdateListener> snapshot;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    snapshot.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) {
      snapshot.push_back(listener);
    }
  }
  for (const UpdateListener& listener : snapshot) listener(event);
}

std::vector<advisor::Recommendation> QueryServer::Advise(
    const advisor::AdvisorOptions& options) {
  // Exclusive: quiesces the query threads feeding the workload log so the
  // advisor reads a consistent view.
  std::unique_lock lock(mu_);
  return system_->Advise(options);
}

std::vector<advisor::ScoredCandidate> QueryServer::AdviseCandidates(
    const advisor::AdvisorOptions& options) {
  // Shared: the log snapshot is internally synchronized, and the catalog
  // only changes under the exclusive lock — so candidate enumeration can
  // run beside the query path without stalling it.
  std::shared_lock lock(mu_);
  advisor::StorageAdvisor adv(options);
  return adv.Candidates(system_->catalog(),
                        system_->workload_log().Snapshot());
}

advisor::PatternSummary QueryServer::ClassifyWorkload(
    const advisor::AdvisorOptions& options) {
  std::shared_lock lock(mu_);
  return advisor::ClassifyWorkload(system_->workload_log().Snapshot(),
                                   options);
}

}  // namespace estocada::runtime
