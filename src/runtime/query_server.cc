#include "runtime/query_server.h"

#include <chrono>
#include <mutex>
#include <utility>

#include "pivot/parser.h"

namespace estocada::runtime {

namespace {
double ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

QueryServer::QueryServer(Estocada* system, ServerOptions options)
    : system_(system),
      cache_(options.cache),
      pool_(options.worker_threads == 0 ? 1 : options.worker_threads) {
  // Build the rewriter eagerly so the first queries take the fast path.
  std::unique_lock lock(mu_);
  (void)system_->PrepareRewriter();
}

QueryServer::~QueryServer() { pool_.WaitIdle(); }

Result<Estocada::QueryResult> QueryServer::ServeLocked(
    const CanonicalQuery& canonical,
    const std::map<std::string, engine::Value>& parameters) {
  uint64_t epoch = system_->catalog_epoch();
  PlanCache::CachedRewritings cached = cache_.Lookup(canonical.key, epoch);
  rewriting::PlanSet plans;
  if (cached != nullptr) {
    metrics_.RecordCacheHit();
    // Translation only — the PACB rewrite is skipped.
    ESTOCADA_ASSIGN_OR_RETURN(plans,
                              system_->PlanFromRewritings(*cached, parameters));
  } else {
    metrics_.RecordCacheMiss();
    metrics_.RecordRewrite();
    ESTOCADA_ASSIGN_OR_RETURN(plans,
                              system_->PlanPrepared(canonical.query, parameters));
    cache_.Insert(canonical.key, epoch,
                  std::make_shared<const pacb::RewritingResult>(
                      plans.rewriting_result));
  }
  return system_->ExecutePlanned(std::move(plans), canonical.query);
}

Result<Estocada::QueryResult> QueryServer::ServeTimed(
    const std::string& query_text,
    const std::map<std::string, engine::Value>& parameters) {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(query_text));
  CanonicalQuery canonical = Canonicalize(q);
  std::map<std::string, engine::Value> remapped =
      RemapParameters(canonical, parameters);

  // The rewriter may be stale right after a catalog change; rebuilding
  // needs the exclusive lock, serving only the shared one. Retry the
  // upgrade a bounded number of times in case admin calls keep landing
  // between the rebuild and the re-acquired read lock.
  for (int attempt = 0; attempt < 64; ++attempt) {
    {
      std::shared_lock read_lock(mu_);
      if (system_->rewriter_ready()) {
        return ServeLocked(canonical, remapped);
      }
    }
    std::unique_lock write_lock(mu_);
    ESTOCADA_RETURN_NOT_OK(system_->PrepareRewriter());
  }
  return Status::Internal(
      "rewriter preparation kept racing catalog changes; giving up");
}

Result<Estocada::QueryResult> QueryServer::Query(
    const std::string& query_text,
    const std::map<std::string, engine::Value>& parameters) {
  auto start = std::chrono::steady_clock::now();
  Result<Estocada::QueryResult> result = ServeTimed(query_text, parameters);
  metrics_.RecordQuery(result.ok(), ElapsedMicros(start));
  return result;
}

std::future<Result<Estocada::QueryResult>> QueryServer::Submit(
    std::string query_text, std::map<std::string, engine::Value> parameters) {
  auto task = std::make_shared<
      std::packaged_task<Result<Estocada::QueryResult>()>>(
      [this, text = std::move(query_text), params = std::move(parameters)] {
        return Query(text, params);
      });
  std::future<Result<Estocada::QueryResult>> future = task->get_future();
  pool_.Submit([task] { (*task)(); });
  return future;
}

void QueryServer::Drain() { pool_.WaitIdle(); }

Status QueryServer::DefineFragment(const std::string& view_text,
                                   const std::string& store_name,
                                   std::vector<pivot::Adornment> adornments,
                                   std::vector<size_t> index_positions) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->DefineFragment(
      view_text, store_name, std::move(adornments), std::move(index_positions)));
  return system_->PrepareRewriter();
}

Status QueryServer::DropFragment(const std::string& name) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->DropFragment(name));
  return system_->PrepareRewriter();
}

Status QueryServer::ApplyRecommendation(const advisor::Recommendation& rec) {
  std::unique_lock lock(mu_);
  ESTOCADA_RETURN_NOT_OK(system_->ApplyRecommendation(rec));
  return system_->PrepareRewriter();
}

Status QueryServer::InsertRow(const std::string& relation, engine::Row row) {
  std::unique_lock lock(mu_);
  return system_->InsertRow(relation, std::move(row));
}

Status QueryServer::DeleteRow(const std::string& relation,
                              const engine::Row& row) {
  std::unique_lock lock(mu_);
  return system_->DeleteRow(relation, row);
}

std::vector<advisor::Recommendation> QueryServer::Advise(
    const advisor::AdvisorOptions& options) {
  // Exclusive: quiesces the query threads feeding the workload log so the
  // advisor reads a consistent view.
  std::unique_lock lock(mu_);
  return system_->Advise(options);
}

}  // namespace estocada::runtime
