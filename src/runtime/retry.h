#ifndef ESTOCADA_RUNTIME_RETRY_H_
#define ESTOCADA_RUNTIME_RETRY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace estocada::runtime {

/// How the serving loop retries a query whose execution failed with a
/// transient (kUnavailable) store error. Attempts are bounded, waits grow
/// exponentially with full seeded jitter (wait = U[0, base * 2^attempt],
/// capped), and an overall deadline bounds total time in the retry loop.
struct RetryPolicy {
  /// Total tries including the first. Chosen to exceed the breaker's
  /// failure threshold so a hard outage trips the breaker *within* one
  /// query's retry loop and the final attempts can re-plan around it.
  int max_attempts = 4;
  /// Base of the exponential backoff schedule.
  uint64_t initial_backoff_micros = 50;
  /// Upper bound on a single backoff wait.
  uint64_t max_backoff_micros = 10'000;
  /// Budget across all attempts and waits; 0 = unlimited. Once exceeded,
  /// the loop stops retrying and reports the last error.
  uint64_t deadline_micros = 1'000'000;

  /// True if `s` is worth retrying under this policy (only transient
  /// store unavailability is; planner/user errors never are).
  static bool IsRetryable(const Status& s) {
    return s.code() == StatusCode::kUnavailable;
  }

  /// Jittered wait before attempt `attempt` (1-based count of failures so
  /// far): uniform in [0, min(initial * 2^(attempt-1), max)]. Full jitter
  /// decorrelates concurrent clients hammering a recovering store.
  uint64_t BackoffMicros(int attempt, Rng& rng) const;
};

}  // namespace estocada::runtime

#endif  // ESTOCADA_RUNTIME_RETRY_H_
