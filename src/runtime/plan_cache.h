#ifndef ESTOCADA_RUNTIME_PLAN_CACHE_H_
#define ESTOCADA_RUNTIME_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pacb/rewriter.h"

namespace estocada::runtime {

/// Tuning knobs of a PlanCache (namespace scope so it can serve as a
/// default argument before PlanCache is complete).
struct PlanCacheOptions {
  size_t shards = 8;
  /// Total entry budget across all shards (rounded up per shard).
  size_t capacity = 1024;
};

/// Sharded LRU cache from canonical CQ key to the PACB rewriting result,
/// versioned by the Estocada catalog epoch. What is cached is the
/// *parameter-independent* half of planning — the rewritings over the
/// fragment relations — because translation to an executable plan is cheap
/// and depends on the call's parameter bindings, while the PACB rewrite is
/// the most expensive step of the query path and depends only on the query
/// shape and the fragment layout.
///
/// Epoch versioning makes invalidation free of any registry of dependent
/// queries: every catalog change bumps the epoch, a lookup whose entry
/// carries an older epoch is treated as a miss and the stale entry is
/// dropped on the spot. A plan computed before a fragment change can
/// therefore never be served after it.
///
/// Entries carry a second, independent version — the *health epoch* from
/// the runtime's HealthRegistry. Store-availability changes bump it, so
/// rewritings admitted while a store was dead are invalidated when it
/// recovers (and vice versa) exactly like catalog changes invalidate
/// layout-stale plans.
///
/// Thread-safe; each shard has its own mutex, so concurrent lookups of
/// different queries rarely contend.
class PlanCache {
 public:
  using CachedRewritings = std::shared_ptr<const pacb::RewritingResult>;
  using Options = PlanCacheOptions;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< LRU capacity evictions.
    uint64_t invalidations = 0;  ///< Stale-epoch entries dropped.
    size_t entries = 0;          ///< Current resident entries.
  };

  explicit PlanCache(Options options = Options());

  /// Returns the cached rewritings for `key` when present *and* computed
  /// at (`epoch`, `health_epoch`); nullptr otherwise. A present entry with
  /// a different epoch pair is erased (the fragment layout or store
  /// availability it was computed against is gone).
  CachedRewritings Lookup(const std::string& key, uint64_t epoch,
                          uint64_t health_epoch = 0);

  /// Inserts (or replaces) the entry for `key` at (`epoch`,
  /// `health_epoch`), evicting the least-recently-used entry of the shard
  /// when over budget.
  void Insert(const std::string& key, uint64_t epoch, CachedRewritings value,
              uint64_t health_epoch = 0);

  /// Drops every entry (benchmarks use this to re-measure cold caches).
  void Clear();

  size_t size() const;
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    uint64_t health_epoch = 0;
    CachedRewritings value;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const std::string& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t per_shard_capacity_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace estocada::runtime

#endif  // ESTOCADA_RUNTIME_PLAN_CACHE_H_
