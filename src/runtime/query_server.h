#ifndef ESTOCADA_RUNTIME_QUERY_SERVER_H_
#define ESTOCADA_RUNTIME_QUERY_SERVER_H_

#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "estocada/estocada.h"
#include "runtime/canonical.h"
#include "runtime/metrics.h"
#include "runtime/plan_cache.h"

namespace estocada::runtime {

/// Tuning knobs of a QueryServer.
struct ServerOptions {
  /// Worker threads executing Submit()ted queries. Direct Query() calls
  /// run on the caller's thread, so total concurrency is workers + direct
  /// callers.
  size_t worker_threads = 8;
  PlanCache::Options cache;
};

/// The concurrent serving runtime wrapped around the Estocada facade —
/// the mediator tier the paper's demo does not need (it issues each query
/// once, single-threaded) but a production polystore does:
///
///  * many clients query concurrently: the read path holds a shared lock,
///    so plan translation and execution over the stores run in parallel;
///  * catalog changes (fragment definition/drop, applied recommendations,
///    data updates) take the exclusive lock, rebuild the PACB rewriter
///    once, and bump the catalog epoch;
///  * structurally identical queries share one plan-cache entry keyed by
///    their canonical form, so the PACB rewrite — the most expensive step
///    of the query path — runs once per query shape per fragment layout
///    instead of once per call;
///  * the epoch versioning guarantees a plan cached before a fragment
///    change is never served after it.
///
/// The wrapped Estocada must not be mutated behind the server's back while
/// serving; route all catalog/data changes through the server.
class QueryServer {
 public:
  explicit QueryServer(Estocada* system, ServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // -------------------------------------------------------- Query path --

  /// Answers one query on the calling thread. Thread-safe: any number of
  /// client threads may call concurrently.
  Result<Estocada::QueryResult> Query(
      const std::string& query_text,
      const std::map<std::string, engine::Value>& parameters = {});

  /// Enqueues a query on the server's worker pool; the future delivers
  /// the result.
  std::future<Result<Estocada::QueryResult>> Submit(
      std::string query_text,
      std::map<std::string, engine::Value> parameters = {});

  /// Blocks until every Submit()ted query has finished.
  void Drain();

  // -------------------------------------------- Catalog administration --
  // All exclusive: they quiesce the read path, apply the change, rebuild
  // the rewriter, and leave the bumped epoch to invalidate cached plans.

  Status DefineFragment(const std::string& view_text,
                        const std::string& store_name,
                        std::vector<pivot::Adornment> adornments = {},
                        std::vector<size_t> index_positions = {});
  Status DropFragment(const std::string& name);
  Status ApplyRecommendation(const advisor::Recommendation& rec);
  Status InsertRow(const std::string& relation, engine::Row row);
  Status DeleteRow(const std::string& relation, const engine::Row& row);

  /// Runs the storage advisor over the accumulated workload log.
  std::vector<advisor::Recommendation> Advise(
      const advisor::AdvisorOptions& options = {});

  // ------------------------------------------------------ Introspection --

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  size_t worker_threads() const { return pool_.num_threads(); }

  /// Drops every cached plan (benchmarks measuring cold caches).
  void ClearPlanCache() { cache_.Clear(); }

  /// Resets the metrics counters (between benchmark phases; do not call
  /// while queries are in flight).
  void ResetMetrics() { metrics_.Reset(); }

 private:
  /// Cache-lookup → (on miss) rewrite → translate → execute, under the
  /// shared lock the caller already holds.
  Result<Estocada::QueryResult> ServeLocked(
      const CanonicalQuery& canonical,
      const std::map<std::string, engine::Value>& parameters);

  Result<Estocada::QueryResult> ServeTimed(
      const std::string& query_text,
      const std::map<std::string, engine::Value>& parameters);

  Estocada* system_;
  /// Guards the Estocada facade: shared for the query path, exclusive for
  /// catalog/data changes and rewriter rebuilds.
  std::shared_mutex mu_;
  PlanCache cache_;
  ServerMetrics metrics_;
  ThreadPool pool_;
};

}  // namespace estocada::runtime

#endif  // ESTOCADA_RUNTIME_QUERY_SERVER_H_
