#ifndef ESTOCADA_RUNTIME_QUERY_SERVER_H_
#define ESTOCADA_RUNTIME_QUERY_SERVER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "estocada/estocada.h"
#include "runtime/canonical.h"
#include "runtime/health.h"
#include "runtime/metrics.h"
#include "runtime/plan_cache.h"
#include "runtime/retry.h"

namespace estocada::runtime {

/// Tuning knobs of a QueryServer.
struct ServerOptions {
  /// Worker threads executing Submit()ted queries. Direct Query() calls
  /// run on the caller's thread, so total concurrency is workers + direct
  /// callers.
  size_t worker_threads = 8;
  PlanCache::Options cache;
  /// Master switch for the resilience ladder (retry → failover rewriting
  /// → staging fallback). Off = PR-1 behavior: the first store error
  /// kills the query. Benchmarks compare both.
  bool fault_tolerant = true;
  RetryPolicy retry;
  /// Bound on immediate sibling re-routes per query. When an attempt
  /// fails *and* the health epoch moved during it (a breaker tripped or
  /// re-opened), routing now sees a different replica set — the server
  /// re-plans right away, without a backoff sleep and without consuming
  /// a retry attempt, so a replica's death costs one failed read, not a
  /// retry ladder. The bound stops a flapping store from spinning.
  int max_reroutes = 8;
  HealthOptions health;
  /// Seeds the backoff-jitter generator (deterministic chaos runs).
  uint64_t backoff_jitter_seed = 0x5ca1ab1e;
};

/// The concurrent serving runtime wrapped around the Estocada facade —
/// the mediator tier the paper's demo does not need (it issues each query
/// once, single-threaded) but a production polystore does:
///
///  * many clients query concurrently: the read path holds a shared lock,
///    so plan translation and execution over the stores run in parallel;
///  * catalog changes (fragment definition/drop, applied recommendations,
///    data updates) take the exclusive lock, rebuild the PACB rewriter
///    once, and bump the catalog epoch;
///  * structurally identical queries share one plan-cache entry keyed by
///    their canonical form, so the PACB rewrite — the most expensive step
///    of the query path — runs once per query shape per fragment layout
///    instead of once per call;
///  * the epoch versioning guarantees a plan cached before a fragment
///    change is never served after it;
///  * store failures walk a degradation ladder instead of killing the
///    query: when a breaker trips mid-attempt the query *re-routes*
///    immediately — replicated fragments re-plan onto sibling replicas
///    with no backoff and no attempt consumed; otherwise transient
///    errors are retried with jittered exponential backoff; repeated
///    failures trip a per-store-instance circuit breaker, after which
///    routing avoids that instance's placements and the best *surviving*
///    rewriting answers (the paper's rewriting multiplicity as
///    availability); when no rewriting survives, the staging area
///    answers — degraded but correct; only non-retryable errors surface.
///
/// The wrapped Estocada must not be mutated behind the server's back while
/// serving; route all catalog/data changes through the server.
class QueryServer {
 public:
  explicit QueryServer(Estocada* system, ServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // -------------------------------------------------------- Query path --

  /// Answers one query on the calling thread. Thread-safe: any number of
  /// client threads may call concurrently.
  Result<Estocada::QueryResult> Query(
      const std::string& query_text,
      const std::map<std::string, engine::Value>& parameters = {});

  /// Enqueues a query on the server's worker pool; the future delivers
  /// the result.
  std::future<Result<Estocada::QueryResult>> Submit(
      std::string query_text,
      std::map<std::string, engine::Value> parameters = {});

  /// Blocks until every Submit()ted query has finished.
  void Drain();

  // -------------------------------------------- Catalog administration --
  // All exclusive: they quiesce the read path, apply the change, rebuild
  // the rewriter, and leave the bumped epoch to invalidate cached plans.

  Status DefineFragment(const std::string& view_text,
                        const std::string& store_name,
                        std::vector<pivot::Adornment> adornments = {},
                        std::vector<size_t> index_positions = {});
  /// Replicated variant: K placements, one per store in `replica_stores`.
  Status DefineReplicatedFragment(
      const std::string& view_text,
      const std::vector<std::string>& replica_stores,
      std::vector<pivot::Adornment> adornments = {},
      std::vector<size_t> index_positions = {});
  /// Partitioned variant: N shards, each with its own replica store list
  /// (single-element lists = unreplicated shards).
  Status DefinePartitionedFragment(
      const std::string& view_text, catalog::PartitionSpec::Kind kind,
      size_t key_position,
      const std::vector<std::vector<std::string>>& shard_replica_stores,
      std::vector<engine::Value> bounds = {},
      std::vector<pivot::Adornment> adornments = {},
      std::vector<size_t> index_positions = {});
  Status DropFragment(const std::string& name);
  Status ApplyRecommendation(const advisor::Recommendation& rec);
  Status InsertRow(const std::string& relation, engine::Row row);
  Status DeleteRow(const std::string& relation, const engine::Row& row);

  /// Runs the storage advisor over the accumulated workload log.
  std::vector<advisor::Recommendation> Advise(
      const advisor::AdvisorOptions& options = {});

  /// Shared-lock advisor entry points for the Autopilot: they snapshot
  /// the workload log (internally consistent) and run concurrently with
  /// the query path instead of quiescing it — a tuner tick must not stall
  /// serving. AdviseCandidates returns each recommendation with its
  /// workload evidence (shape, observed cost/rows, replayable probes).
  std::vector<advisor::ScoredCandidate> AdviseCandidates(
      const advisor::AdvisorOptions& options = {});

  /// Classifies the current workload (lookup-heavy / join-heavy / mixed /
  /// insufficient) from a log snapshot, under the shared lock.
  advisor::PatternSummary ClassifyWorkload(
      const advisor::AdvisorOptions& options = {});

  /// Runs `fn` against the wrapped facade under the exclusive lock, then
  /// rebuilds the rewriter if `fn` dirtied it. The online migration
  /// engine stages its shadow-fragment work through this: acquiring the
  /// exclusive lock *is* the drain — every in-flight shared-lock query
  /// completes first, and queries admitted afterwards observe whatever
  /// epoch `fn` left behind. Keep `fn` short; the read path is stalled.
  Status WithAdminLock(const std::function<Status(Estocada*)>& fn);

  /// Runs `fn` under the shared lock, concurrently with the query path
  /// (const access only — safe against everything but admin calls).
  Status WithReadLock(const std::function<Status(const Estocada&)>& fn);

  // --------------------------------------------------- Update events --
  // Data updates routed through the server can be observed by listeners
  // (the migration engine captures them as catch-up deltas for its
  // shadow target). Listeners run under the exclusive lock, after the
  // update succeeded and in registration order; they must be fast and
  // must not call back into the server.

  struct UpdateEvent {
    enum class Kind { kInsert, kDelete };
    Kind kind = Kind::kInsert;
    std::string relation;
    engine::Row row;
  };
  using UpdateListener = std::function<void(const UpdateEvent&)>;

  /// Registers a listener; returns a token for RemoveUpdateListener.
  uint64_t AddUpdateListener(UpdateListener listener);
  void RemoveUpdateListener(uint64_t token);

  // ------------------------------------------------------ Introspection --

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  /// The live counters (thread-safe): the ReplicaRepairer records
  /// rebuilds here; metrics() above is the snapshot read path.
  ServerMetrics& server_metrics() { return metrics_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  size_t worker_threads() const { return pool_.num_threads(); }

  /// The per-store circuit breakers (tests and benchmarks inspect states
  /// and reset between phases; execution outcomes feed it automatically).
  HealthRegistry& health() { return health_; }

  /// Drops every cached plan (benchmarks measuring cold caches).
  void ClearPlanCache() { cache_.Clear(); }

  /// Resets the metrics counters (between benchmark phases; do not call
  /// while queries are in flight).
  void ResetMetrics() { metrics_.Reset(); }

 private:
  /// One execution attempt under the shared lock the caller already
  /// holds: cache-lookup → (on miss) rewrite → translate with the current
  /// breaker exclusions → execute, feeding breaker state with the
  /// outcome. Falls back to the staging area when planning is starved by
  /// the exclusions. `attempt` is 1-based and only labels the result.
  /// `planned_health_epoch` (optional) receives the health epoch the
  /// attempt planned against, so the caller can tell whether a failure
  /// changed the routing landscape (breaker trip → immediate re-route).
  Result<Estocada::QueryResult> ServeLocked(
      const CanonicalQuery& canonical,
      const std::map<std::string, engine::Value>& parameters, int attempt,
      uint64_t* planned_health_epoch = nullptr);

  /// Degradation-ladder bottom: answer from the staging area.
  Result<Estocada::QueryResult> ServeFromStaging(
      const CanonicalQuery& canonical,
      const std::map<std::string, engine::Value>& parameters,
      std::vector<std::string> excluded, int attempt);

  /// Stores of `plan_stores` named in `st`'s message ("store '<id>'");
  /// all of them when none is named (can't attribute — suspect every
  /// store the plan read).
  std::vector<std::string> AttributeFailure(
      const Status& st, const std::vector<std::string>& plan_stores) const;

  Result<Estocada::QueryResult> ServeTimed(
      const std::string& query_text,
      const std::map<std::string, engine::Value>& parameters);

  /// Parse + canonicalize `query_text`, memoized. Canonicalization is a
  /// pure function of the text (no catalog input), so entries never need
  /// invalidation — the cache is merely size-bounded.
  Result<std::shared_ptr<const CanonicalQuery>> CanonicalizeCached(
      const std::string& query_text);

  /// Fires `event` at every registered listener (exclusive lock held).
  void NotifyUpdate(const UpdateEvent& event);

  Estocada* system_;
  ServerOptions options_;
  /// Update listeners (guarded by their own mutex: registration may race
  /// the admin path).
  std::mutex listeners_mu_;
  std::map<uint64_t, UpdateListener> listeners_;
  uint64_t next_listener_token_ = 1;
  /// Guards the Estocada facade: shared for the query path, exclusive for
  /// catalog/data changes and rewriter rebuilds.
  std::shared_mutex mu_;
  PlanCache cache_;
  /// Raw query text → canonical form (guarded by canon_mu_; dropped
  /// wholesale when it hits kCanonCacheCap — repeated serving texts
  /// re-warm it in one query each).
  std::mutex canon_mu_;
  std::unordered_map<std::string, std::shared_ptr<const CanonicalQuery>>
      canon_cache_;
  static constexpr size_t kCanonCacheCap = 4096;
  ServerMetrics metrics_;
  HealthRegistry health_;
  /// Backoff-jitter draws (behind its own mutex; failures are rare).
  std::mutex rng_mu_;
  Rng rng_;
  ThreadPool pool_;
};

}  // namespace estocada::runtime

#endif  // ESTOCADA_RUNTIME_QUERY_SERVER_H_
