#include "runtime/metrics.h"

#include <cstdio>

#include "common/strings.h"

namespace estocada::runtime {

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot s;
  s.queries_served = queries_served_.load(kRelaxed);
  s.cache_hits = cache_hits_.load(kRelaxed);
  s.cache_misses = cache_misses_.load(kRelaxed);
  s.rewrites = rewrites_.load(kRelaxed);
  s.errors = errors_.load(kRelaxed);
  s.retries = retries_.load(kRelaxed);
  s.breaker_trips = breaker_trips_.load(kRelaxed);
  s.reroutes = reroutes_.load(kRelaxed);
  s.failovers = failovers_.load(kRelaxed);
  s.degraded = degraded_.load(kRelaxed);
  s.replica_rebuilds = replica_rebuilds_.load(kRelaxed);
  s.latency = latency_.snapshot();
  return s;
}

void ServerMetrics::Reset() {
  queries_served_.store(0, kRelaxed);
  cache_hits_.store(0, kRelaxed);
  cache_misses_.store(0, kRelaxed);
  rewrites_.store(0, kRelaxed);
  errors_.store(0, kRelaxed);
  retries_.store(0, kRelaxed);
  breaker_trips_.store(0, kRelaxed);
  reroutes_.store(0, kRelaxed);
  failovers_.store(0, kRelaxed);
  degraded_.store(0, kRelaxed);
  replica_rebuilds_.store(0, kRelaxed);
  latency_.Reset();
}

std::string MetricsSnapshot::ToString() const {
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f%%", CacheHitRate() * 100.0);
  return StrCat("queries served:  ", queries_served, "\n",
                "errors:          ", errors, "\n",
                "plan cache:      ", cache_hits, " hit(s), ", cache_misses,
                " miss(es) (", rate, " hit rate)\n",
                "PACB rewrites:   ", rewrites, "\n",
                "resilience:      ", retries, " retry(ies), ", breaker_trips,
                " breaker trip(s), ", reroutes, " reroute(s), ", failovers,
                " failover(s), ", degraded, " degraded, ", replica_rebuilds,
                " replica rebuild(s)\n",
                "latency:         ", latency.ToString(), "\n");
}

}  // namespace estocada::runtime
