#ifndef ESTOCADA_RUNTIME_HEALTH_H_
#define ESTOCADA_RUNTIME_HEALTH_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace estocada::runtime {

/// Circuit-breaker state of one store, classic three-state machine:
/// closed (healthy) → open after N consecutive failures (excluded from
/// planning) → half-open once the cooldown elapses (probe traffic allowed)
/// → closed on the first probe success, back to open on a probe failure.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct HealthOptions {
  /// Consecutive failures that trip a closed breaker open. Deliberately
  /// below the serve loop's RetryPolicy::max_attempts so a hard outage
  /// trips mid-query and the remaining attempts re-plan around it.
  int failure_threshold = 3;
  /// How long an open breaker stays open before admitting a half-open
  /// probe. Tests use 0 for instant probes.
  uint64_t open_cooldown_micros = 100'000;
  /// Every consecutive re-trip (open → half-open → failed probe → open,
  /// with no success in between) doubles the effective cooldown, capped at
  /// base * this multiplier. A hard-down store flaps slower and slower
  /// instead of re-entering every plan as soon as one cooldown elapses.
  int max_cooldown_multiplier = 64;
};

/// Per-store circuit breakers shared by every serving thread. Execution
/// outcomes feed ReportSuccess/ReportFailure; planners ask ExcludedStores
/// for the set to avoid. Every change to that set bumps `health_epoch`,
/// which versions the plan cache alongside the catalog epoch: plans
/// referencing a store that just died are dropped, and re-admitted plans
/// become stale again when the store recovers.
class HealthRegistry {
 public:
  explicit HealthRegistry(HealthOptions options = {}) : options_(options) {}

  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  /// Records a failed read against `store`. Returns true iff this report
  /// tripped the breaker from closed/half-open to open (callers count
  /// breaker trips in metrics).
  bool ReportFailure(const std::string& store);

  /// Records a successful read; closes a half-open breaker and zeroes the
  /// consecutive-failure count.
  void ReportSuccess(const std::string& store);

  /// Stores the planner must avoid right now (breakers in kOpen). Also
  /// performs due open → half-open transitions, so calling this is what
  /// lets probe traffic resume after the cooldown.
  std::vector<std::string> ExcludedStores();

  /// Stores whose breaker is half-open right now: routable, but only as a
  /// probe — planners prefer replicas on fully-closed stores and fall back
  /// to these when nothing healthy can serve. No side effects.
  std::vector<std::string> ProbationStores() const;

  /// Current state without side effects (no cooldown transition).
  BreakerState state(const std::string& store) const;

  /// Monotone version of the excluded-store set; bumped on every open,
  /// half-open, and close transition.
  uint64_t health_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Forgets all breaker state (between benchmark phases).
  void Reset();

 private:
  using Clock = std::chrono::steady_clock;

  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    /// Opens since the last success; scales the cooldown exponentially.
    int consecutive_trips = 0;
    Clock::time_point opened_at;
  };

  HealthOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Breaker> breakers_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace estocada::runtime

#endif  // ESTOCADA_RUNTIME_HEALTH_H_
