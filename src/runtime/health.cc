#include "runtime/health.h"

#include <algorithm>

namespace estocada::runtime {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool HealthRegistry::ReportFailure(const std::string& store) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[store];
  ++b.consecutive_failures;
  switch (b.state) {
    case BreakerState::kOpen:
      return false;  // Already open; nothing new to report.
    case BreakerState::kHalfOpen:
      // The probe failed: straight back to open, restart the cooldown
      // (longer each consecutive trip — the store is flapping).
      b.state = BreakerState::kOpen;
      ++b.consecutive_trips;
      b.opened_at = Clock::now();
      epoch_.fetch_add(1, std::memory_order_release);
      return true;
    case BreakerState::kClosed:
      if (b.consecutive_failures < options_.failure_threshold) return false;
      b.state = BreakerState::kOpen;
      ++b.consecutive_trips;
      b.opened_at = Clock::now();
      epoch_.fetch_add(1, std::memory_order_release);
      return true;
  }
  return false;
}

void HealthRegistry::ReportSuccess(const std::string& store) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(store);
  if (it == breakers_.end()) return;  // Never failed: implicitly closed.
  Breaker& b = it->second;
  b.consecutive_failures = 0;
  b.consecutive_trips = 0;
  if (b.state == BreakerState::kClosed) return;
  // A success while half-open (probe worked) — or while open, which can
  // happen when an in-flight read raced the trip — closes the breaker.
  b.state = BreakerState::kClosed;
  epoch_.fetch_add(1, std::memory_order_release);
}

std::vector<std::string> HealthRegistry::ExcludedStores() {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  std::vector<std::string> out;
  for (auto& [store, b] : breakers_) {
    if (b.state != BreakerState::kOpen) continue;
    const auto open_for =
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              b.opened_at);
    // Exponential backoff on consecutive trips: 1x, 2x, 4x, ... capped.
    const uint64_t cap = static_cast<uint64_t>(
        std::max(1, options_.max_cooldown_multiplier));
    const uint64_t multiplier = std::min(
        cap, uint64_t{1} << std::min(std::max(b.consecutive_trips - 1, 0), 30));
    if (open_for.count() >= 0 &&
        static_cast<uint64_t>(open_for.count()) >=
            options_.open_cooldown_micros * multiplier) {
      b.state = BreakerState::kHalfOpen;  // Cooldown over: admit a probe.
      epoch_.fetch_add(1, std::memory_order_release);
      continue;
    }
    out.push_back(store);
  }
  return out;
}

std::vector<std::string> HealthRegistry::ProbationStores() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [store, b] : breakers_) {
    if (b.state == BreakerState::kHalfOpen) out.push_back(store);
  }
  return out;
}

BreakerState HealthRegistry::state(const std::string& store) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(store);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

void HealthRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!breakers_.empty()) epoch_.fetch_add(1, std::memory_order_release);
  breakers_.clear();
}

}  // namespace estocada::runtime
