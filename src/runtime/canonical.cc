#include "runtime/canonical.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "pacb/feasibility.h"

namespace estocada::runtime {

namespace {

using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Term;

/// Incrementally built variable renaming: plain variables become v<k>,
/// parameter variables ('$'-prefixed) become $p<k>, numbered separately.
struct Naming {
  std::unordered_map<std::string, std::string> assigned;
  size_t next_plain = 0;
  size_t next_param = 0;

  bool Has(const std::string& var) const { return assigned.count(var) > 0; }

  const std::string& Assign(const std::string& var) {
    auto it = assigned.find(var);
    if (it != assigned.end()) return it->second;
    std::string fresh = pacb::IsParameterVariable(var)
                            ? StrCat("$p", next_param++)
                            : StrCat("v", next_plain++);
    return assigned.emplace(var, std::move(fresh)).first->second;
  }

  /// Renders `t` under the current assignment; unassigned variables as "?".
  std::string Label(const Term& t) const {
    if (!t.is_variable()) return t.ToString();
    auto it = assigned.find(t.var_name());
    return it == assigned.end() ? std::string("?") : it->second;
  }
};

std::string AtomLabel(const Atom& a, const Naming& naming) {
  std::string label = a.relation;
  label += '(';
  for (const Term& t : a.terms) {
    label += naming.Label(t);
    label += ',';
  }
  label += ')';
  return label;
}

Term Rename(const Term& t, Naming* naming) {
  if (!t.is_variable()) return t;
  return Term::Var(naming->Assign(t.var_name()));
}

}  // namespace

CanonicalQuery Canonicalize(const ConjunctiveQuery& q) {
  Naming naming;
  CanonicalQuery out;
  out.query.name = "q";

  // Head first: positions are the output contract, so head variables get
  // the lowest canonical names in head order.
  out.query.head.reserve(q.head.size());
  for (const Term& t : q.head) out.query.head.push_back(Rename(t, &naming));

  // Greedy smallest-label-first body order. Labels depend only on query
  // structure and names assigned so far — never on the input's variable
  // names or atom order — so equivalent inputs converge to one text.
  std::vector<const Atom*> remaining;
  remaining.reserve(q.body.size());
  for (const Atom& a : q.body) remaining.push_back(&a);
  while (!remaining.empty()) {
    size_t pick = 0;
    std::string pick_label = AtomLabel(*remaining[0], naming);
    for (size_t i = 1; i < remaining.size(); ++i) {
      std::string label = AtomLabel(*remaining[i], naming);
      if (label < pick_label) {
        pick = i;
        pick_label = std::move(label);
      }
    }
    const Atom* chosen = remaining[pick];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));
    Atom renamed;
    renamed.relation = chosen->relation;
    renamed.terms.reserve(chosen->terms.size());
    for (const Term& t : chosen->terms) renamed.terms.push_back(Rename(t, &naming));
    out.query.body.push_back(std::move(renamed));
  }

  for (const auto& [original, canonical] : naming.assigned) {
    if (pacb::IsParameterVariable(original)) {
      out.parameter_renaming.emplace(original, canonical);
    }
  }
  out.key = out.query.ToString();
  return out;
}

std::map<std::string, engine::Value> RemapParameters(
    const CanonicalQuery& canonical,
    const std::map<std::string, engine::Value>& parameters) {
  std::map<std::string, engine::Value> out;
  for (const auto& [name, value] : parameters) {
    auto it = canonical.parameter_renaming.find(name);
    out.emplace(it == canonical.parameter_renaming.end() ? name : it->second,
                value);
  }
  return out;
}

std::vector<std::string> RewritingSetKeys(const pacb::RewritingResult& result) {
  std::vector<std::string> keys;
  keys.reserve(result.rewritings.size());
  for (const pacb::Rewriting& rw : result.rewritings) {
    keys.push_back(Canonicalize(rw.query).key);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace estocada::runtime
