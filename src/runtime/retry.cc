#include "runtime/retry.h"

namespace estocada::runtime {

uint64_t RetryPolicy::BackoffMicros(int attempt, Rng& rng) const {
  if (attempt < 1) attempt = 1;
  uint64_t cap = initial_backoff_micros;
  for (int i = 1; i < attempt && cap < max_backoff_micros; ++i) cap *= 2;
  if (cap > max_backoff_micros) cap = max_backoff_micros;
  if (cap == 0) return 0;
  return rng.Uniform(cap + 1);
}

}  // namespace estocada::runtime
