#ifndef ESTOCADA_RUNTIME_CANONICAL_H_
#define ESTOCADA_RUNTIME_CANONICAL_H_

#include <map>
#include <string>
#include <vector>

#include "engine/value.h"
#include "pacb/rewriter.h"
#include "pivot/query.h"

namespace estocada::runtime {

/// A conjunctive query normalized for plan-cache keying: variables renamed
/// positionally ("v0", "v1", ... / parameters "$p0", "$p1", ...), body
/// atoms reordered into a structure-determined order, and the head
/// predicate name dropped (it never affects the answer). Two queries that
/// differ only in variable names, parameter names, atom order, or head
/// name canonicalize to the same key and therefore share one plan-cache
/// entry; parameter *values* are never part of the key.
struct CanonicalQuery {
  /// The normalized query. Head positions match the original query's, so
  /// rows produced by executing a plan of the canonical query are
  /// positionally identical to the original's answer.
  pivot::ConjunctiveQuery query;
  /// Cache key: `query.ToString()`.
  std::string key;
  /// Original parameter variable name -> canonical name ("$uid" -> "$p0").
  std::map<std::string, std::string> parameter_renaming;
};

/// Canonicalizes `q`. Deterministic; invariant under variable renaming and
/// body-atom reordering. The body order is fixed by a greedy
/// smallest-label-first construction: repeatedly emit the atom whose
/// rendering (under the names assigned so far, unassigned variables as
/// "?") is lexicographically smallest, then name its fresh variables.
/// Ties between structurally symmetric atoms are broken arbitrarily —
/// that can only split automorphic queries across two cache entries
/// (an extra miss), never merge inequivalent ones (the key is the full
/// canonical text).
CanonicalQuery Canonicalize(const pivot::ConjunctiveQuery& q);

/// Rewrites a caller's parameter map into the canonical query's parameter
/// names; entries without a mapping pass through unchanged.
std::map<std::string, engine::Value> RemapParameters(
    const CanonicalQuery& canonical,
    const std::map<std::string, engine::Value>& parameters);

/// Sorted, deduplicated canonical keys of every rewriting in `result` — a
/// fingerprint of a rewriting set that is invariant under variable naming
/// and body-atom order. Differential tests compare the PACB and naive
/// chase & backchase outputs through this.
std::vector<std::string> RewritingSetKeys(const pacb::RewritingResult& result);

}  // namespace estocada::runtime

#endif  // ESTOCADA_RUNTIME_CANONICAL_H_
