#include "catalog/catalog.h"

#include <set>

#include "common/strings.h"

namespace estocada::catalog {

const char* StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kRelational:
      return "relational";
    case StoreKind::kKeyValue:
      return "key-value";
    case StoreKind::kDocument:
      return "document";
    case StoreKind::kParallel:
      return "parallel";
    case StoreKind::kText:
      return "text";
    case StoreKind::kGraph:
      return "graph";
  }
  return "?";
}

double FragmentStatistics::EqualitySelectivity(size_t position) const {
  if (position < distinct.size() && distinct[position] > 0) {
    return 1.0 / static_cast<double>(distinct[position]);
  }
  // Textbook default when statistics are missing.
  return 0.1;
}

size_t PartitionSpec::ShardOf(const engine::Value& v) const {
  if (shards <= 1) return 0;
  if (kind == Kind::kHash) return v.Hash() % shards;
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (engine::Value::Compare(v, bounds[i]) < 0) return i;
  }
  return shards - 1;
}

Status Catalog::RegisterDatasetSchema(const pivot::Schema& schema) {
  return dataset_schema_.Merge(schema);
}

Status Catalog::RegisterStore(StoreHandle handle) {
  if (handle.name.empty()) {
    return Status::InvalidArgument("store needs a name");
  }
  int set = (handle.relational != nullptr) + (handle.kv != nullptr) +
            (handle.document != nullptr) + (handle.parallel != nullptr) +
            (handle.text != nullptr) + (handle.graph != nullptr);
  if (set != 1) {
    return Status::InvalidArgument(
        StrCat("store '", handle.name,
               "': exactly one implementation pointer must be set, got ",
               set));
  }
  bool matches = (handle.kind == StoreKind::kRelational &&
                  handle.relational != nullptr) ||
                 (handle.kind == StoreKind::kKeyValue && handle.kv != nullptr) ||
                 (handle.kind == StoreKind::kDocument &&
                  handle.document != nullptr) ||
                 (handle.kind == StoreKind::kParallel &&
                  handle.parallel != nullptr) ||
                 (handle.kind == StoreKind::kText && handle.text != nullptr) ||
                 (handle.kind == StoreKind::kGraph && handle.graph != nullptr);
  if (!matches) {
    return Status::InvalidArgument(
        StrCat("store '", handle.name, "': pointer does not match kind ",
               StoreKindName(handle.kind)));
  }
  if (stores_.count(handle.name)) {
    return Status::AlreadyExists(
        StrCat("store '", handle.name, "' already registered"));
  }
  stores_.emplace(handle.name, std::move(handle));
  return Status::OK();
}

Result<const StoreHandle*> Catalog::GetStore(const std::string& name) const {
  auto it = stores_.find(name);
  if (it == stores_.end()) {
    return Status::NotFound(StrCat("store '", name, "' not registered"));
  }
  return &it->second;
}

Status Catalog::RegisterFragment(StorageDescriptor descriptor) {
  ESTOCADA_RETURN_NOT_OK(descriptor.view.query.Validate());
  const std::string& name = descriptor.name();
  if (fragments_.count(name)) {
    return Status::AlreadyExists(
        StrCat("fragment '", name, "' already registered"));
  }
  if (dataset_schema_.HasRelation(name)) {
    return Status::InvalidArgument(
        StrCat("fragment '", name, "' collides with a dataset relation"));
  }
  ESTOCADA_RETURN_NOT_OK(GetStore(descriptor.store_name).status());
  for (const pivot::Atom& a : descriptor.view.query.body) {
    if (!dataset_schema_.HasRelation(a.relation)) {
      return Status::NotFound(
          StrCat("fragment '", name, "': view body uses unknown relation '",
                 a.relation, "'"));
    }
  }
  if (descriptor.container.empty()) descriptor.container = name;
  if (descriptor.partitioned()) {
    const PartitionSpec& spec = descriptor.partition;
    if (spec.key_position >= descriptor.view.query.head.size()) {
      return Status::InvalidArgument(
          StrCat("fragment '", name, "': partition key position ",
                 spec.key_position, " out of range for arity ",
                 descriptor.view.query.head.size()));
    }
    if (spec.kind == PartitionSpec::Kind::kRange) {
      if (spec.bounds.size() + 1 != spec.shards) {
        return Status::InvalidArgument(
            StrCat("fragment '", name, "': range partitioning over ",
                   spec.shards, " shards needs ", spec.shards - 1,
                   " split points, got ", spec.bounds.size()));
      }
      for (size_t i = 1; i < spec.bounds.size(); ++i) {
        if (!(spec.bounds[i - 1] < spec.bounds[i])) {
          return Status::InvalidArgument(
              StrCat("fragment '", name,
                     "': range split points must be strictly ascending"));
        }
      }
    } else if (!spec.bounds.empty()) {
      return Status::InvalidArgument(
          StrCat("fragment '", name, "': hash partitioning takes no bounds"));
    }
    // Normalize per-shard placements. An empty shard vector means "every
    // shard primary on the descriptor's store"; otherwise one ShardState
    // per shard, each normalized like a replica set with shard-scoped
    // default containers so same-store shards never collide.
    if (descriptor.shards.empty()) {
      descriptor.shards.resize(spec.shards);
    } else if (descriptor.shards.size() != spec.shards) {
      return Status::InvalidArgument(
          StrCat("fragment '", name, "': ", spec.shards, " shards but ",
                 descriptor.shards.size(), " shard states"));
    }
    for (size_t s = 0; s < descriptor.shards.size(); ++s) {
      ShardState& shard = descriptor.shards[s];
      if (shard.replicas.empty()) {
        shard.replicas.push_back({descriptor.store_name, "",
                                  shard.write_epoch, /*rebuilding=*/false});
      }
      for (size_t i = 0; i < shard.replicas.size(); ++i) {
        ReplicaPlacement& r = shard.replicas[i];
        ESTOCADA_RETURN_NOT_OK(GetStore(r.store_name).status());
        if (r.container.empty()) {
          r.container = i == 0 ? StrCat(name, "#p", s)
                               : StrCat(name, "#p", s, "#r", i);
        }
      }
    }
    // The legacy whole-fragment fields stay as an inert single-placement
    // mirror; nothing routes through them for a partitioned fragment.
    descriptor.replicas.clear();
    descriptor.replicas.push_back({descriptor.store_name, descriptor.container,
                                   descriptor.write_epoch,
                                   /*rebuilding=*/false});
    fragments_.emplace(name, std::move(descriptor));
    return Status::OK();
  }
  // Normalize the replica set: replicas[0] mirrors the legacy
  // store_name/container pair, sibling containers default to a
  // "#r<i>" suffix so same-store siblings never collide.
  if (descriptor.replicas.empty()) {
    descriptor.replicas.push_back(
        {descriptor.store_name, descriptor.container, descriptor.write_epoch,
         /*rebuilding=*/false});
  } else {
    descriptor.replicas[0].store_name = descriptor.store_name;
    descriptor.replicas[0].container = descriptor.container;
    for (size_t i = 1; i < descriptor.replicas.size(); ++i) {
      ReplicaPlacement& r = descriptor.replicas[i];
      ESTOCADA_RETURN_NOT_OK(GetStore(r.store_name).status());
      if (r.container.empty()) {
        r.container = StrCat(name, "#r", i);
      }
    }
  }
  fragments_.emplace(name, std::move(descriptor));
  return Status::OK();
}

Status Catalog::DropFragment(const std::string& name) {
  if (fragments_.erase(name) == 0) {
    return Status::NotFound(StrCat("fragment '", name, "' not registered"));
  }
  return Status::OK();
}

Result<const StorageDescriptor*> Catalog::GetFragment(
    const std::string& name) const {
  auto it = fragments_.find(name);
  if (it == fragments_.end()) {
    return Status::NotFound(StrCat("fragment '", name, "' not registered"));
  }
  return &it->second;
}

Result<StorageDescriptor*> Catalog::GetMutableFragment(
    const std::string& name) {
  auto it = fragments_.find(name);
  if (it == fragments_.end()) {
    return Status::NotFound(StrCat("fragment '", name, "' not registered"));
  }
  return &it->second;
}

std::vector<pacb::ViewDefinition> Catalog::AllViews() const {
  std::vector<pacb::ViewDefinition> out;
  out.reserve(fragments_.size());
  for (const auto& [name, desc] : fragments_) {
    if (desc.is_shadow()) continue;
    out.push_back(desc.view);
  }
  return out;
}

std::string Catalog::ToString() const {
  std::string out = "== Stores ==\n";
  for (const auto& [name, handle] : stores_) {
    out += StrCat("  ", name, " (", StoreKindName(handle.kind), ")\n");
  }
  out += "== Fragments ==\n";
  for (const auto& [name, desc] : fragments_) {
    out += StrCat("  ", desc.view.query.ToString(), "\n    @ ",
                  desc.store_name, "/", desc.container, ", ",
                  desc.stats.row_count, " rows",
                  desc.is_shadow() ? " [shadow]" : "", "\n");
    if (desc.replicas.size() > 1) {
      for (size_t i = 1; i < desc.replicas.size(); ++i) {
        const ReplicaPlacement& r = desc.replicas[i];
        out += StrCat("    + replica ", i, " @ ", r.store_name, "/",
                      r.container, r.rebuilding ? " [rebuilding]" : "",
                      r.fresh(desc.write_epoch) ? "" : " [stale]", "\n");
      }
    }
    if (desc.partitioned()) {
      out += StrCat("    partitioned ",
                    desc.partition.kind == PartitionSpec::Kind::kHash
                        ? "hash"
                        : "range",
                    "(pos ", desc.partition.key_position, ") x ",
                    desc.partition.shards, "\n");
      for (size_t s = 0; s < desc.shards.size(); ++s) {
        const ShardState& shard = desc.shards[s];
        for (size_t i = 0; i < shard.replicas.size(); ++i) {
          const ReplicaPlacement& r = shard.replicas[i];
          out += StrCat("      shard ", s, i == 0 ? "" : StrCat(".r", i),
                        " @ ", r.store_name, "/", r.container,
                        r.rebuilding ? " [rebuilding]" : "",
                        r.fresh(shard.write_epoch) ? "" : " [stale]", "\n");
        }
      }
    }
  }
  return out;
}

std::vector<std::string> FragmentColumnNames(const pacb::ViewDefinition& view) {
  std::vector<std::string> names;
  std::set<std::string> seen;
  for (size_t i = 0; i < view.query.head.size(); ++i) {
    const pivot::Term& t = view.query.head[i];
    std::string name = t.is_variable() ? t.var_name() : StrCat("h", i);
    if (!name.empty() && name[0] == '$') name = name.substr(1);
    if (!seen.insert(name).second) name = StrCat(name, "_", i);
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace estocada::catalog
