#include "catalog/serialize.h"

#include "common/strings.h"
#include "pivot/parser.h"

namespace estocada::catalog {

using json::JsonValue;

JsonValue CatalogToJson(const Catalog& catalog) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("format", JsonValue::Str("estocada-catalog"));
  root.Set("version", JsonValue::Int(1));
  JsonValue fragments = JsonValue::MakeArray();
  for (const auto& [name, desc] : catalog.fragments()) {
    // Shadow fragments are transient migration state, not layout: a
    // checkpoint taken mid-migration must restore to the *old* layout.
    if (desc.is_shadow()) continue;
    JsonValue f = JsonValue::MakeObject();
    f.Set("view", JsonValue::Str(desc.view.query.ToString()));
    JsonValue adorn = JsonValue::MakeArray();
    for (pivot::Adornment a : desc.view.adornments) {
      adorn.Append(JsonValue::Str(a == pivot::Adornment::kInput ? "in"
                                                                : "free"));
    }
    f.Set("adornments", adorn);
    f.Set("store", JsonValue::Str(desc.store_name));
    f.Set("container", JsonValue::Str(desc.container));
    // Replica siblings (index >= 1; the primary is store/container above).
    // Epochs are restored verbatim so a checkpoint taken with a stale
    // replica restores stale — the repairer, not the import, heals it.
    if (desc.replicas.size() > 1) {
      JsonValue reps = JsonValue::MakeArray();
      for (size_t i = 0; i < desc.replicas.size(); ++i) {
        const ReplicaPlacement& r = desc.replicas[i];
        JsonValue rep = JsonValue::MakeObject();
        rep.Set("store", JsonValue::Str(r.store_name));
        rep.Set("container", JsonValue::Str(r.container));
        rep.Set("epoch", JsonValue::Int(static_cast<int64_t>(r.epoch)));
        // A checkpoint taken mid-rebuild must restore mid-rebuild: the
        // container is unverified, so routing may not see it until a
        // repairer finishes the job.
        if (r.rebuilding) rep.Set("rebuilding", JsonValue::Bool(true));
        reps.Append(std::move(rep));
      }
      f.Set("replicas", reps);
      f.Set("write_epoch",
            JsonValue::Int(static_cast<int64_t>(desc.write_epoch)));
    }
    // Partition layout: spec plus per-shard replica sets and write
    // epochs, restored verbatim (stale shard replicas restore stale).
    if (desc.partitioned()) {
      JsonValue part = JsonValue::MakeObject();
      part.Set("kind",
               JsonValue::Str(desc.partition.kind == PartitionSpec::Kind::kHash
                                  ? "hash"
                                  : "range"));
      part.Set("key_position",
               JsonValue::Int(static_cast<int64_t>(desc.partition.key_position)));
      part.Set("shards",
               JsonValue::Int(static_cast<int64_t>(desc.partition.shards)));
      if (!desc.partition.bounds.empty()) {
        JsonValue bounds = JsonValue::MakeArray();
        for (const engine::Value& b : desc.partition.bounds) {
          bounds.Append(b.ToJson());
        }
        part.Set("bounds", std::move(bounds));
      }
      f.Set("partition", std::move(part));
      JsonValue shards = JsonValue::MakeArray();
      for (const ShardState& shard : desc.shards) {
        JsonValue sh = JsonValue::MakeObject();
        sh.Set("write_epoch",
               JsonValue::Int(static_cast<int64_t>(shard.write_epoch)));
        JsonValue reps = JsonValue::MakeArray();
        for (const ReplicaPlacement& r : shard.replicas) {
          JsonValue rep = JsonValue::MakeObject();
          rep.Set("store", JsonValue::Str(r.store_name));
          rep.Set("container", JsonValue::Str(r.container));
          rep.Set("epoch", JsonValue::Int(static_cast<int64_t>(r.epoch)));
          if (r.rebuilding) rep.Set("rebuilding", JsonValue::Bool(true));
          reps.Append(std::move(rep));
        }
        sh.Set("replicas", std::move(reps));
        shards.Append(std::move(sh));
      }
      f.Set("shards", std::move(shards));
    }
    JsonValue idx = JsonValue::MakeArray();
    for (size_t p : desc.index_positions) {
      idx.Append(JsonValue::Int(static_cast<int64_t>(p)));
    }
    f.Set("index_positions", idx);
    JsonValue stats = JsonValue::MakeObject();
    stats.Set("row_count",
              JsonValue::Int(static_cast<int64_t>(desc.stats.row_count)));
    JsonValue distinct = JsonValue::MakeArray();
    for (size_t d : desc.stats.distinct) {
      distinct.Append(JsonValue::Int(static_cast<int64_t>(d)));
    }
    stats.Set("distinct", distinct);
    f.Set("stats", stats);
    fragments.Append(std::move(f));
  }
  root.Set("fragments", std::move(fragments));
  return root;
}

Status FragmentsFromJson(const JsonValue& doc, Catalog* catalog) {
  const JsonValue* format = doc.Find("format");
  if (format == nullptr || !format->is_string() ||
      format->string_value() != "estocada-catalog") {
    return Status::InvalidArgument(
        "not an estocada-catalog JSON document");
  }
  const JsonValue* fragments = doc.Find("fragments");
  if (fragments == nullptr || !fragments->is_array()) {
    return Status::InvalidArgument("catalog JSON lacks a fragments array");
  }
  for (const JsonValue& f : fragments->array()) {
    const JsonValue* view = f.Find("view");
    const JsonValue* store = f.Find("store");
    if (view == nullptr || !view->is_string() || store == nullptr ||
        !store->is_string()) {
      return Status::InvalidArgument(
          "fragment entry needs 'view' and 'store' strings");
    }
    StorageDescriptor desc;
    ESTOCADA_ASSIGN_OR_RETURN(desc.view.query,
                              pivot::ParseQuery(view->string_value()));
    if (const JsonValue* adorn = f.Find("adornments");
        adorn != nullptr && adorn->is_array()) {
      for (const JsonValue& a : adorn->array()) {
        if (!a.is_string()) {
          return Status::InvalidArgument("adornment entries must be strings");
        }
        desc.view.adornments.push_back(a.string_value() == "in"
                                           ? pivot::Adornment::kInput
                                           : pivot::Adornment::kFree);
      }
    }
    desc.store_name = store->string_value();
    if (const JsonValue* container = f.Find("container");
        container != nullptr && container->is_string()) {
      desc.container = container->string_value();
    }
    if (const JsonValue* we = f.Find("write_epoch");
        we != nullptr && we->is_int()) {
      desc.write_epoch = static_cast<uint64_t>(we->int_value());
    }
    if (const JsonValue* reps = f.Find("replicas");
        reps != nullptr && reps->is_array()) {
      // The array carries every placement including the primary (slot 0);
      // RegisterFragment re-normalizes slot 0's store/container from the
      // legacy fields but leaves its epoch as restored here.
      for (const JsonValue& rep : reps->array()) {
        const JsonValue* rstore = rep.Find("store");
        if (rstore == nullptr || !rstore->is_string()) {
          return Status::InvalidArgument("replica entry needs a 'store'");
        }
        ReplicaPlacement r;
        r.store_name = rstore->string_value();
        if (const JsonValue* rc = rep.Find("container");
            rc != nullptr && rc->is_string()) {
          r.container = rc->string_value();
        }
        if (const JsonValue* re = rep.Find("epoch");
            re != nullptr && re->is_int()) {
          r.epoch = static_cast<uint64_t>(re->int_value());
        }
        if (const JsonValue* rb = rep.Find("rebuilding");
            rb != nullptr && rb->is_bool()) {
          r.rebuilding = rb->bool_value();
        }
        desc.replicas.push_back(std::move(r));
      }
    }
    if (const JsonValue* part = f.Find("partition");
        part != nullptr && part->is_object()) {
      if (const JsonValue* kind = part->Find("kind");
          kind != nullptr && kind->is_string()) {
        desc.partition.kind = kind->string_value() == "range"
                                  ? PartitionSpec::Kind::kRange
                                  : PartitionSpec::Kind::kHash;
      }
      if (const JsonValue* kp = part->Find("key_position");
          kp != nullptr && kp->is_int()) {
        desc.partition.key_position = static_cast<size_t>(kp->int_value());
      }
      if (const JsonValue* sh = part->Find("shards");
          sh != nullptr && sh->is_int()) {
        desc.partition.shards = static_cast<size_t>(sh->int_value());
      }
      if (const JsonValue* bounds = part->Find("bounds");
          bounds != nullptr && bounds->is_array()) {
        for (const JsonValue& b : bounds->array()) {
          desc.partition.bounds.push_back(engine::Value::FromJson(b));
        }
      }
      const JsonValue* shards = f.Find("shards");
      if (shards == nullptr || !shards->is_array()) {
        return Status::InvalidArgument(
            "partitioned fragment entry needs a 'shards' array");
      }
      for (const JsonValue& sh : shards->array()) {
        ShardState shard;
        if (const JsonValue* we = sh.Find("write_epoch");
            we != nullptr && we->is_int()) {
          shard.write_epoch = static_cast<uint64_t>(we->int_value());
        }
        if (const JsonValue* reps = sh.Find("replicas");
            reps != nullptr && reps->is_array()) {
          for (const JsonValue& rep : reps->array()) {
            const JsonValue* rstore = rep.Find("store");
            if (rstore == nullptr || !rstore->is_string()) {
              return Status::InvalidArgument(
                  "shard replica entry needs a 'store'");
            }
            ReplicaPlacement r;
            r.store_name = rstore->string_value();
            if (const JsonValue* rc = rep.Find("container");
                rc != nullptr && rc->is_string()) {
              r.container = rc->string_value();
            }
            if (const JsonValue* re = rep.Find("epoch");
                re != nullptr && re->is_int()) {
              r.epoch = static_cast<uint64_t>(re->int_value());
            }
            if (const JsonValue* rb = rep.Find("rebuilding");
                rb != nullptr && rb->is_bool()) {
              r.rebuilding = rb->bool_value();
            }
            shard.replicas.push_back(std::move(r));
          }
        }
        desc.shards.push_back(std::move(shard));
      }
    }
    if (const JsonValue* idx = f.Find("index_positions");
        idx != nullptr && idx->is_array()) {
      for (const JsonValue& p : idx->array()) {
        if (!p.is_int()) {
          return Status::InvalidArgument("index positions must be integers");
        }
        desc.index_positions.push_back(static_cast<size_t>(p.int_value()));
      }
    }
    if (const JsonValue* stats = f.Find("stats"); stats != nullptr) {
      if (const JsonValue* rc = stats->Find("row_count");
          rc != nullptr && rc->is_int()) {
        desc.stats.row_count = static_cast<size_t>(rc->int_value());
      }
      if (const JsonValue* distinct = stats->Find("distinct");
          distinct != nullptr && distinct->is_array()) {
        for (const JsonValue& d : distinct->array()) {
          if (d.is_int()) {
            desc.stats.distinct.push_back(
                static_cast<size_t>(d.int_value()));
          }
        }
      }
    }
    ESTOCADA_RETURN_NOT_OK(catalog->RegisterFragment(std::move(desc)));
  }
  return Status::OK();
}

}  // namespace estocada::catalog
