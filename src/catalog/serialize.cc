#include "catalog/serialize.h"

#include "common/strings.h"
#include "pivot/parser.h"

namespace estocada::catalog {

using json::JsonValue;

JsonValue CatalogToJson(const Catalog& catalog) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("format", JsonValue::Str("estocada-catalog"));
  root.Set("version", JsonValue::Int(1));
  JsonValue fragments = JsonValue::MakeArray();
  for (const auto& [name, desc] : catalog.fragments()) {
    // Shadow fragments are transient migration state, not layout: a
    // checkpoint taken mid-migration must restore to the *old* layout.
    if (desc.is_shadow()) continue;
    JsonValue f = JsonValue::MakeObject();
    f.Set("view", JsonValue::Str(desc.view.query.ToString()));
    JsonValue adorn = JsonValue::MakeArray();
    for (pivot::Adornment a : desc.view.adornments) {
      adorn.Append(JsonValue::Str(a == pivot::Adornment::kInput ? "in"
                                                                : "free"));
    }
    f.Set("adornments", adorn);
    f.Set("store", JsonValue::Str(desc.store_name));
    f.Set("container", JsonValue::Str(desc.container));
    JsonValue idx = JsonValue::MakeArray();
    for (size_t p : desc.index_positions) {
      idx.Append(JsonValue::Int(static_cast<int64_t>(p)));
    }
    f.Set("index_positions", idx);
    JsonValue stats = JsonValue::MakeObject();
    stats.Set("row_count",
              JsonValue::Int(static_cast<int64_t>(desc.stats.row_count)));
    JsonValue distinct = JsonValue::MakeArray();
    for (size_t d : desc.stats.distinct) {
      distinct.Append(JsonValue::Int(static_cast<int64_t>(d)));
    }
    stats.Set("distinct", distinct);
    f.Set("stats", stats);
    fragments.Append(std::move(f));
  }
  root.Set("fragments", std::move(fragments));
  return root;
}

Status FragmentsFromJson(const JsonValue& doc, Catalog* catalog) {
  const JsonValue* format = doc.Find("format");
  if (format == nullptr || !format->is_string() ||
      format->string_value() != "estocada-catalog") {
    return Status::InvalidArgument(
        "not an estocada-catalog JSON document");
  }
  const JsonValue* fragments = doc.Find("fragments");
  if (fragments == nullptr || !fragments->is_array()) {
    return Status::InvalidArgument("catalog JSON lacks a fragments array");
  }
  for (const JsonValue& f : fragments->array()) {
    const JsonValue* view = f.Find("view");
    const JsonValue* store = f.Find("store");
    if (view == nullptr || !view->is_string() || store == nullptr ||
        !store->is_string()) {
      return Status::InvalidArgument(
          "fragment entry needs 'view' and 'store' strings");
    }
    StorageDescriptor desc;
    ESTOCADA_ASSIGN_OR_RETURN(desc.view.query,
                              pivot::ParseQuery(view->string_value()));
    if (const JsonValue* adorn = f.Find("adornments");
        adorn != nullptr && adorn->is_array()) {
      for (const JsonValue& a : adorn->array()) {
        if (!a.is_string()) {
          return Status::InvalidArgument("adornment entries must be strings");
        }
        desc.view.adornments.push_back(a.string_value() == "in"
                                           ? pivot::Adornment::kInput
                                           : pivot::Adornment::kFree);
      }
    }
    desc.store_name = store->string_value();
    if (const JsonValue* container = f.Find("container");
        container != nullptr && container->is_string()) {
      desc.container = container->string_value();
    }
    if (const JsonValue* idx = f.Find("index_positions");
        idx != nullptr && idx->is_array()) {
      for (const JsonValue& p : idx->array()) {
        if (!p.is_int()) {
          return Status::InvalidArgument("index positions must be integers");
        }
        desc.index_positions.push_back(static_cast<size_t>(p.int_value()));
      }
    }
    if (const JsonValue* stats = f.Find("stats"); stats != nullptr) {
      if (const JsonValue* rc = stats->Find("row_count");
          rc != nullptr && rc->is_int()) {
        desc.stats.row_count = static_cast<size_t>(rc->int_value());
      }
      if (const JsonValue* distinct = stats->Find("distinct");
          distinct != nullptr && distinct->is_array()) {
        for (const JsonValue& d : distinct->array()) {
          if (d.is_int()) {
            desc.stats.distinct.push_back(
                static_cast<size_t>(d.int_value()));
          }
        }
      }
    }
    ESTOCADA_RETURN_NOT_OK(catalog->RegisterFragment(std::move(desc)));
  }
  return Status::OK();
}

}  // namespace estocada::catalog
