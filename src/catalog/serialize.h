#ifndef ESTOCADA_CATALOG_SERIALIZE_H_
#define ESTOCADA_CATALOG_SERIALIZE_H_

#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "json/json.h"

namespace estocada::catalog {

/// Serializes the Storage Descriptor Manager's state — every fragment's
/// *what* (view text + adornments) and *where* (store, container, index
/// positions), plus its statistics — as a JSON document, so a deployment
/// can be checkpointed, versioned, and re-established. Store handles are
/// referenced by name only (they are live connections, re-registered at
/// startup).
json::JsonValue CatalogToJson(const Catalog& catalog);

/// Re-registers the fragments of `doc` (a CatalogToJson result) into
/// `catalog`. The dataset schema and the named stores must already be
/// registered; fragments are *not* materialized (callers re-materialize
/// from staged data or trust the stores' existing contents). Fails on the
/// first invalid descriptor, leaving earlier ones registered.
Status FragmentsFromJson(const json::JsonValue& doc, Catalog* catalog);

}  // namespace estocada::catalog

#endif  // ESTOCADA_CATALOG_SERIALIZE_H_
