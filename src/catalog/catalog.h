#ifndef ESTOCADA_CATALOG_CATALOG_H_
#define ESTOCADA_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/value.h"
#include "pacb/view.h"
#include "pivot/schema.h"
#include "stores/document_store.h"
#include "stores/graph_store.h"
#include "stores/kv_store.h"
#include "stores/parallel_store.h"
#include "stores/relational_store.h"
#include "stores/text_store.h"

namespace estocada::catalog {

/// The kinds of DMSs ESTOCADA can exploit side by side.
enum class StoreKind {
  kRelational,
  kKeyValue,
  kDocument,
  kParallel,
  kText,
  kGraph,
};

/// Every StoreKind value, for code that must cover all kinds (tests,
/// sweeps). Kept in enum order.
inline constexpr StoreKind kAllStoreKinds[] = {
    StoreKind::kRelational, StoreKind::kKeyValue, StoreKind::kDocument,
    StoreKind::kParallel,   StoreKind::kText,     StoreKind::kGraph,
};

const char* StoreKindName(StoreKind kind);

/// A registered DMS instance: a name (e.g. "postgres1") plus a non-owning
/// pointer to exactly one store implementation.
struct StoreHandle {
  std::string name;
  StoreKind kind = StoreKind::kRelational;
  stores::RelationalStore* relational = nullptr;
  stores::KeyValueStore* kv = nullptr;
  stores::DocumentStore* document = nullptr;
  stores::ParallelStore* parallel = nullptr;
  stores::TextStore* text = nullptr;
  /// Appended last so existing five-pointer braced initializers stay valid.
  stores::GraphStore* graph = nullptr;
};

/// Per-fragment statistics driving the cost model ("statistics it gathers
/// and stores on the data of each fragment, using database textbook
/// formulas").
struct FragmentStatistics {
  size_t row_count = 0;
  /// Distinct value count per view-head position.
  std::vector<size_t> distinct;

  /// Selectivity of an equality on `position` (1/distinct, floored).
  double EqualitySelectivity(size_t position) const;
};

/// Visibility of a fragment to the planner. `kShadow` fragments are
/// migration targets being backfilled: they have a container and a
/// descriptor but are excluded from `AllViews()` (so the rewriter never
/// uses them and no catalog-epoch bump is needed when they appear),
/// from incremental maintenance (the migration engine owns their delta
/// replay), and from the catalog JSON export. Cutover flips them to
/// `kActive`, which *is* a catalog change.
enum class FragmentLifecycle {
  kActive,
  kShadow,
};

/// One physical copy of a fragment: a store instance, the container
/// inside it, and a freshness epoch. A replica is fresh when its epoch
/// equals the descriptor's write_epoch — every logical mutation of the
/// fragment bumps write_epoch, and each replica's epoch advances only
/// when the mutation landed on that copy. `rebuilding` marks a replica
/// the ReplicaRepairer owns: routing and write fan-out skip it until
/// re-admission.
struct ReplicaPlacement {
  std::string store_name;
  std::string container;
  uint64_t epoch = 0;
  bool rebuilding = false;

  bool fresh(uint64_t write_epoch) const { return epoch == write_epoch; }
};

/// How a fragment's rows are divided across shard containers. Partitioning
/// is part of the LAV view description's *where*: the view itself is
/// unchanged (the PACB rewriter still sees one fragment), but the physical
/// extent is split across `shards` containers by the value of one head
/// attribute, so the translator must scatter-gather (or prune to one shard
/// when the key is bound).
struct PartitionSpec {
  enum class Kind { kHash, kRange };
  Kind kind = Kind::kHash;
  /// View-head position of the partition key (resolved from the attribute
  /// name at definition time).
  size_t key_position = 0;
  size_t shards = 1;
  /// kRange only: `shards - 1` strictly ascending upper-exclusive split
  /// points. Shard i serves bounds[i-1] <= v < bounds[i]; shard 0 takes
  /// everything below bounds[0], the last shard everything from
  /// bounds[shards-2] up.
  std::vector<engine::Value> bounds;

  bool partitioned() const { return shards > 1; }
  /// Which shard owns a partition-key value.
  size_t ShardOf(const engine::Value& v) const;
};

/// Per-shard placement state: the shard's replica set plus its own write
/// epoch. Epochs are per shard so a write routed to one shard cannot make
/// replicas of untouched shards look stale.
struct ShardState {
  std::vector<ReplicaPlacement> replicas;
  uint64_t write_epoch = 0;

  size_t replica_count() const { return replicas.empty() ? 1 : replicas.size(); }
  bool replica_available(size_t idx) const {
    if (idx >= replicas.size()) return false;
    const ReplicaPlacement& r = replicas[idx];
    return !r.rebuilding && r.fresh(write_epoch);
  }
};

/// A storage descriptor sd(Sk, Di/Fj) — the paper's §III artifact. The
/// *what* is the LAV view definition (a CQ over the application dataset's
/// pivot relations); the *where* names the store and the container inside
/// it; the supported access operations follow from the store kind and the
/// view's access-pattern adornments.
struct StorageDescriptor {
  /// Fragment name == view head relation name (e.g. "F_cart_by_user").
  pacb::ViewDefinition view;
  /// Which registered store holds this fragment (the *primary* replica;
  /// kept mirrored with replicas[0] so single-copy code keeps working).
  std::string store_name;
  /// Container within the store: table / collection / relation / core
  /// name. Defaults to the fragment name at registration.
  std::string container;
  /// The fragment's replica set (K placements). RegisterFragment
  /// normalizes it so replicas[0] always mirrors store_name/container;
  /// an empty vector on input means "unreplicated" (K=1).
  std::vector<ReplicaPlacement> replicas;
  /// Bumped once per logical mutation of the fragment's contents;
  /// replicas whose epoch lags are stale and excluded from routing.
  uint64_t write_epoch = 0;
  FragmentStatistics stats;
  /// Positions whose values are nested lists (set at materialization).
  /// Stores without a native collection type (relational, text keys)
  /// persist them as JSON text; readers must parse them back.
  std::vector<bool> list_column;
  /// Extra positions to build secondary indexes on at materialization
  /// (beyond the input-adorned ones). For relational/document fragments
  /// each position gets its own index; for parallel fragments the set
  /// forms one composite index when no input adornments exist.
  std::vector<size_t> index_positions;
  /// Planner visibility (see FragmentLifecycle).
  FragmentLifecycle lifecycle = FragmentLifecycle::kActive;
  /// Partitioning layout. `partition.shards == 1` (the default) means the
  /// fragment lives whole in `replicas` above and `shards` stays empty.
  /// When partitioned, `shards` holds one ShardState per shard
  /// (RegisterFragment normalizes containers to "<frag>#p<i>", replicated
  /// shard siblings to "<frag>#p<i>#r<j>") and the legacy
  /// store_name/container/replicas/write_epoch fields are inert
  /// placeholders kept only so single-copy code paths stay type-safe.
  PartitionSpec partition;
  std::vector<ShardState> shards;

  const std::string& name() const { return view.name(); }
  bool is_shadow() const { return lifecycle == FragmentLifecycle::kShadow; }
  bool partitioned() const { return partition.partitioned(); }
  size_t shard_count() const { return partitioned() ? partition.shards : 1; }

  /// Replica count (1 for a legacy unreplicated descriptor).
  size_t replica_count() const {
    return replicas.empty() ? 1 : replicas.size();
  }
  /// True when `idx` names a replica that routing may serve from: not
  /// mid-rebuild and caught up with the write epoch.
  bool replica_available(size_t idx) const {
    if (replicas.empty()) return idx == 0;
    if (idx >= replicas.size()) return false;
    const ReplicaPlacement& r = replicas[idx];
    return !r.rebuilding && r.fresh(write_epoch);
  }
};

/// The Storage Descriptor Manager: datasets (pivot schemas + constraints),
/// registered stores, and fragment descriptors.
class Catalog {
 public:
  Catalog() = default;

  /// Merges a dataset's pivot schema (relations + constraints).
  Status RegisterDatasetSchema(const pivot::Schema& schema);

  /// Registers a DMS instance. Exactly one store pointer must be set and
  /// must match `kind`.
  Status RegisterStore(StoreHandle handle);

  Result<const StoreHandle*> GetStore(const std::string& name) const;

  /// Registers a fragment descriptor; the view's head relation name must
  /// be fresh, the store known, and the view body over dataset relations.
  Status RegisterFragment(StorageDescriptor descriptor);

  Status DropFragment(const std::string& name);

  Result<const StorageDescriptor*> GetFragment(const std::string& name) const;
  Result<StorageDescriptor*> GetMutableFragment(const std::string& name);

  const std::map<std::string, StorageDescriptor>& fragments() const {
    return fragments_;
  }
  const std::map<std::string, StoreHandle>& stores() const { return stores_; }
  const pivot::Schema& dataset_schema() const { return dataset_schema_; }

  /// All *active* view definitions, for the rewriter. Shadow fragments
  /// (mid-migration backfill targets) are invisible to planning until
  /// their cutover activates them.
  std::vector<pacb::ViewDefinition> AllViews() const;

  /// Human-readable inventory (demo step 1: "view their specification").
  std::string ToString() const;

 private:
  pivot::Schema dataset_schema_;
  std::map<std::string, StoreHandle> stores_;
  std::map<std::string, StorageDescriptor> fragments_;
};

/// Stored column names of a fragment's physical layout: the view head
/// variable names ('$' stripped; h<i> fallback; duplicates suffixed).
/// Shared by the materializer (which creates containers) and the
/// translator (which queries them).
std::vector<std::string> FragmentColumnNames(const pacb::ViewDefinition& view);

}  // namespace estocada::catalog

#endif  // ESTOCADA_CATALOG_CATALOG_H_
