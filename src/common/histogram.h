#ifndef ESTOCADA_COMMON_HISTOGRAM_H_
#define ESTOCADA_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace estocada {

/// Lock-free latency histogram with geometrically spaced buckets, built for
/// the serving runtime's per-query timings: many writer threads call
/// `Record` concurrently (one relaxed atomic increment each), readers take
/// approximate snapshots for percentile reports. Values are microseconds;
/// the bucket grid spans 0.1 us .. ~7 minutes with ~12% resolution, which
/// is plenty for p50/p95/p99 reporting.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one observation (clamped into the bucket range). Thread-safe.
  void Record(double micros);

  /// Number of recorded observations.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Consistent-enough copy of the counters for reporting. Concurrent
  /// Record calls may or may not be included; never tears a bucket.
  struct Snapshot {
    uint64_t count = 0;
    double mean_micros = 0;
    std::vector<uint64_t> buckets;

    /// Value (micros) below which a `q` fraction of observations fall,
    /// interpolated within the winning bucket. q in [0, 1].
    double Quantile(double q) const;

    /// "n=1200 mean=84.2us p50=61.0us p95=210.4us p99=402.8us".
    std::string ToString() const;
  };
  Snapshot snapshot() const;

  /// Shorthand: quantile over a fresh snapshot.
  double Quantile(double q) const { return snapshot().Quantile(q); }

  /// Resets every counter to zero (not atomic w.r.t. concurrent Records;
  /// callers quiesce writers first, e.g. between benchmark phases).
  void Reset();

  /// Lower bound (micros) of bucket `i` — exposed for tests.
  static double BucketLowerBound(size_t i);
  static constexpr size_t kNumBuckets = 192;

 private:
  static size_t BucketIndex(double micros);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  /// Sum kept in nanoseconds so it fits an integer atomic.
  std::atomic<uint64_t> sum_nanos_{0};
};

}  // namespace estocada

#endif  // ESTOCADA_COMMON_HISTOGRAM_H_
