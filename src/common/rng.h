#ifndef ESTOCADA_COMMON_RNG_H_
#define ESTOCADA_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace estocada {

/// Deterministic pseudo-random generator (xoshiro256**). Every workload
/// generator and property test seeds one of these explicitly so runs are
/// reproducible; we deliberately avoid std::random_device / global state.
class Rng {
 public:
  /// Seeds via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p);

  /// Zipf-distributed rank in [0, n) with skew parameter `theta` in (0, 1).
  /// Uses the standard inverse-CDF approximation (Gray et al., SIGMOD'94),
  /// the textbook generator for skewed key popularity in storage benchmarks.
  uint64_t Zipf(uint64_t n, double theta);

  /// Random lowercase ASCII string of length `len`.
  std::string AlphaString(size_t len);

  /// Picks a uniformly random element of `v` (must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_[4];
};

}  // namespace estocada

#endif  // ESTOCADA_COMMON_RNG_H_
