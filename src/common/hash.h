#ifndef ESTOCADA_COMMON_HASH_H_
#define ESTOCADA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace estocada {

/// FNV-1a 64-bit over raw bytes; stable across platforms so hash-partitioned
/// stores produce deterministic layouts.
inline uint64_t FnvHash64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// boost-style hash combiner for building composite hashes.
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace estocada

#endif  // ESTOCADA_COMMON_HASH_H_
