#include "common/histogram.h"

#include <cmath>
#include <cstdio>

namespace estocada {

namespace {
/// Geometric grid: bucket i covers [kMin * kRatio^i, kMin * kRatio^(i+1)).
constexpr double kMinMicros = 0.1;
constexpr double kRatio = 1.12;
}  // namespace

LatencyHistogram::LatencyHistogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(double micros) {
  if (!(micros > kMinMicros)) return 0;
  double idx = std::log(micros / kMinMicros) / std::log(kRatio);
  if (idx >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

double LatencyHistogram::BucketLowerBound(size_t i) {
  return kMinMicros * std::pow(kRatio, static_cast<double>(i));
}

void LatencyHistogram::Record(double micros) {
  if (micros < 0) micros = 0;
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(micros * 1000.0),
                       std::memory_order_relaxed);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(kNumBuckets);
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += s.buckets[i];
  }
  s.count = total;
  if (total > 0) {
    s.mean_micros = static_cast<double>(
                        sum_nanos_.load(std::memory_order_relaxed)) /
                    1000.0 / static_cast<double>(total);
  }
  return s;
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      // Linear interpolation within the bucket.
      double fraction = buckets[i] == 0
                            ? 0
                            : (target - before) / static_cast<double>(buckets[i]);
      if (fraction < 0) fraction = 0;
      double lo = BucketLowerBound(i);
      double hi = BucketLowerBound(i + 1);
      return lo + fraction * (hi - lo);
    }
  }
  return BucketLowerBound(buckets.size());
}

std::string LatencyHistogram::Snapshot::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus",
                static_cast<unsigned long long>(count), mean_micros,
                Quantile(0.50), Quantile(0.95), Quantile(0.99));
  return buf;
}

}  // namespace estocada
