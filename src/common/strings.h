#ifndef ESTOCADA_COMMON_STRINGS_H_
#define ESTOCADA_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace estocada {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins the string forms of a range with `sep` between elements. Elements
/// are rendered via operator<<.
template <typename Range>
std::string StrJoin(const Range& range, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << sep;
    first = false;
    os << item;
  }
  return os.str();
}

/// Like StrJoin but applies `fn` to each element to produce its text.
template <typename Range, typename Fn>
std::string StrJoinMapped(const Range& range, std::string_view sep, Fn fn) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << sep;
    first = false;
    os << fn(item);
  }
  return os.str();
}

/// Concatenates the stream renderings of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True iff `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string AsciiLower(std::string_view s);

}  // namespace estocada

#endif  // ESTOCADA_COMMON_STRINGS_H_
