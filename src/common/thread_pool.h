#ifndef ESTOCADA_COMMON_THREAD_POOL_H_
#define ESTOCADA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace estocada {

/// Fixed-size worker pool used by the parallel (Spark stand-in) store for
/// partition-parallel scans. Tasks are void() closures; `WaitIdle` provides
/// a barrier so callers can treat a batch of submissions as one bulk op.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace estocada

#endif  // ESTOCADA_COMMON_THREAD_POOL_H_
