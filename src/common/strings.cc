#include "common/strings.h"

#include <cctype>

namespace estocada {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace estocada
