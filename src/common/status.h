#ifndef ESTOCADA_COMMON_STATUS_H_
#define ESTOCADA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace estocada {

/// Error categories used across the system. Mirrors the Arrow/RocksDB
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kNotFound,          ///< A named entity (table, fragment, key...) is absent.
  kAlreadyExists,     ///< Attempt to create an entity that already exists.
  kOutOfRange,        ///< Index/position outside the valid domain.
  kUnsupported,       ///< Operation not supported by this store/data model.
  kParseError,        ///< Malformed query / JSON / expression text.
  kChaseFailure,      ///< The chase failed (EGD equated distinct constants).
  kNoRewriting,       ///< No feasible rewriting exists for the query.
  kUnavailable,       ///< Transient store/backend failure; retry may succeed.
  kFailedPrecondition,  ///< System state does not admit the operation.
  kAborted,           ///< Operation abandoned on request (not retryable).
  kInternal,          ///< Invariant violation; indicates a bug.
};

/// Human-readable name for a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Exception-free error propagation type. A `Status` is either OK or carries
/// a code and message. The style guides in force ban exceptions, so every
/// fallible API in this codebase returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ChaseFailure(std::string msg) {
    return Status(StatusCode::kChaseFailure, std::move(msg));
  }
  static Status NoRewriting(std::string msg) {
    return Status(StatusCode::kNoRewriting, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller. Usable in functions returning
/// `Status` or `Result<T>` (the latter converts implicitly).
#define ESTOCADA_RETURN_NOT_OK(expr)                  \
  do {                                                \
    ::estocada::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (false)

}  // namespace estocada

#endif  // ESTOCADA_COMMON_STATUS_H_
