#include "common/status.h"

namespace estocada {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kChaseFailure:
      return "ChaseFailure";
    case StatusCode::kNoRewriting:
      return "NoRewriting";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace estocada
