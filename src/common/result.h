#ifndef ESTOCADA_COMMON_RESULT_H_
#define ESTOCADA_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace estocada {

/// `Result<T>` holds either a value of type `T` or a non-OK `Status`.
/// Modeled on arrow::Result. Use `ESTOCADA_ASSIGN_OR_RETURN` to unwrap.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, like arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error and degrades to an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::holds_alternative<Status>(repr_) &&
        std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status: OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors; must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `expr` (a Result<T>), propagates the error, else binds the
/// value to `lhs`. `lhs` may include a declaration, e.g.
///   ESTOCADA_ASSIGN_OR_RETURN(auto table, store.GetTable("users"));
#define ESTOCADA_CONCAT_IMPL(a, b) a##b
#define ESTOCADA_CONCAT(a, b) ESTOCADA_CONCAT_IMPL(a, b)
#define ESTOCADA_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto ESTOCADA_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!ESTOCADA_CONCAT(_res_, __LINE__).ok())                       \
    return ESTOCADA_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(ESTOCADA_CONCAT(_res_, __LINE__)).value()

}  // namespace estocada

#endif  // ESTOCADA_COMMON_RESULT_H_
