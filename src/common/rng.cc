#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace estocada {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) { return NextDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  // Gray et al. approximation; zeta terms computed with the closed-form
  // approximation of the generalized harmonic number to keep it O(1).
  auto zeta_approx = [theta](uint64_t m) {
    // H_{m,theta} ~ m^{1-theta}/(1-theta) + 0.577... (good enough for the
    // shape properties benchmarks rely on).
    return std::pow(static_cast<double>(m), 1.0 - theta) / (1.0 - theta) +
           0.5772156649;
  };
  const double zetan = zeta_approx(n);
  const double alpha = 1.0 / (1.0 - theta);
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - zeta_approx(2) / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  if (rank >= n) rank = n - 1;
  return rank;
}

std::string Rng::AlphaString(size_t len) {
  std::string s(len, 'a');
  for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
  return s;
}

}  // namespace estocada
