#ifndef ESTOCADA_ENCODING_ENCODINGS_H_
#define ESTOCADA_ENCODING_ENCODINGS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "json/json.h"
#include "pivot/atom.h"
#include "pivot/schema.h"

namespace estocada::encoding {

/// Builders for the pivot-model encodings of each application/storage data
/// model (paper §III "Pivot model with constraints"). Each returns a
/// Schema fragment (relations + constraints) that callers Merge into the
/// global pivot schema.

/// Relational model: one pivot relation per table, named
/// "<dataset>.<table>", plus one key EGD per primary-key position pair.
Result<pivot::Schema> RelationalEncoding(
    const std::string& dataset, const std::string& table,
    const std::vector<std::string>& columns,
    const std::vector<std::string>& primary_key);

/// Key-value model: "<dataset>.<collection>" (key, value) with the key
/// input-adorned (the paper's access-pattern restriction) and a key EGD.
Result<pivot::Schema> KeyValueEncoding(const std::string& dataset,
                                       const std::string& collection);

/// Document model, *path-relation* form (delegable to the document
/// store): one relation "<dataset>.<collection>.<path>"(docID, value) per
/// registered path, plus "<dataset>.<collection>.doc"(docID). Constraints:
/// every path fact implies the doc fact; scalar paths are functional in
/// docID (EGD) when `scalar` is set.
struct DocumentPath {
  std::string path;    ///< Dotted JSON path ("user.address.city").
  bool scalar = true;  ///< One value per document (vs array/multikey).
};
Result<pivot::Schema> DocumentEncoding(const std::string& dataset,
                                       const std::string& collection,
                                       const std::vector<DocumentPath>& paths);

/// Document model, *generic tree* form — the Node/Child/Desc/Tag/Val
/// encoding the paper describes verbatim, with its axioms:
///   Child(p,c) → Desc(p,c);  Desc(a,b), Child(b,c) → Desc(a,c);
///   Child(p,c), Child(q,c) → p = q   (one parent);
///   Tag(n,t1), Tag(n,t2) → t1 = t2   (one tag);
///   Root(d,r), Child(p,r) → ⊥ is approximated by: roots have one doc;
///   Doc(d), Root(d,r) pairs are functional.
/// Relation names are prefixed "<dataset>.", e.g. "cat.Child".
Result<pivot::Schema> DocumentTreeEncoding(const std::string& dataset);

/// Shreds a JSON document into generic-tree pivot facts (Doc, Root,
/// Child, Desc, Tag, Val, ArrayElem) for `DocumentTreeEncoding`; node ids
/// are "<doc_id>#<n>" strings in pre-order. Desc facts are *not* emitted
/// (they follow from the axioms via the chase); callers chase when they
/// need them.
std::vector<pivot::Atom> ShredDocument(const std::string& dataset,
                                       const std::string& doc_id,
                                       const json::JsonValue& doc);

/// Nested-relation model (parallel store): "<dataset>.<relation>" with
/// the given column names; nested collection columns hold list values
/// (opaque to the pivot model, traversed by the engine's Unnest).
Result<pivot::Schema> NestedEncoding(const std::string& dataset,
                                     const std::string& relation,
                                     const std::vector<std::string>& columns,
                                     const std::vector<std::string>& key = {});

/// Full-text model: "<dataset>.<core>.contains"(docID, term) with the
/// term input-adorned (a term must be supplied to search).
Result<pivot::Schema> TextEncoding(const std::string& dataset,
                                   const std::string& core);

/// Property-graph model: pivot relations
///   "<dataset>.Node"(id, label)
///   "<dataset>.Edge"(src, label, dst)
///   "<dataset>.NodeProp"(id, key, value)
///   "<dataset>.EdgeProp"(src, label, dst, key, value)
/// plus bounded-reachability relations "<dataset>.Reach<j>"(src, dst) for
/// j = 1..max_hops with the axioms
///   Edge(s,l,d) → Reach1(s,d)
///   Reach_j(a,b), Edge(b,l,c) → Reach_{j+1}(a,c)
///   Reach_j(a,b) → Reach_{j+1}(a,b)
/// so Reach_j means "reachable in at most j hops". The fixed hop bound
/// stratifies what would otherwise be a recursive transitive closure:
/// the TGD set is weakly acyclic and the chase terminates under the
/// existing bound. Key EGDs: a node has one label; NodeProp values are
/// functional in (id, key); EdgeProp values in (src, label, dst, key).
Result<pivot::Schema> GraphEncoding(const std::string& dataset,
                                    size_t max_hops);

/// A property graph to shred: labeled nodes and edges, each with an
/// optional property map.
struct GraphData {
  struct Node {
    std::string id;
    std::string label;
    std::vector<std::pair<std::string, pivot::Constant>> props;
  };
  struct Edge {
    std::string src;
    std::string label;
    std::string dst;
    std::vector<std::pair<std::string, pivot::Constant>> props;
  };
  std::vector<Node> nodes;
  std::vector<Edge> edges;
};

/// Shreds a property graph into pivot facts (Node, Edge, NodeProp,
/// EdgeProp) for `GraphEncoding`. Reach facts are *not* emitted (they
/// follow from the axioms via the chase); callers chase — or
/// BFS-complete — when they need them.
std::vector<pivot::Atom> ShredGraph(const std::string& dataset,
                                    const GraphData& graph);

}  // namespace estocada::encoding

#endif  // ESTOCADA_ENCODING_ENCODINGS_H_
