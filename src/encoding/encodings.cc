#include "encoding/encodings.h"

#include "common/strings.h"
#include "pivot/parser.h"

namespace estocada::encoding {

using pivot::Adornment;
using pivot::Atom;
using pivot::Dependency;
using pivot::RelationSignature;
using pivot::Schema;
using pivot::Term;

namespace {

/// Adds an EGD "R(..k.., a), R(..k.., b) -> a = b" stating that position
/// `dependent` is functionally determined by positions `determinants`.
void AddFunctionalEgd(Schema* schema, const std::string& relation,
                      size_t arity, const std::vector<size_t>& determinants,
                      size_t dependent, const std::string& label) {
  pivot::Egd egd;
  egd.label = label;
  Atom a1(relation, {});
  Atom a2(relation, {});
  for (size_t i = 0; i < arity; ++i) {
    bool is_det = false;
    for (size_t d : determinants) {
      if (d == i) is_det = true;
    }
    if (is_det) {
      a1.terms.push_back(Term::Var(StrCat("k", i)));
      a2.terms.push_back(Term::Var(StrCat("k", i)));
    } else if (i == dependent) {
      a1.terms.push_back(Term::Var("va"));
      a2.terms.push_back(Term::Var("vb"));
    } else {
      a1.terms.push_back(Term::Var(StrCat("xa", i)));
      a2.terms.push_back(Term::Var(StrCat("xb", i)));
    }
  }
  egd.body = {a1, a2};
  egd.left = Term::Var("va");
  egd.right = Term::Var("vb");
  schema->AddDependency(Dependency::FromEgd(std::move(egd)));
}

}  // namespace

Result<Schema> RelationalEncoding(const std::string& dataset,
                                  const std::string& table,
                                  const std::vector<std::string>& columns,
                                  const std::vector<std::string>& primary_key) {
  Schema s;
  RelationSignature sig;
  sig.name = StrCat(dataset, ".", table);
  sig.columns = columns;
  std::vector<size_t> key_positions;
  for (const std::string& pk : primary_key) {
    bool found = false;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == pk) {
        key_positions.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrCat("primary key column '", pk, "' not among the columns of ",
                 sig.name));
    }
  }
  sig.key = key_positions;
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(sig));
  // Key EGDs: every non-key position is functionally determined.
  if (!key_positions.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      bool is_key = false;
      for (size_t k : key_positions) {
        if (k == i) is_key = true;
      }
      if (!is_key) {
        AddFunctionalEgd(&s, sig.name, columns.size(), key_positions, i,
                         StrCat(sig.name, ":key:", columns[i]));
      }
    }
  }
  return s;
}

Result<Schema> KeyValueEncoding(const std::string& dataset,
                                const std::string& collection) {
  Schema s;
  RelationSignature sig;
  sig.name = StrCat(dataset, ".", collection);
  sig.columns = {"key", "value"};
  sig.adornments = {Adornment::kInput, Adornment::kFree};
  sig.key = {0};
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(sig));
  AddFunctionalEgd(&s, sig.name, 2, {0}, 1, StrCat(sig.name, ":key"));
  return s;
}

Result<Schema> DocumentEncoding(const std::string& dataset,
                                const std::string& collection,
                                const std::vector<DocumentPath>& paths) {
  Schema s;
  std::string doc_rel = StrCat(dataset, ".", collection, ".doc");
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(RelationSignature{
      doc_rel, {"docID"}, {Adornment::kFree}, {0}}));
  for (const DocumentPath& p : paths) {
    std::string rel = StrCat(dataset, ".", collection, ".", p.path);
    ESTOCADA_RETURN_NOT_OK(s.AddRelation(RelationSignature{
        rel, {"docID", "value"}, {Adornment::kFree, Adornment::kFree}, {}}));
    // Every path fact implies its document exists.
    pivot::Tgd tgd;
    tgd.label = StrCat(rel, ":doc");
    tgd.body = {Atom(rel, {Term::Var("d"), Term::Var("v")})};
    tgd.head = {Atom(doc_rel, {Term::Var("d")})};
    s.AddDependency(Dependency::FromTgd(std::move(tgd)));
    if (p.scalar) {
      AddFunctionalEgd(&s, rel, 2, {0}, 1, StrCat(rel, ":scalar"));
    }
  }
  return s;
}

Result<Schema> DocumentTreeEncoding(const std::string& dataset) {
  Schema s;
  auto rel = [&dataset](const char* r) { return StrCat(dataset, ".", r); };
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(rel("Doc"), 1));
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(rel("Root"), 2));   // (docID, nodeID)
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(rel("Child"), 2));  // (parent, child)
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(rel("Desc"), 2));   // (anc, desc)
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(rel("Tag"), 2));    // (node, tag)
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(rel("Val"), 2));    // (node, value)
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(rel("ArrayElem"), 3));  // (node, idx, elem)
  std::string axioms = StrCat(
      // Child is contained in Desc; Desc is transitively closed by Child.
      rel("Child"), "(p, c) -> ", rel("Desc"), "(p, c)\n",              //
      rel("Desc"), "(a, b), ", rel("Child"), "(b, c) -> ", rel("Desc"),
      "(a, c)\n",
      // Every node has at most one parent and one tag; one root per doc;
      // one value per node.
      rel("Child"), "(p, c), ", rel("Child"), "(q, c) -> p = q\n",      //
      rel("Tag"), "(n, t1), ", rel("Tag"), "(n, t2) -> t1 = t2\n",      //
      rel("Root"), "(d, r1), ", rel("Root"), "(d, r2) -> r1 = r2\n",    //
      rel("Val"), "(n, v1), ", rel("Val"), "(n, v2) -> v1 = v2\n",      //
      // Roots belong to documents.
      rel("Root"), "(d, r) -> ", rel("Doc"), "(d)\n");
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Dependency> deps,
                            pivot::ParseDependencies(axioms));
  for (Dependency& d : deps) s.AddDependency(std::move(d));
  return s;
}

namespace {

void ShredValue(const std::string& dataset, const std::string& node_id,
                const json::JsonValue& v, std::vector<Atom>* out,
                uint64_t* counter, const std::string& doc_id) {
  auto rel = [&dataset](const char* r) { return StrCat(dataset, ".", r); };
  switch (v.kind()) {
    case json::JsonKind::kObject:
      for (const auto& [key, member] : v.object()) {
        std::string child_id = StrCat(doc_id, "#", (*counter)++);
        out->push_back(Atom(rel("Child"),
                            {Term::Str(node_id), Term::Str(child_id)}));
        out->push_back(Atom(rel("Tag"), {Term::Str(child_id), Term::Str(key)}));
        ShredValue(dataset, child_id, member, out, counter, doc_id);
      }
      break;
    case json::JsonKind::kArray: {
      int64_t idx = 0;
      for (const auto& elem : v.array()) {
        std::string child_id = StrCat(doc_id, "#", (*counter)++);
        out->push_back(Atom(rel("Child"),
                            {Term::Str(node_id), Term::Str(child_id)}));
        out->push_back(Atom(
            rel("ArrayElem"),
            {Term::Str(node_id), Term::Int(idx++), Term::Str(child_id)}));
        ShredValue(dataset, child_id, elem, out, counter, doc_id);
      }
      break;
    }
    default: {
      // Scalar: attach the value.
      pivot::Constant c;
      switch (v.kind()) {
        case json::JsonKind::kNull:
          c = pivot::Constant::Null();
          break;
        case json::JsonKind::kBool:
          c = pivot::Constant::Bool(v.bool_value());
          break;
        case json::JsonKind::kInt:
          c = pivot::Constant::Int(v.int_value());
          break;
        case json::JsonKind::kDouble:
          c = pivot::Constant::Real(v.double_value());
          break;
        default:
          c = pivot::Constant::Str(v.string_value());
          break;
      }
      out->push_back(Atom(StrCat(dataset, ".", "Val"),
                          {Term::Str(node_id), Term::Const(std::move(c))}));
      break;
    }
  }
}

}  // namespace

std::vector<Atom> ShredDocument(const std::string& dataset,
                                const std::string& doc_id,
                                const json::JsonValue& doc) {
  std::vector<Atom> out;
  auto rel = [&dataset](const char* r) { return StrCat(dataset, ".", r); };
  out.push_back(Atom(rel("Doc"), {Term::Str(doc_id)}));
  uint64_t counter = 0;
  std::string root_id = StrCat(doc_id, "#", counter++);
  out.push_back(Atom(rel("Root"), {Term::Str(doc_id), Term::Str(root_id)}));
  ShredValue(dataset, root_id, doc, &out, &counter, doc_id);
  return out;
}

Result<Schema> NestedEncoding(const std::string& dataset,
                              const std::string& relation,
                              const std::vector<std::string>& columns,
                              const std::vector<std::string>& key) {
  Schema s;
  RelationSignature sig;
  sig.name = StrCat(dataset, ".", relation);
  sig.columns = columns;
  std::vector<size_t> key_positions;
  for (const std::string& k : key) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == k) key_positions.push_back(i);
    }
  }
  sig.key = key_positions;
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(sig));
  if (!key_positions.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      bool is_key = false;
      for (size_t k : key_positions) {
        if (k == i) is_key = true;
      }
      if (!is_key) {
        AddFunctionalEgd(&s, sig.name, columns.size(), key_positions, i,
                         StrCat(sig.name, ":key:", columns[i]));
      }
    }
  }
  return s;
}

Result<Schema> GraphEncoding(const std::string& dataset, size_t max_hops) {
  if (max_hops < 1) {
    return Status::InvalidArgument("graph encoding needs max_hops >= 1");
  }
  Schema s;
  auto rel = [&dataset](const std::string& r) {
    return StrCat(dataset, ".", r);
  };
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(RelationSignature{
      rel("Node"), {"id", "label"}, {}, {0}}));
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(RelationSignature{
      rel("Edge"), {"src", "label", "dst"}, {}, {}}));
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(RelationSignature{
      rel("NodeProp"), {"id", "key", "value"}, {}, {0, 1}}));
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(RelationSignature{
      rel("EdgeProp"), {"src", "label", "dst", "key", "value"}, {}, {}}));
  for (size_t j = 1; j <= max_hops; ++j) {
    ESTOCADA_RETURN_NOT_OK(s.AddRelation(RelationSignature{
        rel(StrCat("Reach", j)), {"src", "dst"}, {}, {}}));
  }
  // Bounded-reachability axioms: one stratum per hop count, so the
  // "closure" is a finite TGD chain, not a recursive rule — weakly
  // acyclic, hence chase-terminating.
  std::string axioms =
      StrCat(rel("Edge"), "(s, l, d) -> ", rel("Reach1"), "(s, d)\n");
  for (size_t j = 1; j < max_hops; ++j) {
    axioms += StrCat(rel(StrCat("Reach", j)), "(a, b), ", rel("Edge"),
                     "(b, l, c) -> ", rel(StrCat("Reach", j + 1)), "(a, c)\n");
    axioms += StrCat(rel(StrCat("Reach", j)), "(a, b) -> ",
                     rel(StrCat("Reach", j + 1)), "(a, b)\n");
  }
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Dependency> deps,
                            pivot::ParseDependencies(axioms));
  for (Dependency& d : deps) s.AddDependency(std::move(d));
  // Key EGDs.
  AddFunctionalEgd(&s, rel("Node"), 2, {0}, 1, StrCat(rel("Node"), ":label"));
  AddFunctionalEgd(&s, rel("NodeProp"), 3, {0, 1}, 2,
                   StrCat(rel("NodeProp"), ":value"));
  AddFunctionalEgd(&s, rel("EdgeProp"), 5, {0, 1, 2, 3}, 4,
                   StrCat(rel("EdgeProp"), ":value"));
  return s;
}

std::vector<Atom> ShredGraph(const std::string& dataset,
                             const GraphData& graph) {
  std::vector<Atom> out;
  auto rel = [&dataset](const char* r) { return StrCat(dataset, ".", r); };
  for (const GraphData::Node& n : graph.nodes) {
    out.push_back(
        Atom(rel("Node"), {Term::Str(n.id), Term::Str(n.label)}));
    for (const auto& [key, value] : n.props) {
      out.push_back(Atom(rel("NodeProp"), {Term::Str(n.id), Term::Str(key),
                                           Term::Const(value)}));
    }
  }
  for (const GraphData::Edge& e : graph.edges) {
    out.push_back(Atom(rel("Edge"), {Term::Str(e.src), Term::Str(e.label),
                                     Term::Str(e.dst)}));
    for (const auto& [key, value] : e.props) {
      out.push_back(Atom(rel("EdgeProp"),
                         {Term::Str(e.src), Term::Str(e.label),
                          Term::Str(e.dst), Term::Str(key),
                          Term::Const(value)}));
    }
  }
  return out;
}

Result<Schema> TextEncoding(const std::string& dataset,
                            const std::string& core) {
  Schema s;
  RelationSignature sig;
  sig.name = StrCat(dataset, ".", core, ".contains");
  sig.columns = {"docID", "term"};
  sig.adornments = {Adornment::kFree, Adornment::kInput};
  ESTOCADA_RETURN_NOT_OK(s.AddRelation(sig));
  return s;
}

}  // namespace estocada::encoding
