#ifndef ESTOCADA_REWRITING_CQ_EVAL_H_
#define ESTOCADA_REWRITING_CQ_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/operator.h"
#include "engine/value.h"
#include "pivot/query.h"

namespace estocada::rewriting {

/// One staged (in-memory, pivot-level) relation: the application dataset's
/// ground truth from which fragments are materialized.
struct StagingRelation {
  std::vector<std::string> columns;
  std::vector<engine::Row> rows;
};

/// Dataset relation name -> staged rows.
using StagingData = std::map<std::string, StagingRelation>;

/// Compiles a conjunctive query over staged relations into an engine
/// operator tree (hash joins in greedy bound-first order, filters for
/// constants and repeated variables, projection to the head).
/// `parameters` supplies values for '$'-prefixed variables. The result
/// applies set semantics (Distinct) when `distinct` is set.
Result<engine::OperatorPtr> CompileCqOverStaging(
    const pivot::ConjunctiveQuery& query, const StagingData& staging,
    const std::map<std::string, engine::Value>& parameters = {},
    bool distinct = true);

/// Convenience: compile + collect.
Result<std::vector<engine::Row>> EvaluateCqOverStaging(
    const pivot::ConjunctiveQuery& query, const StagingData& staging,
    const std::map<std::string, engine::Value>& parameters = {},
    bool distinct = true);

}  // namespace estocada::rewriting

#endif  // ESTOCADA_REWRITING_CQ_EVAL_H_
