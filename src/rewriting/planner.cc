#include "rewriting/planner.h"

#include <algorithm>

#include "common/strings.h"

namespace estocada::rewriting {

std::vector<std::string> RewritingStores(
    const catalog::Catalog& catalog,
    const pivot::ConjunctiveQuery& rewriting) {
  std::vector<std::string> out;
  for (const pivot::Atom& atom : rewriting.body) {
    auto fragment = catalog.GetFragment(atom.relation);
    if (!fragment.ok()) continue;
    if ((*fragment)->replicas.empty()) {
      out.push_back((*fragment)->store_name);
    } else {
      for (const catalog::ReplicaPlacement& r : (*fragment)->replicas) {
        out.push_back(r.store_name);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Planner::Planner(const catalog::Catalog* catalog,
                 const pacb::Rewriter* rewriter)
    : catalog_(catalog), rewriter_(rewriter) {}

Result<PlanSet> Planner::PlanQuery(
    const pivot::ConjunctiveQuery& query,
    const std::map<std::string, engine::Value>& parameters,
    const pacb::RewriterOptions& options,
    const PlanConstraints& constraints) const {
  ESTOCADA_ASSIGN_OR_RETURN(pacb::RewritingResult rewriting_result,
                            rewriter_->Rewrite(query, options));
  if (rewriting_result.rewritings.empty()) {
    return Status::NoRewriting(
        StrCat("no rewriting over the registered fragments answers ",
               query.ToString()));
  }
  return PlanRewritings(std::move(rewriting_result), parameters, constraints);
}

Result<PlanSet> Planner::PlanRewritings(
    pacb::RewritingResult rewriting_result,
    const std::map<std::string, engine::Value>& parameters,
    const PlanConstraints& constraints) const {
  PlanSet out;
  out.rewriting_result = std::move(rewriting_result);
  out.parameters = parameters;
  out.constraints = constraints;
  Translator translator(catalog_);
  Status last_error = Status::OK();
  size_t excluded = 0;
  // A lone candidate is the winner by definition: build it directly
  // instead of estimating first (one translator walk, not two).
  const bool single = out.rewriting_result.rewritings.size() == 1;
  for (const pacb::Rewriting& rw : out.rewriting_result.rewritings) {
    // Exclusions are applied by routing inside the translator, per
    // fragment: a fragment on an excluded store survives whenever a
    // sibling replica can serve it. Only a rewriting with some fragment
    // left placement-less drops out (kUnavailable). Candidates are
    // *estimated* only — a full operator tree is built just for the
    // winner below.
    auto plan = single ? translator.Plan(rw.query, parameters, constraints)
                       : translator.Estimate(rw.query, parameters,
                                             constraints);
    if (!plan.ok()) {
      if (plan.status().code() == StatusCode::kUnavailable) {
        ++excluded;
        continue;
      }
      // An individual rewriting can be unplannable (e.g. unbound
      // parameter for this call); remember and try the others.
      last_error = plan.status();
      continue;
    }
    out.plans.push_back(std::move(*plan));
  }
  if (out.plans.empty()) {
    if (excluded > 0) {
      // Rewritings existed but every one touched an open-circuit store:
      // distinct from kNoRewriting so callers fall back to the staging
      // area instead of surfacing a planning error.
      return Status::Unavailable(
          StrCat("all ", excluded,
                 " candidate rewriting(s) read from unavailable stores"));
    }
    return last_error.ok()
               ? Status::NoRewriting("no executable plan for any rewriting")
               : last_error;
  }
  out.best = 0;
  for (size_t i = 1; i < out.plans.size(); ++i) {
    if (out.plans[i].estimated_cost <
        out.plans[out.best].estimated_cost) {
      out.best = i;
    }
  }
  // Build the winner for real. Estimate and Plan share one code path, so
  // a rewriting that estimated cleanly cannot fail to build.
  if (!single) {
    ESTOCADA_ASSIGN_OR_RETURN(
        out.plans[out.best],
        translator.Plan(out.plans[out.best].rewriting, parameters,
                        constraints));
  }
  return out;
}

}  // namespace estocada::rewriting
