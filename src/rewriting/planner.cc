#include "rewriting/planner.h"

#include "common/strings.h"

namespace estocada::rewriting {

Planner::Planner(const catalog::Catalog* catalog,
                 const pacb::Rewriter* rewriter)
    : catalog_(catalog), rewriter_(rewriter) {}

Result<PlanSet> Planner::PlanQuery(
    const pivot::ConjunctiveQuery& query,
    const std::map<std::string, engine::Value>& parameters,
    const pacb::RewriterOptions& options) const {
  ESTOCADA_ASSIGN_OR_RETURN(pacb::RewritingResult rewriting_result,
                            rewriter_->Rewrite(query, options));
  if (rewriting_result.rewritings.empty()) {
    return Status::NoRewriting(
        StrCat("no rewriting over the registered fragments answers ",
               query.ToString()));
  }
  return PlanRewritings(std::move(rewriting_result), parameters);
}

Result<PlanSet> Planner::PlanRewritings(
    pacb::RewritingResult rewriting_result,
    const std::map<std::string, engine::Value>& parameters) const {
  PlanSet out;
  out.rewriting_result = std::move(rewriting_result);
  Translator translator(catalog_);
  Status last_error = Status::OK();
  for (const pacb::Rewriting& rw : out.rewriting_result.rewritings) {
    auto plan = translator.Plan(rw.query, parameters);
    if (!plan.ok()) {
      // An individual rewriting can be unplannable (e.g. unbound
      // parameter for this call); remember and try the others.
      last_error = plan.status();
      continue;
    }
    out.plans.push_back(std::move(*plan));
  }
  if (out.plans.empty()) {
    return last_error.ok()
               ? Status::NoRewriting("no executable plan for any rewriting")
               : last_error;
  }
  out.best = 0;
  for (size_t i = 1; i < out.plans.size(); ++i) {
    if (out.plans[i].estimated_cost <
        out.plans[out.best].estimated_cost) {
      out.best = i;
    }
  }
  return out;
}

}  // namespace estocada::rewriting
