#ifndef ESTOCADA_REWRITING_MATERIALIZER_H_
#define ESTOCADA_REWRITING_MATERIALIZER_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "rewriting/cq_eval.h"

namespace estocada::rewriting {

/// Materializes a registered fragment: evaluates its view definition over
/// the staged dataset, creates the physical container in the target store
/// (table / collection / relation / core), loads the rows in the store's
/// native layout, builds the indexes implied by the view's access-pattern
/// adornments, and fills in the fragment statistics.
///
/// Physical layouts (documented per DESIGN.md §3):
///  * relational: table named after the container, one column per view
///    head position (named by the head variable, h<i> fallback); list
///    values are stored as JSON text.
///  * key-value:  key = JSON serialization of head position 0; value =
///    JSON array of the whole row.
///  * document:   one JSON document per row: {"_id": "r<N>", "f0": ...}.
///  * parallel:   nested relation of the view arity, hash-partitioned;
///    a composite index over the input-adorned positions when present.
///  * text:       one core document per distinct head-0 value; terms =
///    all head-1 values of that key ("contains" layout).
Status MaterializeFragment(const StagingData& staging,
                           catalog::Catalog* catalog,
                           const std::string& fragment_name);

/// Creates the fragment's *empty* physical container (plus the indexes
/// implied by its adornments and index_positions) without evaluating the
/// view. The online-migration backfill uses this to open a shadow target
/// it then fills in throttled batches via AppendToFragment. Column types
/// stay open (kAny) until rows arrive.
Status CreateFragmentContainer(catalog::Catalog* catalog,
                               const std::string& fragment_name);

/// Appends already-computed view rows to a fragment's physical container
/// in the store's native layout, updating row-count statistics and list-
/// column flags. Text fragments cannot be appended to (per-document
/// postings are immutable): returns kUnsupported — rebuild instead.
Status AppendToFragment(catalog::Catalog* catalog,
                        const std::string& fragment_name,
                        const std::vector<engine::Row>& rows);

/// Reads a fragment's physical container back into pivot-space view rows
/// (the inverse of the per-kind load layouts; relational list columns are
/// parsed back from their JSON text). Order is unspecified and duplicates
/// appended by incremental maintenance are preserved. Text fragments are
/// not reconstructible row-by-row (terms are fused into per-document
/// token streams): returns kUnsupported — use VerifyFragmentAgainstRows.
Result<std::vector<engine::Row>> ReadFragmentRows(
    const catalog::Catalog& catalog, const std::string& fragment_name);

/// Set-compares a fragment's physical content against `expected_rows`
/// (normally the fragment view evaluated over staging — the ground
/// truth). Comparison happens after the store's own serialization round
/// trip, so a correctly loaded fragment always verifies even for values
/// that JSON canonicalizes. Duplicates on either side are ignored (set
/// semantics). Works for all five store kinds, including text (compared
/// in per-document token space). Returns OK iff they match; a
/// kFailedPrecondition status describes the first divergence otherwise.
Status VerifyFragmentAgainstRows(const catalog::Catalog& catalog,
                                 const std::string& fragment_name,
                                 const std::vector<engine::Row>& expected_rows);

/// Drops the fragment's physical container from its store (inverse of
/// materialization), leaving the descriptor in place; used by the advisor
/// when re-organizing. DropFragment on the catalog removes the
/// descriptor.
Status DematerializeFragment(catalog::Catalog* catalog,
                             const std::string& fragment_name);

/// Incremental view maintenance: given one tuple freshly appended to
/// dataset relation `relation` (already present in `staging`), computes
/// each affected fragment's delta with the standard delta rule — for every
/// occurrence of `relation` in the view body, evaluate the body with that
/// atom pinned to the new tuple — and appends the new view rows to the
/// fragment's physical container, updating its statistics.
///
/// Text fragments are rebuilt from scratch (their per-document postings
/// cannot be appended to); deletions are not supported (the paper, too,
/// leaves dynamic reorganization as ongoing work).
Status MaintainFragmentsOnInsert(const StagingData& staging,
                                 catalog::Catalog* catalog,
                                 const std::string& relation,
                                 const engine::Row& new_row);

/// Batch form: one logical update that staged several tuples (e.g. one
/// document's path facts). Deltas are deduplicated across the batch so a
/// view row derivable from several of the new tuples is appended once.
/// Shadow fragments are skipped: the migration engine replays their
/// deltas itself (via MaintainOneFragmentOnInsertBatch) during catch-up.
Status MaintainFragmentsOnInsertBatch(
    const StagingData& staging, catalog::Catalog* catalog,
    const std::vector<std::pair<std::string, engine::Row>>& new_rows);

/// Per-fragment core of the batch maintenance: applies the delta rule for
/// `new_rows` to exactly one fragment (rebuilding it when it lives in a
/// text store). The migration engine's catch-up stage replays captured
/// update deltas through this against its shadow target.
Status MaintainOneFragmentOnInsertBatch(
    const StagingData& staging, catalog::Catalog* catalog,
    const std::string& fragment_name,
    const std::vector<std::pair<std::string, engine::Row>>& new_rows);

}  // namespace estocada::rewriting

#endif  // ESTOCADA_REWRITING_MATERIALIZER_H_
