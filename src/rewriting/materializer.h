#ifndef ESTOCADA_REWRITING_MATERIALIZER_H_
#define ESTOCADA_REWRITING_MATERIALIZER_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "rewriting/cq_eval.h"

namespace estocada::rewriting {

/// Materializes a registered fragment: evaluates its view definition over
/// the staged dataset, creates the physical container in the target store
/// (table / collection / relation / core), loads the rows in the store's
/// native layout, builds the indexes implied by the view's access-pattern
/// adornments, and fills in the fragment statistics.
///
/// Physical layouts (documented per DESIGN.md §3):
///  * relational: table named after the container, one column per view
///    head position (named by the head variable, h<i> fallback); list
///    values are stored as JSON text.
///  * key-value:  key = JSON serialization of head position 0; value =
///    JSON array of the whole row.
///  * document:   one JSON document per row: {"_id": "r<N>", "f0": ...}.
///  * parallel:   nested relation of the view arity, hash-partitioned;
///    a composite index over the input-adorned positions when present.
///  * text:       one core document per distinct head-0 value; terms =
///    all head-1 values of that key ("contains" layout).
Status MaterializeFragment(const StagingData& staging,
                           catalog::Catalog* catalog,
                           const std::string& fragment_name);

/// Drops the fragment's physical container from its store (inverse of
/// materialization), leaving the descriptor in place; used by the advisor
/// when re-organizing. DropFragment on the catalog removes the
/// descriptor.
Status DematerializeFragment(catalog::Catalog* catalog,
                             const std::string& fragment_name);

/// Incremental view maintenance: given one tuple freshly appended to
/// dataset relation `relation` (already present in `staging`), computes
/// each affected fragment's delta with the standard delta rule — for every
/// occurrence of `relation` in the view body, evaluate the body with that
/// atom pinned to the new tuple — and appends the new view rows to the
/// fragment's physical container, updating its statistics.
///
/// Text fragments are rebuilt from scratch (their per-document postings
/// cannot be appended to); deletions are not supported (the paper, too,
/// leaves dynamic reorganization as ongoing work).
Status MaintainFragmentsOnInsert(const StagingData& staging,
                                 catalog::Catalog* catalog,
                                 const std::string& relation,
                                 const engine::Row& new_row);

/// Batch form: one logical update that staged several tuples (e.g. one
/// document's path facts). Deltas are deduplicated across the batch so a
/// view row derivable from several of the new tuples is appended once.
Status MaintainFragmentsOnInsertBatch(
    const StagingData& staging, catalog::Catalog* catalog,
    const std::vector<std::pair<std::string, engine::Row>>& new_rows);

}  // namespace estocada::rewriting

#endif  // ESTOCADA_REWRITING_MATERIALIZER_H_
