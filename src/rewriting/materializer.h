#ifndef ESTOCADA_REWRITING_MATERIALIZER_H_
#define ESTOCADA_REWRITING_MATERIALIZER_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "rewriting/cq_eval.h"

namespace estocada::rewriting {

/// Materializes a registered fragment: evaluates its view definition over
/// the staged dataset, creates the physical container in the target store
/// (table / collection / relation / core), loads the rows in the store's
/// native layout, builds the indexes implied by the view's access-pattern
/// adornments, and fills in the fragment statistics.
///
/// Physical layouts (documented per DESIGN.md §3):
///  * relational: table named after the container, one column per view
///    head position (named by the head variable, h<i> fallback); list
///    values are stored as JSON text.
///  * key-value:  key = JSON serialization of head position 0; value =
///    JSON array of the whole row.
///  * document:   one JSON document per row: {"_id": "r<N>", "f0": ...}.
///  * parallel:   nested relation of the view arity, hash-partitioned;
///    a composite index over the input-adorned positions when present.
///  * text:       one core document per distinct head-0 value; terms =
///    all head-1 values of that key ("contains" layout).
///  * graph:      named graph of the view arity holding the rows as
///    engine::Values; adjacency indexes on the first/last positions (and
///    the labeled composites) are built-in, so index_positions are moot.
Status MaterializeFragment(const StagingData& staging,
                           catalog::Catalog* catalog,
                           const std::string& fragment_name);

/// Creates the fragment's *empty* physical container (plus the indexes
/// implied by its adornments and index_positions) without evaluating the
/// view. The online-migration backfill uses this to open a shadow target
/// it then fills in throttled batches via AppendToFragment. Column types
/// stay open (kAny) until rows arrive.
Status CreateFragmentContainer(catalog::Catalog* catalog,
                               const std::string& fragment_name);

/// Appends already-computed view rows to a fragment's physical container
/// in the store's native layout, updating row-count statistics and list-
/// column flags. Text fragments cannot be appended to (per-document
/// postings are immutable): returns kUnsupported — rebuild instead.
///
/// Replicated fragments fan the append out: the write epoch advances by
/// one, every fresh non-rebuilding replica receives the rows, and each
/// replica that takes them moves to the new epoch. A replica whose store
/// is down stays at its old epoch — stale, out of the routing set, queued
/// for the repairer. The call succeeds while at least one replica takes
/// the write; with none, the epoch bump is rolled back and the first
/// store error surfaces (identical to the unreplicated behavior).
Status AppendToFragment(catalog::Catalog* catalog,
                        const std::string& fragment_name,
                        const std::vector<engine::Row>& rows);

/// Reads a fragment's physical container back into pivot-space view rows
/// (the inverse of the per-kind load layouts; relational list columns are
/// parsed back from their JSON text). Order is unspecified and duplicates
/// appended by incremental maintenance are preserved. Text fragments are
/// not reconstructible row-by-row (terms are fused into per-document
/// token streams): returns kUnsupported — use VerifyFragmentAgainstRows.
Result<std::vector<engine::Row>> ReadFragmentRows(
    const catalog::Catalog& catalog, const std::string& fragment_name);

/// Set-compares a fragment's physical content against `expected_rows`
/// (normally the fragment view evaluated over staging — the ground
/// truth). Comparison happens after the store's own serialization round
/// trip, so a correctly loaded fragment always verifies even for values
/// that JSON canonicalizes. Duplicates on either side are ignored (set
/// semantics). Works for all five store kinds, including text (compared
/// in per-document token space). Returns OK iff they match; a
/// kFailedPrecondition status describes the first divergence otherwise.
Status VerifyFragmentAgainstRows(const catalog::Catalog& catalog,
                                 const std::string& fragment_name,
                                 const std::vector<engine::Row>& expected_rows);

/// Drops the fragment's physical containers from their stores (inverse of
/// materialization, all replicas), leaving the descriptor in place; used
/// by the advisor when re-organizing. Containers of replicas mid-rebuild
/// are left alone — the repairer owns and cleans those up. DropFragment
/// on the catalog removes the descriptor.
Status DematerializeFragment(catalog::Catalog* catalog,
                             const std::string& fragment_name);

/// --- Per-replica primitives (replica repair and anti-entropy) ---------
///
/// The replica-indexed variants below operate on exactly one placement of
/// a replicated fragment and never touch the descriptor's epochs or
/// statistics; the ReplicaRepairer sequences them into a rebuild
/// (drop → create → backfill batches → verify) and flips the epoch /
/// rebuilding bits itself under the server's admin lock.

/// Creates replica `replica`'s *empty* container (with the fragment's
/// indexes) in its placement store.
Status CreateReplicaContainer(catalog::Catalog* catalog,
                              const std::string& fragment_name,
                              size_t replica);

/// Drops replica `replica`'s container from its placement store.
Status DropReplicaContainer(catalog::Catalog* catalog,
                            const std::string& fragment_name, size_t replica);

/// Rebuilds replica `replica`'s container in one shot from the staging
/// truth: drops it (tolerating absence), re-evaluates the view, and loads
/// the rows in the store's native layout. Works for every store kind —
/// the only rebuild path for text placements, which cannot be appended
/// to. Epochs and statistics are untouched.
Status MaterializeReplica(const StagingData& staging,
                          catalog::Catalog* catalog,
                          const std::string& fragment_name, size_t replica);

/// Appends already-computed view rows to replica `replica`'s container
/// only. Statistics and epochs are untouched; document _ids are seeded
/// from the container's own count, so restarted rebuilds never collide.
Status AppendToReplica(catalog::Catalog* catalog,
                       const std::string& fragment_name, size_t replica,
                       const std::vector<engine::Row>& rows);

/// Reads replica `replica`'s container back into pivot-space view rows
/// (same contract as ReadFragmentRows, which is the replica-0 case).
Result<std::vector<engine::Row>> ReadReplicaRows(
    const catalog::Catalog& catalog, const std::string& fragment_name,
    size_t replica);

/// Set-compares replica `replica`'s content against `expected_rows`
/// (same contract as VerifyFragmentAgainstRows, the replica-0 case).
Status VerifyReplicaAgainstRows(const catalog::Catalog& catalog,
                                const std::string& fragment_name,
                                size_t replica,
                                const std::vector<engine::Row>& expected_rows);

/// Order-independent digest over the distinct rows stored in replica
/// `replica` — byte-equal replica contents digest equal. Comparable only
/// between placements of the same store kind (kinds round-trip values
/// differently); text placements return kUnsupported (no row readback) —
/// anti-entropy verifies those against the staging truth instead.
Result<uint64_t> FragmentReplicaDigest(const catalog::Catalog& catalog,
                                       const std::string& fragment_name,
                                       size_t replica);

/// --- Per-shard primitives (partitioned fragments) ---------------------

/// Reads one shard replica's container back into view rows (same contract
/// as ReadReplicaRows). For partitioned fragments ReadFragmentRows returns
/// the concatenation of every shard's primary copy.
Result<std::vector<engine::Row>> ReadShardRows(const catalog::Catalog& catalog,
                                               const std::string& fragment_name,
                                               size_t shard, size_t replica);

/// Rebuilds one shard replica's container in one shot from the staging
/// truth: re-evaluates the view, keeps only the shard's bucket, and
/// reloads the container. Unlike MaterializeReplica this *does* stamp the
/// replica current (epoch = the shard's write epoch, rebuilding cleared):
/// a full rebuild from staging is fresh by definition, and shard repair
/// has no separate repairer sequencing the admission.
Status MaterializeShardReplica(const StagingData& staging,
                               catalog::Catalog* catalog,
                               const std::string& fragment_name, size_t shard,
                               size_t replica);

/// Incremental view maintenance: given one tuple freshly appended to
/// dataset relation `relation` (already present in `staging`), computes
/// each affected fragment's delta with the standard delta rule — for every
/// occurrence of `relation` in the view body, evaluate the body with that
/// atom pinned to the new tuple — and appends the new view rows to the
/// fragment's physical container, updating its statistics.
///
/// Text fragments are rebuilt from scratch (their per-document postings
/// cannot be appended to); deletions are not supported (the paper, too,
/// leaves dynamic reorganization as ongoing work).
Status MaintainFragmentsOnInsert(const StagingData& staging,
                                 catalog::Catalog* catalog,
                                 const std::string& relation,
                                 const engine::Row& new_row);

/// Batch form: one logical update that staged several tuples (e.g. one
/// document's path facts). Deltas are deduplicated across the batch so a
/// view row derivable from several of the new tuples is appended once.
/// Shadow fragments are skipped: the migration engine replays their
/// deltas itself (via MaintainOneFragmentOnInsertBatch) during catch-up.
Status MaintainFragmentsOnInsertBatch(
    const StagingData& staging, catalog::Catalog* catalog,
    const std::vector<std::pair<std::string, engine::Row>>& new_rows);

/// Per-fragment core of the batch maintenance: applies the delta rule for
/// `new_rows` to exactly one fragment (rebuilding it when it lives in a
/// text store). The migration engine's catch-up stage replays captured
/// update deltas through this against its shadow target.
Status MaintainOneFragmentOnInsertBatch(
    const StagingData& staging, catalog::Catalog* catalog,
    const std::string& fragment_name,
    const std::vector<std::pair<std::string, engine::Row>>& new_rows);

}  // namespace estocada::rewriting

#endif  // ESTOCADA_REWRITING_MATERIALIZER_H_
