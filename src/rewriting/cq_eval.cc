#include "rewriting/cq_eval.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "pacb/feasibility.h"

namespace estocada::rewriting {

using engine::Expr;
using engine::ExprPtr;
using engine::Operator;
using engine::OperatorPtr;
using engine::Row;
using engine::Value;
using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Term;

namespace {

/// Resolves a term to a compile-time value if it is a constant or a
/// parameter; returns nullopt for free variables.
std::optional<Value> ResolveGroundTerm(
    const Term& t, const std::map<std::string, Value>& parameters) {
  if (t.is_constant()) return Value::FromConstant(t.constant());
  if (t.is_variable() && pacb::IsParameterVariable(t.var_name())) {
    auto it = parameters.find(t.var_name());
    if (it != parameters.end()) return it->second;
  }
  return std::nullopt;
}

}  // namespace

Result<OperatorPtr> CompileCqOverStaging(
    const ConjunctiveQuery& query, const StagingData& staging,
    const std::map<std::string, Value>& parameters, bool distinct) {
  ESTOCADA_RETURN_NOT_OK(query.Validate());

  // Greedy bound-first atom order: maximize shared variables with the
  // running scope (keeps hash joins keyed rather than cross products).
  std::vector<size_t> order;
  std::vector<bool> used(query.body.size(), false);
  std::unordered_set<std::string> scope_vars;
  for (size_t step = 0; step < query.body.size(); ++step) {
    size_t best = query.body.size();
    int best_score = -1;
    for (size_t i = 0; i < query.body.size(); ++i) {
      if (used[i]) continue;
      int score = 0;
      for (const Term& t : query.body[i].terms) {
        if (!t.is_variable()) {
          score += 1;  // Constants filter early.
        } else if (scope_vars.count(t.var_name())) {
          score += 4;
        }
      }
      if (score > best_score) {
        best = i;
        best_score = score;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const Term& t : query.body[best].terms) {
      if (t.is_variable()) scope_vars.insert(t.var_name());
    }
  }

  OperatorPtr tree;
  std::unordered_map<std::string, size_t> scope;  // var -> output column
  size_t tree_width = 0;

  for (size_t idx : order) {
    const Atom& atom = query.body[idx];
    auto sit = staging.find(atom.relation);
    if (sit == staging.end()) {
      return Status::NotFound(
          StrCat("relation '", atom.relation, "' has no staged data"));
    }
    const StagingRelation& rel = sit->second;
    if (!rel.rows.empty() && rel.rows[0].size() != atom.arity()) {
      return Status::InvalidArgument(
          StrCat("relation '", atom.relation, "' arity mismatch: atom has ",
                 atom.arity(), ", staged rows have ", rel.rows[0].size()));
    }
    OperatorPtr source = std::make_unique<engine::RowsOperator>(
        rel.columns, rel.rows, atom.relation);

    // Per-atom filters: ground terms and repeated variables.
    ExprPtr pred;
    std::unordered_map<std::string, size_t> first_pos;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      ExprPtr clause;
      if (auto v = ResolveGroundTerm(t, parameters)) {
        clause = Expr::Binary(Expr::Op::kEq, Expr::Column(i),
                              Expr::Const(*v));
      } else if (t.is_variable()) {
        auto [it, fresh] = first_pos.emplace(t.var_name(), i);
        if (!fresh) {
          clause = Expr::Binary(Expr::Op::kEq, Expr::Column(i),
                                Expr::Column(it->second));
        }
      } else if (t.is_labelled_null()) {
        return Status::InvalidArgument(
            "labelled null in an executable query body");
      } else if (t.is_variable() &&
                 pacb::IsParameterVariable(t.var_name())) {
        return Status::InvalidArgument(
            StrCat("unbound parameter ", t.var_name()));
      }
      if (clause) {
        pred = pred ? Expr::Binary(Expr::Op::kAnd, pred, clause) : clause;
      }
    }
    // Unbound parameters are an error (they would silently join as vars).
    for (const Term& t : atom.terms) {
      if (t.is_variable() && pacb::IsParameterVariable(t.var_name()) &&
          !parameters.count(t.var_name())) {
        return Status::InvalidArgument(
            StrCat("no value supplied for parameter ", t.var_name()));
      }
    }
    if (pred) {
      source = std::make_unique<engine::FilterOperator>(std::move(source),
                                                        pred);
    }

    if (!tree) {
      tree = std::move(source);
      for (const auto& [var, pos] : first_pos) scope.emplace(var, pos);
      tree_width = atom.arity();
      continue;
    }
    // Join with the running tree on shared variables.
    std::vector<std::pair<size_t, size_t>> keys;
    for (const auto& [var, pos] : first_pos) {
      auto it = scope.find(var);
      if (it != scope.end()) keys.emplace_back(it->second, pos);
    }
    tree = std::make_unique<engine::HashJoinOperator>(std::move(tree),
                                                      std::move(source), keys);
    for (const auto& [var, pos] : first_pos) {
      scope.emplace(var, tree_width + pos);  // No-op when already present.
    }
    tree_width += atom.arity();
  }

  // Project the head.
  std::vector<std::string> names;
  std::vector<ExprPtr> exprs;
  for (size_t i = 0; i < query.head.size(); ++i) {
    const Term& h = query.head[i];
    if (auto v = ResolveGroundTerm(h, parameters)) {
      names.push_back(StrCat("h", i));
      exprs.push_back(Expr::Const(*v));
    } else if (h.is_variable()) {
      auto it = scope.find(h.var_name());
      if (it == scope.end()) {
        return Status::InvalidArgument(
            StrCat("head variable '", h.var_name(), "' not bound by body"));
      }
      names.push_back(h.var_name());
      exprs.push_back(Expr::Column(it->second));
    } else {
      return Status::InvalidArgument("unsupported head term");
    }
  }
  tree = std::make_unique<engine::ProjectOperator>(std::move(tree), names,
                                                   exprs);
  if (distinct) {
    tree = std::make_unique<engine::DistinctOperator>(std::move(tree));
  }
  return tree;
}

Result<std::vector<Row>> EvaluateCqOverStaging(
    const ConjunctiveQuery& query, const StagingData& staging,
    const std::map<std::string, Value>& parameters, bool distinct) {
  ESTOCADA_ASSIGN_OR_RETURN(
      OperatorPtr op, CompileCqOverStaging(query, staging, parameters,
                                           distinct));
  return Collect(op.get());
}

}  // namespace estocada::rewriting
