#include "rewriting/translator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "pacb/feasibility.h"

namespace estocada::rewriting {

using catalog::StorageDescriptor;
using catalog::StoreHandle;
using catalog::StoreKind;
using engine::Expr;
using engine::ExprPtr;
using engine::OperatorPtr;
using engine::Row;
using engine::Value;
using pivot::Adornment;
using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Term;

double RuntimeStats::TotalSimulatedCost() const {
  double total = 0;
  for (const auto& [name, stats] : per_store) total += stats.simulated_cost;
  return total;
}

std::string RuntimeStats::ToString() const {
  std::string out;
  for (const auto& [name, stats] : per_store) {
    out += StrCat("  ", name, ": ", stats.ToString(), "\n");
  }
  return out;
}

bool PlanConstraints::Excludes(const std::string& store) const {
  return std::find(excluded_stores.begin(), excluded_stores.end(), store) !=
         excluded_stores.end();
}

bool PlanConstraints::OnProbation(const std::string& store) const {
  return std::find(probation_stores.begin(), probation_stores.end(), store) !=
         probation_stores.end();
}

std::string PlannedQuery::ToString() const {
  std::string out = StrCat("rewriting: ", rewriting.ToString(), "\n",
                           "estimated cost: ", estimated_cost,
                           ", estimated rows: ", estimated_rows, "\n");
  for (const std::string& d : delegated) {
    out += StrCat("delegated: ", d, "\n");
  }
  if (root) out += engine::PlanToString(*root);
  return out;
}

namespace {

/// Everything the translator derives about one rewriting atom.
struct AtomInfo {
  const Atom* atom;
  const StorageDescriptor* fragment;
  /// The routed replica placement: the store/container this plan reads
  /// the fragment from (the primary unless routing moved it).
  const StoreHandle* store;
  std::string store_name;
  std::string container;
  /// Plan-time ground value per position (constant or parameter).
  std::vector<std::optional<Value>> ground;
  /// Variable name per position ("" when ground).
  std::vector<std::string> var;
  /// Partitioned fragment whose partition key is not ground at plan time:
  /// the read must scatter over every shard (or dispatch per binding when
  /// the key arrives through a BindJoin). `store`/`store_name`/`container`
  /// then mirror shard 0's routed placement for kind checks only.
  bool scatter = false;
  /// One routed placement (and its store) per shard when `scatter`.
  std::vector<catalog::ReplicaPlacement> shard_placements;
  std::vector<const StoreHandle*> shard_stores;
};

/// The scatter fan-out pool: dedicated (never the QueryServer's worker
/// pool — a query waiting for its own shard tasks behind other queued
/// queries would deadlock) and safe to share process-wide because shard
/// fetches never submit further tasks.
ThreadPool* ScatterPool() {
  static ThreadPool pool(std::max(8u, std::thread::hardware_concurrency()));
  return &pool;
}

/// Picks the replica placement an atom reads from: the first one (the
/// primary preferred) that is fresh, not mid-rebuild, and whose store is
/// not excluded. Two passes: replicas on probation stores (half-open
/// breakers) are skipped while any fully-healthy replica qualifies, and
/// admitted as probe traffic only when nothing healthy can serve.
/// kUnavailable when no placement qualifies at all — the planner then
/// drops every rewriting using this fragment, and the server falls back
/// to staging only once *all* rewritings are gone.
Result<catalog::ReplicaPlacement> RouteFragment(
    const StorageDescriptor& frag, const PlanConstraints& constraints) {
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < frag.replica_count(); ++i) {
      catalog::ReplicaPlacement p =
          frag.replicas.empty()
              ? catalog::ReplicaPlacement{frag.store_name, frag.container,
                                          frag.write_epoch, false}
              : frag.replicas[i];
      if (p.rebuilding || !p.fresh(frag.write_epoch)) continue;
      if (constraints.Excludes(p.store_name)) continue;
      if (pass == 0 && constraints.OnProbation(p.store_name)) continue;
      return p;
    }
  }
  return Status::Unavailable(
      StrCat("fragment '", frag.name(),
             "' has no available replica (excluded, stale, or rebuilding)"));
}

/// RouteFragment for one shard of a partitioned fragment: same two-pass
/// probation logic over the shard's own replica set and write epoch. A
/// dead shard replica drops out here exactly like a dead whole-fragment
/// replica, so shard reads compose with the HealthRegistry re-route rung
/// and the degradation ladder unchanged.
Result<catalog::ReplicaPlacement> RouteShard(const StorageDescriptor& frag,
                                             size_t shard_idx,
                                             const PlanConstraints& constraints) {
  const catalog::ShardState& shard = frag.shards[shard_idx];
  for (int pass = 0; pass < 2; ++pass) {
    for (const catalog::ReplicaPlacement& p : shard.replicas) {
      if (p.rebuilding || !p.fresh(shard.write_epoch)) continue;
      if (constraints.Excludes(p.store_name)) continue;
      if (pass == 0 && constraints.OnProbation(p.store_name)) continue;
      return p;
    }
  }
  return Status::Unavailable(
      StrCat("fragment '", frag.name(), "' shard ", shard_idx,
             " has no available replica (excluded, stale, or rebuilding)"));
}

/// A group of atoms reformulated as a single native store access.
struct CompiledGroup {
  /// Output column variable names ("" for columns not bound to a var).
  std::vector<std::string> out_vars;
  std::vector<std::string> out_names;
  /// Per-column distinct estimate (0 = unknown).
  std::vector<double> out_distinct;
  /// Outer variables that must be supplied per call (BindJoin bindings).
  std::vector<std::string> needed_vars;
  engine::BindJoinOperator::Fetch fetch;
  /// Batched fetch covering several bindings in one round trip, when the
  /// access supports one (KV point get via MGet). Installed on BindJoins.
  engine::BindJoinOperator::BatchFetch batch_fetch;
  /// Streaming source form (graph accesses): source positions become a
  /// GraphFetchOperator pulling one store page per NextBatch instead of a
  /// materializing callback scan. Null for every other kind.
  engine::GraphFetchOperator::ChunkFetch graph_stream;
  engine::GraphFetchOperator::ChunkReset graph_reset;
  double est_out_rows = 1;  ///< Expected rows per fetch call.
  double access_cost = 1;   ///< Simulated cost per fetch call.
  std::string desc;
  /// Scatter groups (partitioned fragment, key unbound): one fetch per
  /// shard plus its backing store instance name; `fetch` above remains
  /// valid (per-binding dispatch or sequential concat) for BindJoin use,
  /// while source positions upgrade to a ScatterGatherOperator.
  std::vector<engine::BindJoinOperator::Fetch> shard_fetches;
  std::vector<std::string> shard_keys;
};

/// Mirrors the default store cost profiles for *estimation* (the stores
/// themselves charge the authoritative simulated cost at run time).
struct CostConstants {
  double per_op, per_row, per_lookup, per_ret;
};
CostConstants CostModel(StoreKind kind) {
  switch (kind) {
    case StoreKind::kRelational:
      return {25.0, 0.05, 0.8, 0.05};
    case StoreKind::kKeyValue:
      return {4.0, 0.02, 0.3, 0.05};
    case StoreKind::kDocument:
      return {12.0, 0.12, 0.5, 0.15};
    case StoreKind::kParallel:
      return {60.0, 0.0025, 0.6, 0.05};  // per-row cost amortized over workers
    case StoreKind::kText:
      return {10.0, 0.03, 0.4, 0.1};
    case StoreKind::kGraph:
      return {6.0, 0.04, 0.2, 0.06};  // cheap anchored bucket probes
  }
  return {10, 0.1, 0.5, 0.1};
}

Result<Value> ParseStoredJson(const std::string& text) {
  ESTOCADA_ASSIGN_OR_RETURN(json::JsonValue j, json::Parse(text));
  return Value::FromJson(j);
}

/// Post-check applied to every fetched row: ground positions must match
/// and repeated variables must agree (stores may not have been able to
/// push all predicates down).
bool RowSatisfiesAtom(const Row& row, const AtomInfo& info) {
  std::unordered_map<std::string, size_t> first;
  for (size_t i = 0; i < row.size(); ++i) {
    if (info.ground[i].has_value()) {
      if (!(row[i] == *info.ground[i])) return false;
    } else if (!info.var[i].empty()) {
      auto [it, fresh] = first.emplace(info.var[i], i);
      if (!fresh && !(row[i] == row[it->second])) return false;
    }
  }
  return true;
}

/// Values of the needed (outer-bound) variables are appended to the
/// ground map at call time: returns a copy of `info.ground` with the
/// binding row filled in at `needed_positions`.
std::vector<std::optional<Value>> BindGround(
    const AtomInfo& info, const std::vector<size_t>& needed_positions,
    const Row& binding) {
  std::vector<std::optional<Value>> ground = info.ground;
  for (size_t i = 0; i < needed_positions.size(); ++i) {
    ground[needed_positions[i]] = binding[i];
  }
  return ground;
}

/// One compiled native access to a single placement (store + container).
struct SingleAtomAccess {
  engine::BindJoinOperator::Fetch fetch;
  /// Batched variant covering several bindings in one store round trip
  /// (currently the KV point-get case, backed by MGet). Null when the
  /// access has no batched form.
  engine::BindJoinOperator::BatchFetch batch_fetch;
  /// Streaming source form (graph accesses only; see CompiledGroup).
  engine::GraphFetchOperator::ChunkFetch graph_stream;
  engine::GraphFetchOperator::ChunkReset graph_reset;
  double access_cost = 1;
  std::string desc;
};

/// Compiles a single-atom group against the placement named by
/// `info.store`/`info.store_name`/`info.container`. Shared between the
/// ordinary one-placement path and the scatter path, which calls it once
/// per shard with shard-routed placements. `rows_total` is the expected
/// stored row count of the placement (the whole fragment, or one shard's
/// bucket) and `est_out_rows` the expected rows per fetch call.
Result<SingleAtomAccess> CompileSingleAtomAccess(
    const AtomInfo& info, const std::vector<size_t>& needed_positions,
    const std::vector<std::string>& needed_vars, double rows_total,
    double est_out_rows, const std::shared_ptr<RuntimeStats>& runtime,
    bool build) {
  SingleAtomAccess out;
  const StoreKind kind = info.store->kind;
  const CostConstants cost = CostModel(kind);
  const std::string store_name = info.store_name;
  const size_t arity = info.atom->arity();
  const auto& adorn = info.fragment->view.adornments;
  const AtomInfo info_copy = info;

  switch (kind) {
    case StoreKind::kRelational: {
      // Single-table SPJ over one shard container (the fused multi-atom
      // SPJ path never routes here — scattered atoms do not fuse).
      // Filters are built at fetch time so outer bindings push down;
      // list-typed values stay post-checks (they persist as JSON text).
      stores::RelationalStore* store = info.store->relational;
      const std::string container = info.container;
      std::vector<std::string> cols =
          catalog::FragmentColumnNames(info.fragment->view);
      std::vector<size_t> list_cols;
      for (size_t i = 0; i < arity; ++i) {
        if (i < info.fragment->list_column.size() &&
            info.fragment->list_column[i]) {
          list_cols.push_back(i);
        }
      }
      out.access_cost = cost.per_op + cost.per_row * rows_total +
                        cost.per_ret * est_out_rows;
      if (!build) break;
      out.desc = StrCat(store_name, ": SELECT * FROM ", container);
      std::vector<size_t> np = needed_positions;
      out.fetch = [store, container, cols, info_copy, np, list_cols, runtime,
                   store_name](const Row& binding)
          -> Result<std::vector<Row>> {
        auto ground = BindGround(info_copy, np, binding);
        stores::SpjQuery q;
        q.from.push_back({container, "a0"});
        std::unordered_set<size_t> listed(list_cols.begin(), list_cols.end());
        for (size_t i = 0; i < cols.size(); ++i) {
          stores::SpjQuery::ColumnRef ref{"a0", cols[i]};
          q.select.push_back(ref);
          if (ground[i].has_value() && !ground[i]->is_list() &&
              !listed.count(i)) {
            q.filters.push_back({ref, *ground[i]});
          }
        }
        ESTOCADA_ASSIGN_OR_RETURN(
            std::vector<Row> rows,
            store->Execute(q, &runtime->per_store[store_name]));
        AtomInfo check = info_copy;
        for (size_t i = 0; i < np.size(); ++i) {
          check.ground[np[i]] = binding[i];
        }
        std::vector<Row> out_rows;
        for (Row& row : rows) {
          for (size_t c : list_cols) {
            if (row[c].is_string()) {
              ESTOCADA_ASSIGN_OR_RETURN(
                  Value parsed, ParseStoredJson(row[c].string_value()));
              row[c] = std::move(parsed);
            }
          }
          if (RowSatisfiesAtom(row, check)) out_rows.push_back(std::move(row));
        }
        return out_rows;
      };
      break;
    }
    case StoreKind::kKeyValue: {
      stores::KeyValueStore* store = info.store->kv;
      const std::string container = info.container;
      // Key is position 0 (materializer layout).
      bool key_needed = !needed_positions.empty() &&
                        needed_positions[0] == 0;
      bool key_ground = info.ground[0].has_value();
      if (key_ground || key_needed) {
        out.access_cost = cost.per_op + cost.per_lookup;
        if (!build) break;
        out.desc = StrCat(store_name, ": GET ", container, "[",
                          key_ground ? info.ground[0]->ToString()
                                     : StrCat("?", needed_vars[0]),
                          "]");
        std::vector<size_t> np = needed_positions;
        out.fetch = [store, container, info_copy, np, runtime,
                     store_name](const Row& binding)
            -> Result<std::vector<Row>> {
          auto ground = BindGround(info_copy, np, binding);
          auto got = store->Get(container, ground[0]->ToJson().Serialize(),
                                &runtime->per_store[store_name]);
          if (!got.ok()) {
            if (got.status().code() == StatusCode::kNotFound) {
              return std::vector<Row>{};
            }
            return got.status();
          }
          ESTOCADA_ASSIGN_OR_RETURN(Value v, ParseStoredJson(*got));
          if (!v.is_list()) {
            return Status::Internal("corrupt KV fragment payload");
          }
          AtomInfo check = info_copy;
          for (size_t i = 0; i < np.size(); ++i) {
            check.ground[np[i]] = binding[i];
          }
          // Payload = list of rows sharing this key.
          std::vector<Row> out_rows;
          for (const Value& row_value : v.list()) {
            if (!row_value.is_list()) {
              return Status::Internal("corrupt KV fragment payload row");
            }
            Row row = row_value.list();
            if (RowSatisfiesAtom(row, check)) out_rows.push_back(std::move(row));
          }
          return out_rows;
        };
        // Batched form: k uncached bindings become one MGet round trip.
        out.batch_fetch = [store, container, info_copy, np, runtime,
                           store_name](const std::vector<Row>& bindings)
            -> Result<std::vector<std::vector<Row>>> {
          std::vector<std::string> keys;
          keys.reserve(bindings.size());
          for (const Row& binding : bindings) {
            auto ground = BindGround(info_copy, np, binding);
            keys.push_back(ground[0]->ToJson().Serialize());
          }
          ESTOCADA_ASSIGN_OR_RETURN(
              std::vector<std::optional<std::string>> payloads,
              store->MGet(container, keys, &runtime->per_store[store_name]));
          std::vector<std::vector<Row>> out_sets(bindings.size());
          for (size_t b = 0; b < bindings.size(); ++b) {
            if (!payloads[b].has_value()) continue;
            ESTOCADA_ASSIGN_OR_RETURN(Value v, ParseStoredJson(*payloads[b]));
            if (!v.is_list()) {
              return Status::Internal("corrupt KV fragment payload");
            }
            AtomInfo check = info_copy;
            for (size_t i = 0; i < np.size(); ++i) {
              check.ground[np[i]] = bindings[b][i];
            }
            for (const Value& row_value : v.list()) {
              if (!row_value.is_list()) {
                return Status::Internal("corrupt KV fragment payload row");
              }
              Row row = row_value.list();
              if (RowSatisfiesAtom(row, check)) {
                out_sets[b].push_back(std::move(row));
              }
            }
          }
          return out_sets;
        };
      } else {
        // Free access: full collection scan (allowed but costly). Any
        // outer bindings on non-key input positions become post-checks.
        out.access_cost = cost.per_op + cost.per_row * rows_total +
                          cost.per_ret * est_out_rows;
        if (!build) break;
        out.desc = StrCat(store_name, ": SCAN ", container);
        std::vector<size_t> np = needed_positions;
        out.fetch = [store, container, info_copy, np, runtime,
                     store_name](const Row& binding)
            -> Result<std::vector<Row>> {
          AtomInfo check = info_copy;
          for (size_t i = 0; i < np.size(); ++i) {
            check.ground[np[i]] = binding[i];
          }
          ESTOCADA_ASSIGN_OR_RETURN(
              auto pairs,
              store->Scan(container, &runtime->per_store[store_name]));
          std::vector<Row> out_rows;
          for (const auto& [k, v] : pairs) {
            ESTOCADA_ASSIGN_OR_RETURN(Value parsed, ParseStoredJson(v));
            if (!parsed.is_list()) continue;
            for (const Value& row_value : parsed.list()) {
              if (!row_value.is_list()) continue;
              Row row = row_value.list();
              if (RowSatisfiesAtom(row, check)) {
                out_rows.push_back(std::move(row));
              }
            }
          }
          return out_rows;
        };
      }
      break;
    }
    case StoreKind::kDocument: {
      stores::DocumentStore* store = info.store->document;
      const std::string container = info.container;
      out.access_cost = cost.per_op + cost.per_row * rows_total * 0.5 +
                        cost.per_ret * est_out_rows;
      if (!build) break;
      std::vector<std::string> pred_bits;
      for (size_t i = 0; i < arity; ++i) {
        if (info.ground[i].has_value()) {
          pred_bits.push_back(
              StrCat("f", i, "=", info.ground[i]->ToString()));
        }
      }
      out.desc = StrCat(store_name, ": FIND ", container, " {",
                        StrJoin(pred_bits, ", "), "}");
      std::vector<size_t> np = needed_positions;
      out.fetch = [store, container, info_copy, np, arity, runtime,
                   store_name](const Row& binding)
          -> Result<std::vector<Row>> {
        auto ground = BindGround(info_copy, np, binding);
        std::vector<stores::PathPredicate> preds;
        for (size_t i = 0; i < arity; ++i) {
          if (ground[i].has_value()) {
            preds.push_back({StrCat("f", i), stores::DocOp::kEq,
                             ground[i]->ToJson()});
          }
        }
        ESTOCADA_ASSIGN_OR_RETURN(
            std::vector<json::JsonValue> docs,
            store->Find(container, preds,
                        &runtime->per_store[store_name]));
        AtomInfo check = info_copy;
        for (size_t i = 0; i < np.size(); ++i) {
          check.ground[np[i]] = binding[i];
        }
        std::vector<Row> out_rows;
        for (const json::JsonValue& doc : docs) {
          Row row;
          row.reserve(arity);
          for (size_t i = 0; i < arity; ++i) {
            const json::JsonValue* f = doc.Find(StrCat("f", i));
            row.push_back(f == nullptr ? Value::Null()
                                       : Value::FromJson(*f));
          }
          if (RowSatisfiesAtom(row, check)) out_rows.push_back(std::move(row));
        }
        return out_rows;
      };
      break;
    }
    case StoreKind::kParallel: {
      stores::ParallelStore* store = info.store->parallel;
      const std::string container = info.container;
      // Index over the input-adorned positions exists iff there are any
      // (materializer contract). Use it when every indexed position is
      // ground or needed.
      std::vector<size_t> index_positions;
      for (size_t i = 0; i < adorn.size(); ++i) {
        if (adorn[i] == Adornment::kInput) index_positions.push_back(i);
      }
      bool index_usable = !index_positions.empty();
      for (size_t p : index_positions) {
        bool is_needed = std::find(needed_positions.begin(),
                                   needed_positions.end(),
                                   p) != needed_positions.end();
        if (!info.ground[p].has_value() && !is_needed) {
          index_usable = false;
        }
      }
      std::vector<size_t> np = needed_positions;
      if (index_usable) {
        out.access_cost = cost.per_op + cost.per_lookup +
                          cost.per_ret * est_out_rows;
        if (!build) break;
        out.desc = StrCat(store_name, ": INDEX-LOOKUP ", container, " (",
                          StrJoin(index_positions, ","), ")");
        out.fetch = [store, container, info_copy, np, index_positions,
                     runtime, store_name](const Row& binding)
            -> Result<std::vector<Row>> {
          auto ground = BindGround(info_copy, np, binding);
          Row key;
          for (size_t p : index_positions) key.push_back(*ground[p]);
          ESTOCADA_ASSIGN_OR_RETURN(
              std::vector<Row> rows,
              store->IndexLookup(container, index_positions, key,
                                 &runtime->per_store[store_name]));
          AtomInfo check = info_copy;
          for (size_t i = 0; i < np.size(); ++i) {
            check.ground[np[i]] = binding[i];
          }
          std::vector<Row> out_rows;
          for (Row& row : rows) {
            if (RowSatisfiesAtom(row, check)) out_rows.push_back(std::move(row));
          }
          return out_rows;
        };
      } else {
        out.access_cost = cost.per_op + cost.per_row * rows_total +
                          cost.per_ret * est_out_rows;
        if (!build) break;
        out.desc = StrCat(store_name, ": PARALLEL-SCAN ", container);
        out.fetch = [store, container, info_copy, np, runtime,
                     store_name](const Row& binding)
            -> Result<std::vector<Row>> {
          AtomInfo check = info_copy;
          for (size_t i = 0; i < np.size(); ++i) {
            check.ground[np[i]] = binding[i];
          }
          return store->ParallelScan(
              container,
              [check](const Row& row) {
                return RowSatisfiesAtom(row, check);
              },
              {}, &runtime->per_store[store_name]);
        };
      }
      break;
    }
    case StoreKind::kText: {
      stores::TextStore* store = info.store->text;
      const std::string container = info.container;
      out.access_cost = cost.per_op + cost.per_lookup +
                        cost.per_ret * est_out_rows;
      if (!build) break;
      out.desc = StrCat(
          store_name, ": SEARCH ", container, " [",
          info.ground[1].has_value() ? info.ground[1]->ToString() : "?",
          "]");
      std::vector<size_t> np = needed_positions;
      out.fetch = [store, container, info_copy, np, runtime,
                   store_name](const Row& binding)
          -> Result<std::vector<Row>> {
        auto ground = BindGround(info_copy, np, binding);
        if (!ground[1].has_value()) {
          return Status::NoRewriting(
              "text search requires a bound term");
        }
        std::string term = ground[1]->is_string()
                               ? ground[1]->string_value()
                               : ground[1]->ToString();
        ESTOCADA_ASSIGN_OR_RETURN(
            std::vector<std::string> ids,
            store->Search(container, {term},
                          &runtime->per_store[store_name]));
        AtomInfo check = info_copy;
        for (size_t i = 0; i < np.size(); ++i) {
          check.ground[np[i]] = binding[i];
        }
        std::vector<Row> out_rows;
        for (const std::string& id : ids) {
          ESTOCADA_ASSIGN_OR_RETURN(Value doc_id, ParseStoredJson(id));
          Row row{doc_id, *ground[1]};
          if (RowSatisfiesAtom(row, check)) out_rows.push_back(std::move(row));
        }
        return out_rows;
      };
      break;
    }
    case StoreKind::kGraph: {
      stores::GraphStore* store = info.store->graph;
      const std::string container = info.container;
      const size_t last = arity - 1;
      // Anchored access: the first or last position is ground at plan
      // time or arrives per binding — one adjacency bucket probe. The
      // label position sharpens it to the labeled composite at match
      // time; everything else is a residual filter inside the store.
      auto pos_bound = [&](size_t p) {
        return info.ground[p].has_value() ||
               std::find(needed_positions.begin(), needed_positions.end(),
                         p) != needed_positions.end();
      };
      const bool anchored = pos_bound(0) || pos_bound(last);
      if (anchored) {
        out.access_cost =
            cost.per_op + cost.per_lookup + cost.per_ret * est_out_rows;
      } else {
        out.access_cost = cost.per_op + cost.per_row * rows_total +
                          cost.per_ret * est_out_rows;
      }
      if (!build) break;
      const bool labeled = arity >= 3 && info.ground[1].has_value();
      out.desc =
          anchored
              ? StrCat(store_name, ": EXPAND ", container,
                       pos_bound(0) ? " out" : " in",
                       labeled
                           ? StrCat(" [", info.ground[1]->ToString(), "]")
                           : "")
              : StrCat(store_name, ": GRAPH-SCAN ", container);
      std::vector<size_t> np = needed_positions;
      out.fetch = [store, container, info_copy, np, runtime,
                   store_name](const Row& binding)
          -> Result<std::vector<Row>> {
        auto ground = BindGround(info_copy, np, binding);
        ESTOCADA_ASSIGN_OR_RETURN(
            std::vector<Row> rows,
            store->Match(container, ground,
                         &runtime->per_store[store_name]));
        AtomInfo check = info_copy;
        for (size_t i = 0; i < np.size(); ++i) {
          check.ground[np[i]] = binding[i];
        }
        std::vector<Row> out_rows;
        for (Row& row : rows) {
          if (RowSatisfiesAtom(row, check)) out_rows.push_back(std::move(row));
        }
        return out_rows;
      };
      // Streaming source form: a GraphFetchOperator pulls one MatchPage
      // per NextBatch, so source-position expansions never materialize.
      auto cursor = std::make_shared<size_t>(0);
      out.graph_reset = [cursor]() {
        *cursor = 0;
        return Status::OK();
      };
      out.graph_stream = [store, container, info_copy, cursor, runtime,
                          store_name](std::vector<Row>* rows)
          -> Result<bool> {
        std::vector<Row> page;
        ESTOCADA_ASSIGN_OR_RETURN(
            bool more,
            store->MatchPage(container, info_copy.ground,
                             engine::RowBatch::kDefaultRows, cursor.get(),
                             &page, &runtime->per_store[store_name]));
        for (Row& row : page) {
          if (RowSatisfiesAtom(row, info_copy)) rows->push_back(std::move(row));
        }
        return more;
      };
      break;
    }
  }
  if (build && !out.fetch) {
    return Status::Internal("unhandled store kind in translator");
  }
  return out;
}

}  // namespace

Translator::Translator(const catalog::Catalog* catalog) : catalog_(catalog) {}

Result<PlannedQuery> Translator::Plan(
    const ConjunctiveQuery& rewriting,
    const std::map<std::string, Value>& parameters,
    const PlanConstraints& constraints) const {
  return PlanInternal(rewriting, parameters, constraints, /*build=*/true);
}

Result<PlannedQuery> Translator::Estimate(
    const ConjunctiveQuery& rewriting,
    const std::map<std::string, Value>& parameters,
    const PlanConstraints& constraints) const {
  return PlanInternal(rewriting, parameters, constraints, /*build=*/false);
}

Result<PlannedQuery> Translator::PlanInternal(
    const ConjunctiveQuery& rewriting,
    const std::map<std::string, Value>& parameters,
    const PlanConstraints& constraints, bool build) const {
  ESTOCADA_RETURN_NOT_OK(rewriting.Validate());
  auto runtime = std::make_shared<RuntimeStats>();

  // ---- Resolve atoms against the catalog, routing each fragment read
  // to one available replica placement.
  std::vector<AtomInfo> infos;
  for (const Atom& atom : rewriting.body) {
    ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* frag,
                              catalog_->GetFragment(atom.relation));
    if (frag->view.arity() != atom.arity()) {
      return Status::InvalidArgument(
          StrCat("atom ", atom.ToString(), " does not match fragment arity ",
                 frag->view.arity()));
    }
    AtomInfo info;
    catalog::ReplicaPlacement placement;
    if (frag->partitioned()) {
      // Shard pruning: when the partition key is ground at plan time
      // (a constant or a supplied parameter), the whole read collapses
      // to the one shard owning that value — routed like any replica
      // set. Otherwise every shard must be routable and the access
      // becomes a scatter (or a per-binding dispatch downstream).
      const catalog::PartitionSpec& spec = frag->partition;
      const Term& key_term = atom.terms[spec.key_position];
      std::optional<Value> key;
      if (key_term.is_constant()) {
        key = Value::FromConstant(key_term.constant());
      } else if (key_term.is_variable() &&
                 pacb::IsParameterVariable(key_term.var_name())) {
        auto it = parameters.find(key_term.var_name());
        if (it != parameters.end()) key = it->second;
      }
      if (key.has_value()) {
        ESTOCADA_ASSIGN_OR_RETURN(
            placement, RouteShard(*frag, spec.ShardOf(*key), constraints));
      } else {
        info.scatter = true;
        for (size_t s = 0; s < spec.shards; ++s) {
          ESTOCADA_ASSIGN_OR_RETURN(catalog::ReplicaPlacement p,
                                    RouteShard(*frag, s, constraints));
          ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* sh,
                                    catalog_->GetStore(p.store_name));
          info.shard_placements.push_back(std::move(p));
          info.shard_stores.push_back(sh);
        }
        placement = info.shard_placements[0];
      }
    } else {
      ESTOCADA_ASSIGN_OR_RETURN(placement,
                                RouteFragment(*frag, constraints));
    }
    ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                              catalog_->GetStore(placement.store_name));
    info.atom = &atom;
    info.fragment = frag;
    info.store = store;
    info.store_name = std::move(placement.store_name);
    info.container = std::move(placement.container);
    for (const Term& t : atom.terms) {
      if (t.is_constant()) {
        info.ground.emplace_back(Value::FromConstant(t.constant()));
        info.var.emplace_back("");
      } else if (t.is_variable() &&
                 pacb::IsParameterVariable(t.var_name())) {
        auto it = parameters.find(t.var_name());
        if (it == parameters.end()) {
          return Status::InvalidArgument(
              StrCat("no value supplied for parameter ", t.var_name()));
        }
        info.ground.emplace_back(it->second);
        info.var.emplace_back("");
      } else if (t.is_variable()) {
        info.ground.emplace_back(std::nullopt);
        info.var.emplace_back(t.var_name());
      } else {
        return Status::InvalidArgument(
            StrCat("labelled null in rewriting atom ", atom.ToString()));
      }
    }
    infos.push_back(std::move(info));
  }

  // ---- Feasible evaluation order under access patterns.
  pacb::AdornmentMap adornments;
  for (const AtomInfo& info : infos) {
    if (!info.fragment->view.adornments.empty()) {
      adornments[info.fragment->name()] = info.fragment->view.adornments;
    }
  }
  std::vector<size_t> order =
      pacb::FeasibleOrder(rewriting.body, adornments);
  if (order.empty() && !rewriting.body.empty()) {
    return Status::NoRewriting(
        StrCat("rewriting is not executable under access patterns: ",
               rewriting.ToString()));
  }

  // ---- Group: all atoms on the same relational store fuse into one
  // delegated SPJ subquery anchored at the first of them; every other
  // atom is its own group.
  std::vector<std::vector<size_t>> groups;  // atom indices, in order
  std::map<std::string, size_t> rel_group_of_store;
  for (size_t idx : order) {
    const AtomInfo& info = infos[idx];
    // A scattered atom never fuses: each shard holds only part of its
    // extent, so it cannot join inside one delegated SPJ.
    if (info.store->kind == StoreKind::kRelational && !info.scatter) {
      auto it = rel_group_of_store.find(info.store_name);
      if (it != rel_group_of_store.end()) {
        groups[it->second].push_back(idx);
        continue;
      }
      rel_group_of_store.emplace(info.store_name, groups.size());
    }
    groups.push_back({idx});
  }

  // ---- Compile each group to a native access.
  PlannedQuery plan;
  plan.rewriting = rewriting;
  plan.runtime_stats = runtime;
  for (const AtomInfo& info : infos) {
    if (info.scatter) {
      for (const catalog::ReplicaPlacement& p : info.shard_placements) {
        plan.stores_used.push_back(p.store_name);
      }
    } else {
      plan.stores_used.push_back(info.store_name);
    }
  }
  std::sort(plan.stores_used.begin(), plan.stores_used.end());
  plan.stores_used.erase(
      std::unique(plan.stores_used.begin(), plan.stores_used.end()),
      plan.stores_used.end());

  std::vector<CompiledGroup> compiled;
  for (const std::vector<size_t>& group : groups) {
    CompiledGroup cg;
    const AtomInfo& head_info = infos[group[0]];
    const StoreKind kind = head_info.store->kind;
    const CostConstants cost = CostModel(kind);
    const std::string store_name = head_info.store_name;

    if (kind == StoreKind::kRelational && !head_info.scatter) {
      // -- Largest delegatable subquery: one SPJ over all group atoms.
      stores::SpjQuery q;
      std::unordered_map<std::string,
                         stores::SpjQuery::ColumnRef> var_first;
      auto indexed = [](const AtomInfo& ai, size_t pos) {
        const auto& ad = ai.fragment->view.adornments;
        if (pos < ad.size() && ad[pos] == Adornment::kInput) return true;
        for (size_t p : ai.fragment->index_positions) {
          if (p == pos) return true;
        }
        return false;
      };
      double est = 1;
      double scanned = 0;
      for (size_t gi = 0; gi < group.size(); ++gi) {
        const AtomInfo& info = infos[group[gi]];
        std::string alias = StrCat("a", gi);
        q.from.push_back({info.container, alias});
        std::vector<std::string> cols =
            catalog::FragmentColumnNames(info.fragment->view);
        const double atom_rows = std::max<double>(
            1.0, static_cast<double>(info.fragment->stats.row_count));
        est *= atom_rows;
        // An indexed equality (filter or in-group join) narrows the
        // atom's scan to the matching rows; otherwise it is a full pass.
        double atom_scanned = atom_rows;
        for (size_t i = 0; i < info.atom->arity(); ++i) {
          const bool eq_access =
              info.ground[i].has_value() ||
              (!info.var[i].empty() && var_first.count(info.var[i]));
          if (eq_access && indexed(info, i)) {
            atom_scanned = std::min(
                atom_scanned,
                atom_rows * info.fragment->stats.EqualitySelectivity(i));
          }
        }
        scanned += atom_scanned;
        for (size_t i = 0; i < info.atom->arity(); ++i) {
          stores::SpjQuery::ColumnRef ref{alias, cols[i]};
          q.select.push_back(ref);
          cg.out_names.push_back(StrCat(alias, ".", cols[i]));
          cg.out_vars.push_back(info.var[i]);
          cg.out_distinct.push_back(static_cast<double>(
              i < info.fragment->stats.distinct.size()
                  ? info.fragment->stats.distinct[i]
                  : 0));
          if (info.ground[i].has_value()) {
            q.filters.push_back({ref, *info.ground[i]});
            est *= info.fragment->stats.EqualitySelectivity(i);
          } else if (!info.var[i].empty()) {
            auto [it, fresh] = var_first.emplace(info.var[i], ref);
            if (!fresh) {
              q.joins.push_back({it->second, ref});
              est *= info.fragment->stats.EqualitySelectivity(i);
            }
          }
        }
      }
      cg.est_out_rows = std::max(est, 0.0);
      cg.access_cost = cost.per_op + cost.per_row * scanned +
                       cost.per_ret * cg.est_out_rows;
      if (!build) {
        compiled.push_back(std::move(cg));
        continue;
      }
      cg.desc = StrCat(store_name, ": ", q.ToString());
      stores::RelationalStore* store = head_info.store->relational;
      // Relational columns that persist nested lists as JSON text and
      // must be parsed back (output column index, group-wide).
      std::vector<size_t> list_cols;
      {
        size_t off = 0;
        for (size_t gi = 0; gi < group.size(); ++gi) {
          const AtomInfo& ai = infos[group[gi]];
          for (size_t i = 0; i < ai.atom->arity(); ++i) {
            if (i < ai.fragment->list_column.size() &&
                ai.fragment->list_column[i]) {
              list_cols.push_back(off + i);
            }
          }
          off += ai.atom->arity();
        }
      }
      cg.fetch = [store, q, runtime, store_name, list_cols](
                     const Row&) -> Result<std::vector<Row>> {
        ESTOCADA_ASSIGN_OR_RETURN(
            std::vector<Row> rows,
            store->Execute(q, &runtime->per_store[store_name]));
        for (Row& row : rows) {
          for (size_t c : list_cols) {
            if (row[c].is_string()) {
              ESTOCADA_ASSIGN_OR_RETURN(Value parsed,
                                        ParseStoredJson(row[c].string_value()));
              row[c] = std::move(parsed);
            }
          }
        }
        return rows;
      };
      compiled.push_back(std::move(cg));
      continue;
    }

    // -- Single-atom groups.
    const AtomInfo& info = head_info;
    const size_t arity = info.atom->arity();
    std::vector<std::string> cols =
        catalog::FragmentColumnNames(info.fragment->view);
    cg.out_names = cols;
    cg.out_vars = info.var;
    for (size_t i = 0; i < arity; ++i) {
      cg.out_distinct.push_back(static_cast<double>(
          i < info.fragment->stats.distinct.size()
              ? info.fragment->stats.distinct[i]
              : 0));
    }
    // Needed variables: input-adorned positions holding a free variable.
    std::vector<size_t> needed_positions;
    const auto& adorn = info.fragment->view.adornments;
    for (size_t i = 0; i < arity; ++i) {
      if (i < adorn.size() && adorn[i] == Adornment::kInput &&
          !info.var[i].empty() &&
          // If the same variable repeats and an earlier position binds
          // it, the post-check handles consistency.
          std::find(cg.needed_vars.begin(), cg.needed_vars.end(),
                    info.var[i]) == cg.needed_vars.end()) {
        needed_positions.push_back(i);
        cg.needed_vars.push_back(info.var[i]);
      }
    }
    double sel = 1;
    for (size_t i = 0; i < arity; ++i) {
      if (info.ground[i].has_value()) {
        sel *= info.fragment->stats.EqualitySelectivity(i);
      }
    }
    for (size_t p : needed_positions) {
      sel *= info.fragment->stats.EqualitySelectivity(p);
    }
    const double rows_total =
        static_cast<double>(info.fragment->stats.row_count);
    cg.est_out_rows = std::max(rows_total * sel, 0.0);
    if (!info.scatter) {
      ESTOCADA_ASSIGN_OR_RETURN(
          SingleAtomAccess access,
          CompileSingleAtomAccess(info, needed_positions, cg.needed_vars,
                                  rows_total, cg.est_out_rows, runtime,
                                  build));
      cg.fetch = std::move(access.fetch);
      cg.batch_fetch = std::move(access.batch_fetch);
      cg.graph_stream = std::move(access.graph_stream);
      cg.graph_reset = std::move(access.graph_reset);
      cg.access_cost = access.access_cost;
      cg.desc = std::move(access.desc);
    } else {
      // Scatter: compile one access per shard against its routed replica.
      const catalog::PartitionSpec& spec = info.fragment->partition;
      const double shard_div = static_cast<double>(spec.shards);
      double total_cost = 0;
      for (size_t s = 0; s < spec.shards; ++s) {
        AtomInfo si = info;
        si.store = info.shard_stores[s];
        si.store_name = info.shard_placements[s].store_name;
        si.container = info.shard_placements[s].container;
        // Pre-insert the per-store stats slot now: concurrent shard
        // fetches then only ever *find* entries, never grow the map.
        runtime->per_store[si.store_name];
        ESTOCADA_ASSIGN_OR_RETURN(
            SingleAtomAccess access,
            CompileSingleAtomAccess(
                si, needed_positions, cg.needed_vars,
                std::max(rows_total / shard_div, 1.0),
                std::max(cg.est_out_rows / shard_div, 0.0), runtime, build));
        total_cost += access.access_cost;
        if (s == 0 && build) {
          cg.desc = StrCat("scatter[", spec.shards, " shards] ", access.desc);
        }
        cg.shard_fetches.push_back(std::move(access.fetch));
        cg.shard_keys.push_back(si.store_name);
      }
      cg.access_cost = total_cost;
      // When the partition key arrives as a BindJoin binding, every call
      // routes to exactly one shard (dynamic pruning).
      int key_idx = -1;
      for (size_t i = 0; i < needed_positions.size(); ++i) {
        if (needed_positions[i] == spec.key_position) {
          key_idx = static_cast<int>(i);
        }
      }
      std::vector<engine::BindJoinOperator::Fetch> fetches;
      if (build) fetches = cg.shard_fetches;
      if (key_idx >= 0) {
        if (build) {
          const catalog::PartitionSpec spec_copy = spec;
          const size_t ki = static_cast<size_t>(key_idx);
          cg.fetch = [fetches, spec_copy, ki](const Row& binding)
              -> Result<std::vector<Row>> {
            return fetches[spec_copy.ShardOf(binding[ki])](binding);
          };
        }
        // A bound key prunes to one shard, so charge one shard's access.
        cg.access_cost = total_cost / shard_div;
      } else if (build) {
        // No key in the binding: each call must consult every shard
        // (sequential here; standalone sources get ScatterGatherOperator).
        cg.fetch = [fetches](const Row& binding) -> Result<std::vector<Row>> {
          std::vector<Row> all;
          for (const auto& f : fetches) {
            ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> part, f(binding));
            all.insert(all.end(), std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
          }
          return all;
        };
      }
    }
    compiled.push_back(std::move(cg));
  }

  // ---- Stitch groups with hash joins / bind joins. In estimate mode
  // the same walk runs — scope/width bookkeeping, NoRewriting checks and
  // cost arithmetic are all shared — but no operators are constructed.
  OperatorPtr tree;
  bool first_group = true;
  std::unordered_map<std::string, size_t> scope;  // var -> column index
  size_t width = 0;
  double est_rows = 1;
  double est_cost = 0;

  for (CompiledGroup& cg : compiled) {
    plan.delegated.push_back(cg.desc);
    // Builds the source operator for a group that takes no outer bindings:
    // scatter groups fan their per-shard fetches out over the scatter pool
    // (gathered in shard order — deterministic); everything else is a
    // plain lazy callback scan.
    auto make_source = [&cg]() -> OperatorPtr {
      if (cg.shard_fetches.size() > 1) {
        std::vector<engine::ScatterGatherOperator::Fetch> shard_runs;
        shard_runs.reserve(cg.shard_fetches.size());
        for (const auto& f : cg.shard_fetches) {
          shard_runs.push_back([f]() { return f(Row{}); });
        }
        return std::make_unique<engine::ScatterGatherOperator>(
            cg.out_names, std::move(shard_runs), cg.shard_keys, cg.desc,
            ScatterPool());
      }
      if (cg.graph_stream) {
        return std::make_unique<engine::GraphFetchOperator>(
            cg.out_names, cg.graph_reset, cg.graph_stream, cg.desc);
      }
      auto fetch = cg.fetch;
      return std::make_unique<engine::CallbackScanOperator>(
          cg.out_names, [fetch]() { return fetch(Row{}); }, cg.desc);
    };
    // Join selectivity for shared output variables (not used as binding).
    auto shared_selectivity = [&]() {
      double sel = 1;
      std::unordered_set<std::string> counted;
      for (size_t i = 0; i < cg.out_vars.size(); ++i) {
        const std::string& v = cg.out_vars[i];
        if (v.empty() || !scope.count(v)) continue;
        if (std::find(cg.needed_vars.begin(), cg.needed_vars.end(), v) !=
            cg.needed_vars.end()) {
          continue;
        }
        if (!counted.insert(v).second) continue;
        sel *= cg.out_distinct[i] > 0 ? 1.0 / cg.out_distinct[i] : 0.1;
      }
      return sel;
    };

    if (first_group) {
      if (!cg.needed_vars.empty()) {
        return Status::NoRewriting(
            StrCat("first group of plan needs outer bindings (",
                   StrJoin(cg.needed_vars, ", "), ")"));
      }
      if (build) tree = make_source();
      est_cost += cg.access_cost;
      est_rows = cg.est_out_rows;
    } else if (!cg.needed_vars.empty()) {
      // BindJoin: feed scope values into the access-restricted source.
      std::vector<size_t> bind_cols;
      for (const std::string& v : cg.needed_vars) {
        auto it = scope.find(v);
        if (it == scope.end()) {
          return Status::NoRewriting(
              StrCat("binding variable '", v, "' not available in scope"));
        }
        bind_cols.push_back(it->second);
      }
      if (build) {
        auto bind_join = std::make_unique<engine::BindJoinOperator>(
            std::move(tree), bind_cols, cg.out_names, cg.fetch, cg.desc);
        if (cg.batch_fetch) bind_join->set_batch_fetch(cg.batch_fetch);
        tree = std::move(bind_join);
      }
      // Equality post-filters for shared vars that are plain outputs.
      if (build) {
        ExprPtr post;
        for (size_t i = 0; i < cg.out_vars.size(); ++i) {
          const std::string& v = cg.out_vars[i];
          if (v.empty() || !scope.count(v)) continue;
          if (std::find(cg.needed_vars.begin(), cg.needed_vars.end(), v) !=
              cg.needed_vars.end()) {
            continue;
          }
          ExprPtr clause = Expr::Binary(Expr::Op::kEq,
                                        Expr::Column(scope[v]),
                                        Expr::Column(width + i));
          post = post ? Expr::Binary(Expr::Op::kAnd, post, clause) : clause;
        }
        if (post) {
          tree = std::make_unique<engine::FilterOperator>(std::move(tree),
                                                          post);
        }
      }
      est_cost += est_rows * cg.access_cost;
      est_rows = est_rows * cg.est_out_rows * shared_selectivity();
    } else {
      // Self-contained group: hash join on shared variables.
      if (build) {
        OperatorPtr source = make_source();
        std::vector<std::pair<size_t, size_t>> keys;
        std::unordered_set<std::string> keyed;
        for (size_t i = 0; i < cg.out_vars.size(); ++i) {
          const std::string& v = cg.out_vars[i];
          if (v.empty() || !scope.count(v)) continue;
          if (!keyed.insert(v).second) continue;
          keys.emplace_back(scope[v], i);
        }
        tree = std::make_unique<engine::HashJoinOperator>(std::move(tree),
                                                          std::move(source),
                                                          keys);
      }
      est_cost += cg.access_cost;
      est_rows = est_rows * cg.est_out_rows * shared_selectivity();
    }
    first_group = false;
    // Extend the variable scope with this group's fresh outputs.
    for (size_t i = 0; i < cg.out_vars.size(); ++i) {
      const std::string& v = cg.out_vars[i];
      if (!v.empty()) scope.emplace(v, width + i);
    }
    width += cg.out_vars.size();
  }

  // ---- Head projection (+ set semantics).
  std::vector<std::string> names;
  std::vector<ExprPtr> exprs;
  for (size_t i = 0; i < rewriting.head.size(); ++i) {
    const Term& h = rewriting.head[i];
    if (h.is_constant()) {
      names.push_back(StrCat("h", i));
      exprs.push_back(Expr::Const(Value::FromConstant(h.constant())));
    } else if (h.is_variable() &&
               pacb::IsParameterVariable(h.var_name())) {
      auto it = parameters.find(h.var_name());
      if (it == parameters.end()) {
        return Status::InvalidArgument(
            StrCat("no value supplied for parameter ", h.var_name()));
      }
      names.push_back(h.var_name().substr(1));
      exprs.push_back(Expr::Const(it->second));
    } else if (h.is_variable()) {
      auto it = scope.find(h.var_name());
      if (it == scope.end()) {
        return Status::InvalidArgument(
            StrCat("head variable '", h.var_name(), "' not produced"));
      }
      names.push_back(h.var_name());
      exprs.push_back(Expr::Column(it->second));
    } else {
      return Status::InvalidArgument("unsupported rewriting head term");
    }
  }
  if (build) {
    tree = std::make_unique<engine::ProjectOperator>(std::move(tree), names,
                                                     exprs);
    tree = std::make_unique<engine::DistinctOperator>(std::move(tree));
    plan.root = std::move(tree);
  }
  plan.estimated_cost = est_cost;
  plan.estimated_rows = est_rows;
  return plan;
}

}  // namespace estocada::rewriting
