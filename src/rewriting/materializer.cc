#include "rewriting/materializer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>

#include "common/strings.h"

namespace estocada::rewriting {

using catalog::Catalog;
using catalog::FragmentStatistics;
using catalog::StorageDescriptor;
using catalog::StoreHandle;
using catalog::StoreKind;
using engine::Row;
using engine::Value;
using pivot::Adornment;

namespace {

stores::ColumnType InferColumnType(const std::vector<Row>& rows, size_t col) {
  for (const Row& r : rows) {
    const Value& v = r[col];
    if (v.is_null()) continue;
    if (v.is_int()) return stores::ColumnType::kInt;
    if (v.is_real()) return stores::ColumnType::kReal;
    if (v.is_bool()) return stores::ColumnType::kBool;
    return stores::ColumnType::kStr;
  }
  // No data to infer from (empty view at materialization time): stay
  // open to whatever incremental maintenance appends later.
  return stores::ColumnType::kAny;
}

/// Lists cannot live in a relational column; serialize them to JSON text.
Value FlattenForRelational(const Value& v) {
  if (v.is_list()) return Value::Str(v.ToJson().Serialize());
  return v;
}

FragmentStatistics ComputeStatistics(const std::vector<Row>& rows,
                                     size_t arity) {
  FragmentStatistics stats;
  stats.row_count = rows.size();
  stats.distinct.assign(arity, 0);
  for (size_t c = 0; c < arity; ++c) {
    std::unordered_set<size_t> hashes;
    for (const Row& r : rows) hashes.insert(r[c].Hash());
    stats.distinct[c] = hashes.size();
  }
  return stats;
}

/// Input-adorned positions of the fragment's stored relation.
std::vector<size_t> InputPositions(const pacb::ViewDefinition& view) {
  std::vector<size_t> out;
  for (size_t i = 0; i < view.adornments.size(); ++i) {
    if (view.adornments[i] == Adornment::kInput) out.push_back(i);
  }
  return out;
}

/// Positions to index: input-adorned ones plus the descriptor's explicit
/// index_positions (deduplicated, sorted).
std::vector<size_t> IndexPositions(const StorageDescriptor& desc) {
  std::set<size_t> positions;
  for (size_t p : InputPositions(desc.view)) positions.insert(p);
  for (size_t p : desc.index_positions) positions.insert(p);
  return {positions.begin(), positions.end()};
}

Status LoadRelational(stores::RelationalStore* store,
                      const StorageDescriptor& desc,
                      const std::string& container,
                      const std::vector<Row>& rows,
                      const std::vector<std::string>& columns) {
  std::vector<stores::ColumnDef> defs;
  for (size_t c = 0; c < columns.size(); ++c) {
    defs.push_back({columns[c], InferColumnType(rows, c)});
  }
  ESTOCADA_RETURN_NOT_OK(store->CreateTable(container, defs));
  for (const Row& row : rows) {
    Row flat;
    flat.reserve(row.size());
    for (const Value& v : row) flat.push_back(FlattenForRelational(v));
    ESTOCADA_RETURN_NOT_OK(store->Insert(container, std::move(flat)));
  }
  // Index the declared fast access paths.
  for (size_t pos : IndexPositions(desc)) {
    ESTOCADA_RETURN_NOT_OK(store->CreateIndex(container, columns[pos]));
  }
  return Status::OK();
}

Status LoadKeyValue(stores::KeyValueStore* store, const std::string& container,
                    const std::vector<Row>& rows) {
  ESTOCADA_RETURN_NOT_OK(store->CreateCollection(container));
  // The payload under each key is the JSON *list of rows* sharing that
  // key (a key position need not be unique — e.g. an advisor-made
  // fragment keyed by product category).
  std::map<std::string, Value> grouped;
  for (const Row& row : rows) {
    std::string key = row[0].ToJson().Serialize();
    auto [it, fresh] = grouped.emplace(key, Value::List({}));
    it->second.mutable_list().push_back(Value::List(row));
  }
  // One pre-sized bulk load + verify instead of per-key Puts; the charge
  // is identical (one op + one index touch per key) so migration cost
  // accounting is unchanged.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(grouped.size());
  for (const auto& [key, payload] : grouped) {
    entries.emplace_back(key, payload.ToJson().Serialize());
  }
  return store->BulkLoad(container, entries);
}

Status LoadDocument(stores::DocumentStore* store,
                    const StorageDescriptor& desc,
                    const std::string& container,
                    const std::vector<Row>& rows) {
  ESTOCADA_RETURN_NOT_OK(store->CreateCollection(container));
  size_t n = 0;
  for (const Row& row : rows) {
    json::JsonValue doc = json::JsonValue::MakeObject();
    doc.Set("_id", json::JsonValue::Str(StrCat("r", n++)));
    for (size_t c = 0; c < row.size(); ++c) {
      doc.Set(StrCat("f", c), row[c].ToJson());
    }
    ESTOCADA_RETURN_NOT_OK(store->Insert(container, doc).status());
  }
  // Path indexes on the declared fast access paths.
  for (size_t pos : IndexPositions(desc)) {
    ESTOCADA_RETURN_NOT_OK(
        store->CreatePathIndex(container, StrCat("f", pos)));
  }
  return Status::OK();
}

Status LoadParallel(stores::ParallelStore* store,
                    const StorageDescriptor& desc,
                    const std::string& container,
                    const std::vector<Row>& rows, size_t arity) {
  ESTOCADA_RETURN_NOT_OK(store->CreateRelation(container, arity));
  ESTOCADA_RETURN_NOT_OK(store->InsertBatch(container, rows));
  std::vector<size_t> inputs = InputPositions(desc.view);
  if (inputs.empty()) inputs = desc.index_positions;
  if (!inputs.empty()) {
    ESTOCADA_RETURN_NOT_OK(store->CreateIndex(container, inputs));
  }
  return Status::OK();
}

Status LoadText(stores::TextStore* store, const StorageDescriptor& desc,
                const std::string& container, const std::vector<Row>& rows,
                size_t arity) {
  if (arity != 2) {
    return Status::InvalidArgument(
        StrCat("text fragment '", desc.name(),
               "' must have arity 2 (docID, term), got ", arity));
  }
  ESTOCADA_RETURN_NOT_OK(store->CreateCore(container));
  // Group terms per document id.
  std::map<std::string, std::string> text_per_doc;
  for (const Row& row : rows) {
    std::string id = row[0].ToJson().Serialize();
    std::string term = row[1].is_string() ? row[1].string_value()
                                          : row[1].ToString();
    std::string& text = text_per_doc[id];
    if (!text.empty()) text += ' ';
    text += term;
  }
  for (const auto& [id, text] : text_per_doc) {
    ESTOCADA_RETURN_NOT_OK(store->AddDocument(container, id, {{"text", text}}));
  }
  return Status::OK();
}

Status LoadGraph(stores::GraphStore* store, const std::string& container,
                 const std::vector<Row>& rows, size_t arity) {
  // Adjacency indexes (first/last position, labeled composites) are
  // built-in; declared index_positions need no extra work.
  ESTOCADA_RETURN_NOT_OK(store->CreateGraph(container, arity));
  return store->InsertBatch(container, rows);
}

/// Dispatches a Load* call for the store kind (creation + bulk load +
/// indexes) into one replica's container. `rows` may be empty: the
/// container is then created with open column types, ready for appends.
Status LoadFragment(const StoreHandle& store, const StorageDescriptor& desc,
                    const std::string& container, const std::vector<Row>& rows,
                    const std::vector<std::string>& columns, size_t arity) {
  switch (store.kind) {
    case StoreKind::kRelational:
      return LoadRelational(store.relational, desc, container, rows, columns);
    case StoreKind::kKeyValue:
      return LoadKeyValue(store.kv, container, rows);
    case StoreKind::kDocument:
      return LoadDocument(store.document, desc, container, rows);
    case StoreKind::kParallel:
      return LoadParallel(store.parallel, desc, container, rows, arity);
    case StoreKind::kText:
      return LoadText(store.text, desc, container, rows, arity);
    case StoreKind::kGraph:
      return LoadGraph(store.graph, container, rows, arity);
  }
  return Status::Internal("unknown store kind");
}

/// The placement of replica `idx` — synthesized from the legacy fields
/// for descriptors that predate replica normalization.
catalog::ReplicaPlacement PlacementOf(const StorageDescriptor& desc,
                                      size_t idx) {
  if (desc.replicas.empty()) {
    return {desc.store_name, desc.container, desc.write_epoch, false};
  }
  return desc.replicas[idx];
}

/// Splits evaluated view rows into per-shard buckets by the partition key.
std::vector<std::vector<Row>> SplitByShard(const StorageDescriptor& desc,
                                           const std::vector<Row>& rows) {
  std::vector<std::vector<Row>> buckets(desc.partition.shards);
  for (const Row& row : rows) {
    buckets[desc.partition.ShardOf(row[desc.partition.key_position])]
        .push_back(row);
  }
  return buckets;
}

Status DropContainer(const StoreHandle& store, const std::string& container) {
  switch (store.kind) {
    case StoreKind::kRelational:
      return store.relational->DropTable(container);
    case StoreKind::kKeyValue:
      return store.kv->DropCollection(container);
    case StoreKind::kDocument:
      return store.document->DropCollection(container);
    case StoreKind::kParallel:
      return store.parallel->DropRelation(container);
    case StoreKind::kText:
      return store.text->DropCore(container);
    case StoreKind::kGraph:
      return store.graph->DropGraph(container);
  }
  return Status::Internal("unknown store kind");
}

}  // namespace

Status CreateFragmentContainer(Catalog* catalog,
                               const std::string& fragment_name) {
  ESTOCADA_ASSIGN_OR_RETURN(StorageDescriptor * desc,
                            catalog->GetMutableFragment(fragment_name));
  const size_t arity = desc->view.arity();
  std::vector<std::string> columns = catalog::FragmentColumnNames(desc->view);
  if (desc->partitioned()) {
    for (const catalog::ShardState& shard : desc->shards) {
      for (const catalog::ReplicaPlacement& p : shard.replicas) {
        ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                                  catalog->GetStore(p.store_name));
        ESTOCADA_RETURN_NOT_OK(
            LoadFragment(*store, *desc, p.container, {}, columns, arity));
      }
    }
  } else {
    for (size_t i = 0; i < desc->replica_count(); ++i) {
      catalog::ReplicaPlacement p = PlacementOf(*desc, i);
      ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                                catalog->GetStore(p.store_name));
      ESTOCADA_RETURN_NOT_OK(
          LoadFragment(*store, *desc, p.container, {}, columns, arity));
    }
  }
  desc->stats = FragmentStatistics{};
  desc->stats.distinct.assign(arity, 0);
  desc->list_column.assign(arity, false);
  return Status::OK();
}

Status MaterializeFragment(const StagingData& staging, Catalog* catalog,
                           const std::string& fragment_name) {
  ESTOCADA_ASSIGN_OR_RETURN(StorageDescriptor * desc,
                            catalog->GetMutableFragment(fragment_name));
  // Evaluate the view over the staged dataset (set semantics: a
  // materialized view holds each tuple once).
  ESTOCADA_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      EvaluateCqOverStaging(desc->view.query, staging, {}, true));
  const size_t arity = desc->view.arity();
  std::vector<std::string> columns = catalog::FragmentColumnNames(desc->view);
  // The load is strict: every replica must materialize (unlike the
  // append fan-out, which tolerates stale minorities). Replicas marked
  // rebuilding are skipped — the ReplicaRepairer owns their containers
  // (this path doubles as the full-rebuild step of text maintenance).
  if (desc->partitioned()) {
    // Partitioned layout: each shard container receives exactly its
    // bucket of the view extent, every replica of the shard gets the
    // same bucket, and each shard's replica epochs snap to that shard's
    // write epoch.
    std::vector<std::vector<Row>> buckets = SplitByShard(*desc, rows);
    for (size_t s = 0; s < desc->shards.size(); ++s) {
      catalog::ShardState& shard = desc->shards[s];
      for (catalog::ReplicaPlacement& r : shard.replicas) {
        if (r.rebuilding) continue;
        ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                                  catalog->GetStore(r.store_name));
        ESTOCADA_RETURN_NOT_OK(
            LoadFragment(*store, *desc, r.container, buckets[s], columns,
                         arity));
        r.epoch = shard.write_epoch;
      }
    }
  } else {
    for (size_t i = 0; i < desc->replica_count(); ++i) {
      catalog::ReplicaPlacement p = PlacementOf(*desc, i);
      if (p.rebuilding) continue;
      ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                                catalog->GetStore(p.store_name));
      ESTOCADA_RETURN_NOT_OK(
          LoadFragment(*store, *desc, p.container, rows, columns, arity));
    }
    for (auto& r : desc->replicas) {
      if (r.rebuilding) continue;
      r.epoch = desc->write_epoch;
    }
  }
  desc->stats = ComputeStatistics(rows, arity);
  desc->list_column.assign(arity, false);
  for (const Row& row : rows) {
    for (size_t c = 0; c < arity; ++c) {
      if (row[c].is_list()) desc->list_column[c] = true;
    }
  }
  return Status::OK();
}

namespace {

/// Appends freshly derived view rows to one replica container. Leaves the
/// descriptor's statistics untouched — callers account a logical append
/// exactly once, however many replicas received it. `doc_id_base` seeds
/// the synthetic _id counter of document containers.
Status AppendRowsToContainer(const StoreHandle& store,
                             const std::string& container, size_t doc_id_base,
                             const std::vector<Row>& rows) {
  switch (store.kind) {
    case StoreKind::kRelational:
      for (const Row& row : rows) {
        Row flat;
        flat.reserve(row.size());
        for (const Value& v : row) flat.push_back(FlattenForRelational(v));
        ESTOCADA_RETURN_NOT_OK(
            store.relational->Insert(container, std::move(flat)));
      }
      break;
    case StoreKind::kKeyValue: {
      // Read-modify-write of the per-key row-list payloads.
      std::map<std::string, std::vector<Row>> by_key;
      for (const Row& row : rows) {
        by_key[row[0].ToJson().Serialize()].push_back(row);
      }
      for (const auto& [key, new_rows] : by_key) {
        Value payload = Value::List({});
        auto existing = store.kv->Get(container, key);
        if (existing.ok()) {
          ESTOCADA_ASSIGN_OR_RETURN(json::JsonValue parsed,
                                    json::Parse(*existing));
          payload = Value::FromJson(parsed);
          if (!payload.is_list()) {
            return Status::Internal("corrupt KV fragment payload");
          }
        } else if (existing.status().code() != StatusCode::kNotFound) {
          return existing.status();
        }
        for (const Row& row : new_rows) {
          payload.mutable_list().push_back(Value::List(row));
        }
        ESTOCADA_RETURN_NOT_OK(
            store.kv->Put(container, key, payload.ToJson().Serialize()));
      }
      break;
    }
    case StoreKind::kDocument: {
      size_t n = doc_id_base;
      for (const Row& row : rows) {
        json::JsonValue doc = json::JsonValue::MakeObject();
        doc.Set("_id", json::JsonValue::Str(StrCat("r", n++)));
        for (size_t c = 0; c < row.size(); ++c) {
          doc.Set(StrCat("f", c), row[c].ToJson());
        }
        ESTOCADA_RETURN_NOT_OK(store.document->Insert(container, doc).status());
      }
      break;
    }
    case StoreKind::kParallel:
      ESTOCADA_RETURN_NOT_OK(store.parallel->InsertBatch(container, rows));
      break;
    case StoreKind::kText:
      return Status::Unsupported("text fragments are rebuilt, not appended");
    case StoreKind::kGraph:
      ESTOCADA_RETURN_NOT_OK(store.graph->InsertBatch(container, rows));
      break;
  }
  return Status::OK();
}

/// The write fan-out: appends `rows` to every replica that is fresh and
/// not mid-rebuild, bumping the write epoch once for the logical
/// mutation. Replicas that take the write advance to the new epoch;
/// replicas that fail (dead store) are left behind — stale, excluded
/// from routing, queued for the repairer. When *no* replica takes the
/// write the epoch bump is rolled back and the first error surfaces, so
/// an unreplicated fragment behaves exactly as before.
/// One shard's write fan-out: same contract as the whole-fragment
/// FanOutAppend below, but against the shard's own replica set and write
/// epoch (epochs are per shard so untouched shards never look stale).
Status FanOutAppendShard(Catalog* catalog, StorageDescriptor* desc,
                         size_t shard_idx, const std::vector<Row>& rows) {
  catalog::ShardState& shard = desc->shards[shard_idx];
  const uint64_t old_epoch = shard.write_epoch;
  const uint64_t new_epoch = old_epoch + 1;
  shard.write_epoch = new_epoch;
  size_t successes = 0;
  Status first_error = Status::OK();
  for (catalog::ReplicaPlacement& r : shard.replicas) {
    if (r.rebuilding || r.epoch != old_epoch) continue;
    auto store = catalog->GetStore(r.store_name);
    Status st = store.ok() ? AppendRowsToContainer(**store, r.container,
                                                   desc->stats.row_count, rows)
                           : store.status();
    if (st.ok()) {
      r.epoch = new_epoch;
      ++successes;
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  if (successes == 0) {
    shard.write_epoch = old_epoch;
    return first_error.ok()
               ? Status::Unavailable(
                     StrCat("fragment '", desc->name(), "' shard ", shard_idx,
                            " has no writable replica (all rebuilding or "
                            "stale)"))
               : first_error;
  }
  return Status::OK();
}

Status FanOutAppend(Catalog* catalog, StorageDescriptor* desc,
                    const std::vector<Row>& rows) {
  if (desc->partitioned()) {
    // Partition-aware write routing: each row lands only on the shard
    // owning its partition-key value. A shard whose entire replica set
    // rejects the write fails the call; shards that already took their
    // buckets keep them (their epochs advanced consistently), which is
    // sound under set semantics — re-running the append is a no-op for
    // query answers.
    std::vector<std::vector<Row>> buckets = SplitByShard(*desc, rows);
    for (size_t s = 0; s < buckets.size(); ++s) {
      if (buckets[s].empty()) continue;
      ESTOCADA_RETURN_NOT_OK(FanOutAppendShard(catalog, desc, s, buckets[s]));
    }
    desc->stats.row_count += rows.size();
    return Status::OK();
  }
  const uint64_t old_epoch = desc->write_epoch;
  const uint64_t new_epoch = old_epoch + 1;
  // Snapshot placements before the bump: PlacementOf synthesizes the
  // primary's epoch from write_epoch when the replica vector is empty.
  std::vector<catalog::ReplicaPlacement> placements;
  placements.reserve(desc->replica_count());
  for (size_t i = 0; i < desc->replica_count(); ++i) {
    placements.push_back(PlacementOf(*desc, i));
  }
  desc->write_epoch = new_epoch;
  size_t successes = 0;
  Status first_error = Status::OK();
  for (size_t i = 0; i < placements.size(); ++i) {
    const catalog::ReplicaPlacement& p = placements[i];
    if (p.rebuilding || p.epoch != old_epoch) continue;
    auto store = catalog->GetStore(p.store_name);
    Status st = store.ok() ? AppendRowsToContainer(**store, p.container,
                                                   desc->stats.row_count, rows)
                           : store.status();
    if (st.ok()) {
      if (!desc->replicas.empty()) desc->replicas[i].epoch = new_epoch;
      ++successes;
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  if (successes == 0) {
    desc->write_epoch = old_epoch;
    return first_error.ok()
               ? Status::Unavailable(
                     StrCat("fragment '", desc->name(),
                            "' has no writable replica (all rebuilding or "
                            "stale)"))
               : first_error;
  }
  desc->stats.row_count += rows.size();
  return Status::OK();
}

}  // namespace

Status AppendToFragment(Catalog* catalog, const std::string& fragment_name,
                        const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  ESTOCADA_ASSIGN_OR_RETURN(StorageDescriptor * desc,
                            catalog->GetMutableFragment(fragment_name));
  const size_t arity = desc->view.arity();
  for (const Row& row : rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument(
          StrCat("fragment '", fragment_name, "' has arity ", arity,
                 "; cannot append a row of ", row.size(), " values"));
    }
  }
  if (desc->list_column.size() < arity) desc->list_column.resize(arity, false);
  for (const Row& row : rows) {
    for (size_t c = 0; c < arity; ++c) {
      if (row[c].is_list()) desc->list_column[c] = true;
    }
  }
  return FanOutAppend(catalog, desc, rows);
}

namespace {

/// Reads a fragment's rows back out of one replica's container.
Result<std::vector<Row>> ReadContainerRows(const StoreHandle& store,
                                           const StorageDescriptor& desc,
                                           const std::string& container) {
  const std::string& fragment_name = desc.name();
  const size_t arity = desc.view.arity();
  std::vector<Row> out;
  switch (store.kind) {
    case StoreKind::kRelational: {
      ESTOCADA_ASSIGN_OR_RETURN(out, store.relational->Scan(container));
      // Undo the list-to-JSON-text flattening of the load layout.
      for (Row& row : out) {
        for (size_t c = 0; c < row.size() && c < desc.list_column.size();
             ++c) {
          if (!desc.list_column[c] || !row[c].is_string()) continue;
          ESTOCADA_ASSIGN_OR_RETURN(json::JsonValue parsed,
                                    json::Parse(row[c].string_value()));
          row[c] = Value::FromJson(parsed);
        }
      }
      return out;
    }
    case StoreKind::kKeyValue: {
      ESTOCADA_ASSIGN_OR_RETURN(auto pairs, store.kv->Scan(container));
      for (const auto& [key, payload] : pairs) {
        ESTOCADA_ASSIGN_OR_RETURN(json::JsonValue parsed,
                                  json::Parse(payload));
        Value rows_value = Value::FromJson(parsed);
        if (!rows_value.is_list()) {
          return Status::Internal("corrupt KV fragment payload");
        }
        for (const Value& row_value : rows_value.list()) {
          if (!row_value.is_list() || row_value.list().size() != arity) {
            return Status::Internal("corrupt KV fragment row");
          }
          out.emplace_back(row_value.list().begin(), row_value.list().end());
        }
      }
      return out;
    }
    case StoreKind::kDocument: {
      ESTOCADA_ASSIGN_OR_RETURN(auto docs, store.document->Find(container, {}));
      for (const json::JsonValue& doc : docs) {
        Row row;
        row.reserve(arity);
        for (size_t c = 0; c < arity; ++c) {
          const json::JsonValue* field = doc.Find(StrCat("f", c));
          if (field == nullptr) {
            return Status::Internal(
                StrCat("document fragment '", fragment_name,
                       "' misses field f", c));
          }
          row.push_back(Value::FromJson(*field));
        }
        out.push_back(std::move(row));
      }
      return out;
    }
    case StoreKind::kParallel:
      return store.parallel->ParallelScan(container, nullptr);
    case StoreKind::kText:
      return Status::Unsupported(
          "text fragments fuse terms per document; row readback is lossy — "
          "use VerifyFragmentAgainstRows");
    case StoreKind::kGraph:
      return store.graph->Scan(container);
  }
  return Status::Internal("unknown store kind");
}

}  // namespace

Result<std::vector<Row>> ReadShardRows(const Catalog& catalog,
                                       const std::string& fragment_name,
                                       size_t shard, size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog.GetFragment(fragment_name));
  if (!desc->partitioned()) {
    return Status::InvalidArgument(
        StrCat("fragment '", fragment_name, "' is not partitioned"));
  }
  if (shard >= desc->shards.size()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' has ",
                                     desc->shards.size(), " shards; no shard ",
                                     shard));
  }
  const catalog::ShardState& ss = desc->shards[shard];
  if (replica >= ss.replicas.size()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' shard ",
                                     shard, " has ", ss.replicas.size(),
                                     " replicas; no replica ", replica));
  }
  const catalog::ReplicaPlacement& p = ss.replicas[replica];
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog.GetStore(p.store_name));
  return ReadContainerRows(*store, *desc, p.container);
}

Result<std::vector<Row>> ReadReplicaRows(const Catalog& catalog,
                                         const std::string& fragment_name,
                                         size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog.GetFragment(fragment_name));
  if (desc->partitioned()) {
    // The whole-fragment extent is the union of the shard containers;
    // a replica index only makes sense per shard, so the whole read is
    // served from each shard's primary copy.
    if (replica != 0) {
      return Status::InvalidArgument(
          StrCat("fragment '", fragment_name,
                 "' is partitioned; read replicas per shard"));
    }
    std::vector<Row> out;
    for (size_t s = 0; s < desc->shards.size(); ++s) {
      ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                ReadShardRows(catalog, fragment_name, s, 0));
      out.insert(out.end(), std::make_move_iterator(rows.begin()),
                 std::make_move_iterator(rows.end()));
    }
    return out;
  }
  if (replica >= desc->replica_count()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' has ",
                                     desc->replica_count(),
                                     " replicas; no replica ", replica));
  }
  catalog::ReplicaPlacement p = PlacementOf(*desc, replica);
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog.GetStore(p.store_name));
  return ReadContainerRows(*store, *desc, p.container);
}

Result<std::vector<Row>> ReadFragmentRows(const Catalog& catalog,
                                          const std::string& fragment_name) {
  return ReadReplicaRows(catalog, fragment_name, 0);
}

namespace {

/// JSON text round trip of a value — exactly what the kv/relational load
/// layouts put a value through, so expected-side rows canonicalize to the
/// representation a correct container reads back as.
Result<Value> JsonTextRoundTrip(const Value& v) {
  ESTOCADA_ASSIGN_OR_RETURN(json::JsonValue parsed,
                            json::Parse(v.ToJson().Serialize()));
  return Value::FromJson(parsed);
}

/// Canonicalizes one expected view row for set comparison against
/// ReadFragmentRows output of a `kind` container.
Result<Row> CanonRowForKind(StoreKind kind, const Row& row) {
  switch (kind) {
    case StoreKind::kRelational: {
      // Only list columns go through JSON text (FlattenForRelational).
      Row out;
      out.reserve(row.size());
      for (const Value& v : row) {
        if (v.is_list()) {
          ESTOCADA_ASSIGN_OR_RETURN(Value rt, JsonTextRoundTrip(v));
          out.push_back(std::move(rt));
        } else {
          out.push_back(v);
        }
      }
      return out;
    }
    case StoreKind::kKeyValue: {
      ESTOCADA_ASSIGN_OR_RETURN(Value rt,
                                JsonTextRoundTrip(Value::List(row)));
      if (!rt.is_list()) return Status::Internal("row round trip lost shape");
      return Row(rt.list().begin(), rt.list().end());
    }
    case StoreKind::kDocument: {
      // The document store keeps JsonValues in memory (no text step).
      Row out;
      out.reserve(row.size());
      for (const Value& v : row) out.push_back(Value::FromJson(v.ToJson()));
      return out;
    }
    case StoreKind::kParallel:
    case StoreKind::kText:
    case StoreKind::kGraph:
      // Values live in memory as engine::Values — no serialization step.
      return row;
  }
  return Status::Internal("unknown store kind");
}

/// Text fragments verify in per-document token space: both sides reduce
/// to {doc id -> sorted multiset of whitespace tokens}.
Status VerifyTextFragment(const StoreHandle& store,
                          const StorageDescriptor& desc,
                          const std::string& container,
                          const std::vector<Row>& expected_rows) {
  auto tokens_of = [](const std::string& text) {
    std::vector<std::string> toks;
    std::string cur;
    for (char ch : text) {
      if (ch == ' ') {
        if (!cur.empty()) toks.push_back(std::move(cur));
        cur.clear();
      } else {
        cur += ch;
      }
    }
    if (!cur.empty()) toks.push_back(std::move(cur));
    std::sort(toks.begin(), toks.end());
    return toks;
  };
  // Expected side, via the same grouping the text load layout applies.
  std::map<std::string, std::string> text_per_doc;
  for (const Row& row : expected_rows) {
    if (row.size() != 2) {
      return Status::InvalidArgument("text fragment rows must be binary");
    }
    std::string id = row[0].ToJson().Serialize();
    std::string term =
        row[1].is_string() ? row[1].string_value() : row[1].ToString();
    std::string& text = text_per_doc[id];
    if (!text.empty()) text += ' ';
    text += term;
  }
  ESTOCADA_ASSIGN_OR_RETURN(size_t count, store.text->DocumentCount(container));
  if (count != text_per_doc.size()) {
    return Status::FailedPrecondition(
        StrCat("text fragment '", desc.name(), "' holds ", count,
               " documents, expected ", text_per_doc.size()));
  }
  for (const auto& [id, text] : text_per_doc) {
    ESTOCADA_ASSIGN_OR_RETURN(auto fields,
                              store.text->GetDocument(container, id));
    auto it = fields.find("text");
    if (it == fields.end() || tokens_of(it->second) != tokens_of(text)) {
      return Status::FailedPrecondition(
          StrCat("text fragment '", desc.name(), "' document ", id,
                 " diverges from the staging truth"));
    }
  }
  return Status::OK();
}

}  // namespace

namespace {

/// Set-compares one placement's container against `expected_rows` (the
/// shared core of the replica- and shard-level verifies).
Status VerifyPlacementAgainstRows(const Catalog& catalog,
                                  const StorageDescriptor& desc,
                                  const catalog::ReplicaPlacement& p,
                                  const std::vector<Row>& expected_rows) {
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog.GetStore(p.store_name));
  if (store->kind == StoreKind::kText) {
    return VerifyTextFragment(*store, desc, p.container, expected_rows);
  }
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> actual,
                            ReadContainerRows(*store, desc, p.container));
  const std::string& fragment_name = desc.name();
  std::set<std::string> actual_set;
  for (const Row& row : actual) actual_set.insert(engine::RowToString(row));
  std::set<std::string> expected_set;
  for (const Row& row : expected_rows) {
    ESTOCADA_ASSIGN_OR_RETURN(Row canon, CanonRowForKind(store->kind, row));
    expected_set.insert(engine::RowToString(canon));
  }
  for (const std::string& r : expected_set) {
    if (!actual_set.count(r)) {
      return Status::FailedPrecondition(
          StrCat("fragment '", fragment_name, "' misses expected row ", r,
                 " (", actual_set.size(), " stored vs ", expected_set.size(),
                 " expected distinct rows)"));
    }
  }
  for (const std::string& r : actual_set) {
    if (!expected_set.count(r)) {
      return Status::FailedPrecondition(
          StrCat("fragment '", fragment_name, "' holds extra row ", r,
                 " absent from the staging truth"));
    }
  }
  return Status::OK();
}

}  // namespace

Status VerifyReplicaAgainstRows(const Catalog& catalog,
                                const std::string& fragment_name,
                                size_t replica,
                                const std::vector<Row>& expected_rows) {
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog.GetFragment(fragment_name));
  if (desc->partitioned()) {
    return Status::InvalidArgument(
        StrCat("fragment '", fragment_name,
               "' is partitioned; use VerifyFragmentAgainstRows"));
  }
  if (replica >= desc->replica_count()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' has ",
                                     desc->replica_count(),
                                     " replicas; no replica ", replica));
  }
  catalog::ReplicaPlacement p = PlacementOf(*desc, replica);
  return VerifyPlacementAgainstRows(catalog, *desc, p, expected_rows);
}

Status VerifyFragmentAgainstRows(const Catalog& catalog,
                                 const std::string& fragment_name,
                                 const std::vector<Row>& expected_rows) {
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog.GetFragment(fragment_name));
  if (desc->partitioned()) {
    // Partition-level check: every fresh, non-rebuilding replica of each
    // shard must hold exactly the shard's bucket of the expected extent —
    // misplaced rows (wrong shard) fail as both a miss and an extra.
    std::vector<std::vector<Row>> buckets = SplitByShard(*desc, expected_rows);
    for (size_t s = 0; s < desc->shards.size(); ++s) {
      const catalog::ShardState& shard = desc->shards[s];
      for (const catalog::ReplicaPlacement& r : shard.replicas) {
        if (r.rebuilding || !r.fresh(shard.write_epoch)) continue;
        Status st = VerifyPlacementAgainstRows(catalog, *desc, r, buckets[s]);
        if (!st.ok()) {
          return Status::FailedPrecondition(StrCat(
              "shard ", s, " @ ", r.store_name, "/", r.container, ": ",
              st.message()));
        }
      }
    }
    return Status::OK();
  }
  return VerifyReplicaAgainstRows(catalog, fragment_name, 0, expected_rows);
}

Status MaintainOneFragmentOnInsertBatch(
    const StagingData& staging, Catalog* catalog,
    const std::string& fragment_name,
    const std::vector<std::pair<std::string, Row>>& new_rows) {
  ESTOCADA_ASSIGN_OR_RETURN(StorageDescriptor * desc,
                            catalog->GetMutableFragment(fragment_name));
  bool affected = false;
  for (const pivot::Atom& a : desc->view.query.body) {
    for (const auto& [relation, row] : new_rows) {
      if (a.relation == relation) {
        affected = true;
        break;
      }
    }
    if (affected) break;
  }
  if (!affected) return Status::OK();
  // Per-document postings are immutable in the text store: a placement
  // there forces the rebuild path for the whole replica set (the rebuild
  // leaves every serving replica fresh, so no epoch bump is needed).
  bool any_text = false;
  if (desc->partitioned()) {
    for (const catalog::ShardState& shard : desc->shards) {
      for (const catalog::ReplicaPlacement& p : shard.replicas) {
        if (p.rebuilding) continue;
        ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* s,
                                  catalog->GetStore(p.store_name));
        if (s->kind == StoreKind::kText) any_text = true;
      }
    }
  } else {
    for (size_t i = 0; i < desc->replica_count(); ++i) {
      catalog::ReplicaPlacement p = PlacementOf(*desc, i);
      if (p.rebuilding) continue;
      ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* s,
                                catalog->GetStore(p.store_name));
      if (s->kind == StoreKind::kText) any_text = true;
    }
  }
  if (any_text) {
    ESTOCADA_RETURN_NOT_OK(DematerializeFragment(catalog, fragment_name));
    return MaterializeFragment(staging, catalog, fragment_name);
  }
  // Delta rule: for each new tuple and each occurrence of its relation
  // in the view body, evaluate the view with that atom pinned to the
  // tuple. Deduplicate across all pins of the batch: several staged
  // rows of one logical update (e.g. one document's path facts) derive
  // the same view row.
  std::vector<Row> delta;
  std::unordered_set<size_t> seen_hashes;
  const pivot::ConjunctiveQuery& view = desc->view.query;
  for (const auto& [relation, new_row] : new_rows) {
    for (size_t occ = 0; occ < view.body.size(); ++occ) {
      if (view.body[occ].relation != relation) continue;
      // Unify the occurrence's terms with the new row.
      pivot::Substitution pin;
      bool consistent = true;
      for (size_t i = 0; i < view.body[occ].terms.size() && consistent;
           ++i) {
        const pivot::Term& t = view.body[occ].terms[i];
        if (new_row[i].is_list()) {
          // Pivot constants are scalar: a list pinned as its JSON text
          // would never match the staged list value, silently dropping
          // the delta. Leave the position unpinned instead — the
          // evaluation returns a superset of the delta, which is sound
          // under set semantics (re-appending a stored row is a no-op
          // for query answers).
          if (t.is_constant()) consistent = false;
          continue;
        }
        pivot::Term value = pivot::Term::Const(new_row[i].ToConstant());
        if (t.is_constant()) {
          consistent = (t == value);
        } else if (t.is_variable()) {
          auto [it, fresh] = pin.emplace(t.var_name(), value);
          if (!fresh) consistent = (it->second == value);
        }
      }
      if (!consistent) continue;
      pivot::ConjunctiveQuery pinned;
      pinned.name = view.name;
      pinned.body = ApplySubstitution(pin, view.body);
      for (const pivot::Term& h : view.head) {
        pinned.head.push_back(ApplySubstitution(pin, h));
      }
      ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                EvaluateCqOverStaging(pinned, staging));
      for (Row& row : rows) {
        if (seen_hashes.insert(engine::RowHash()(row)).second) {
          delta.push_back(std::move(row));
        }
      }
    }
  }
  if (delta.empty()) return Status::OK();
  for (size_t c = 0; c < desc->view.arity(); ++c) {
    for (const Row& row : delta) {
      if (row[c].is_list() && c < desc->list_column.size()) {
        desc->list_column[c] = true;
      }
    }
  }
  return FanOutAppend(catalog, desc, delta);
}

Status MaintainFragmentsOnInsertBatch(
    const StagingData& staging, Catalog* catalog,
    const std::vector<std::pair<std::string, Row>>& new_rows) {
  // Collect affected fragment names first (iteration + mutation safety).
  // Shadow fragments are excluded: their deltas are captured and replayed
  // by the migration engine's catch-up stage.
  std::vector<std::string> affected;
  for (const auto& [name, desc] : catalog->fragments()) {
    if (desc.is_shadow()) continue;
    bool hit = false;
    for (const pivot::Atom& a : desc.view.query.body) {
      for (const auto& [relation, row] : new_rows) {
        if (a.relation == relation) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) affected.push_back(name);
  }
  for (const std::string& name : affected) {
    ESTOCADA_RETURN_NOT_OK(
        MaintainOneFragmentOnInsertBatch(staging, catalog, name, new_rows));
  }
  return Status::OK();
}

Status MaintainFragmentsOnInsert(const StagingData& staging,
                                 Catalog* catalog,
                                 const std::string& relation,
                                 const Row& new_row) {
  return MaintainFragmentsOnInsertBatch(staging, catalog,
                                        {{relation, new_row}});
}

Status DematerializeFragment(Catalog* catalog,
                             const std::string& fragment_name) {
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog->GetFragment(fragment_name));
  if (desc->partitioned()) {
    for (const catalog::ShardState& shard : desc->shards) {
      for (const catalog::ReplicaPlacement& r : shard.replicas) {
        if (r.rebuilding) continue;
        ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                                  catalog->GetStore(r.store_name));
        ESTOCADA_RETURN_NOT_OK(DropContainer(*store, r.container));
      }
    }
    return Status::OK();
  }
  // Replicas mid-rebuild are skipped: the repairer owns those containers
  // and drops them itself when its rebuild aborts.
  for (size_t i = 0; i < desc->replica_count(); ++i) {
    catalog::ReplicaPlacement p = PlacementOf(*desc, i);
    if (p.rebuilding) continue;
    ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                              catalog->GetStore(p.store_name));
    ESTOCADA_RETURN_NOT_OK(DropContainer(*store, p.container));
  }
  return Status::OK();
}

Status CreateReplicaContainer(Catalog* catalog,
                              const std::string& fragment_name,
                              size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(StorageDescriptor * desc,
                            catalog->GetMutableFragment(fragment_name));
  if (replica >= desc->replica_count()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' has ",
                                     desc->replica_count(),
                                     " replicas; no replica ", replica));
  }
  catalog::ReplicaPlacement p = PlacementOf(*desc, replica);
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog->GetStore(p.store_name));
  std::vector<std::string> columns = catalog::FragmentColumnNames(desc->view);
  return LoadFragment(*store, *desc, p.container, {}, columns,
                      desc->view.arity());
}

Status MaterializeReplica(const StagingData& staging, Catalog* catalog,
                          const std::string& fragment_name, size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog->GetFragment(fragment_name));
  if (replica >= desc->replica_count()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' has ",
                                     desc->replica_count(),
                                     " replica(s), asked for #", replica));
  }
  catalog::ReplicaPlacement p = PlacementOf(*desc, replica);
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog->GetStore(p.store_name));
  ESTOCADA_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      EvaluateCqOverStaging(desc->view.query, staging, {}, true));
  Status dropped = DropContainer(*store, p.container);
  if (!dropped.ok() && dropped.code() != StatusCode::kNotFound) {
    return dropped;
  }
  std::vector<std::string> columns = catalog::FragmentColumnNames(desc->view);
  return LoadFragment(*store, *desc, p.container, rows, columns,
                      desc->view.arity());
}

Status DropReplicaContainer(Catalog* catalog, const std::string& fragment_name,
                            size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog->GetFragment(fragment_name));
  if (replica >= desc->replica_count()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' has ",
                                     desc->replica_count(),
                                     " replicas; no replica ", replica));
  }
  catalog::ReplicaPlacement p = PlacementOf(*desc, replica);
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog->GetStore(p.store_name));
  return DropContainer(*store, p.container);
}

Status AppendToReplica(Catalog* catalog, const std::string& fragment_name,
                       size_t replica, const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog->GetFragment(fragment_name));
  if (replica >= desc->replica_count()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' has ",
                                     desc->replica_count(),
                                     " replicas; no replica ", replica));
  }
  catalog::ReplicaPlacement p = PlacementOf(*desc, replica);
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog->GetStore(p.store_name));
  // Repair-path appends seed the synthetic document _id counter from the
  // target container itself (ids only need to be container-unique; row
  // readback ignores them), so a rebuild restarted mid-way never collides
  // with its own earlier batches.
  size_t doc_id_base = 0;
  if (store->kind == StoreKind::kDocument) {
    ESTOCADA_ASSIGN_OR_RETURN(doc_id_base,
                              store->document->Count(p.container));
  }
  return AppendRowsToContainer(*store, p.container, doc_id_base, rows);
}

Status MaterializeShardReplica(const StagingData& staging, Catalog* catalog,
                               const std::string& fragment_name, size_t shard,
                               size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(StorageDescriptor * desc,
                            catalog->GetMutableFragment(fragment_name));
  if (!desc->partitioned()) {
    return Status::InvalidArgument(
        StrCat("fragment '", fragment_name, "' is not partitioned"));
  }
  if (shard >= desc->shards.size()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' has ",
                                     desc->shards.size(), " shards; no shard ",
                                     shard));
  }
  catalog::ShardState& ss = desc->shards[shard];
  if (replica >= ss.replicas.size()) {
    return Status::OutOfRange(StrCat("fragment '", fragment_name, "' shard ",
                                     shard, " has ", ss.replicas.size(),
                                     " replicas; no replica ", replica));
  }
  catalog::ReplicaPlacement& p = ss.replicas[replica];
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog->GetStore(p.store_name));
  ESTOCADA_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      EvaluateCqOverStaging(desc->view.query, staging, {}, true));
  std::vector<std::vector<Row>> buckets = SplitByShard(*desc, rows);
  Status dropped = DropContainer(*store, p.container);
  if (!dropped.ok() && dropped.code() != StatusCode::kNotFound) {
    return dropped;
  }
  std::vector<std::string> columns = catalog::FragmentColumnNames(desc->view);
  ESTOCADA_RETURN_NOT_OK(LoadFragment(*store, *desc, p.container,
                                      buckets[shard], columns,
                                      desc->view.arity()));
  // A one-shot rebuild from the staging truth is current by definition.
  p.epoch = ss.write_epoch;
  p.rebuilding = false;
  return Status::OK();
}

Result<uint64_t> FragmentReplicaDigest(const Catalog& catalog,
                                       const std::string& fragment_name,
                                       size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> rows,
                            ReadReplicaRows(catalog, fragment_name, replica));
  // Set-semantics digest: order-independent over the distinct canonical
  // row serializations, so equal replica contents always digest equal and
  // single-row divergence is overwhelmingly likely to show. Only
  // meaningful between placements of the same store kind — kinds differ
  // in value round-trips (anti-entropy falls back to staging-truth
  // verification across kinds and for text, which has no row readback).
  std::set<std::string> distinct;
  for (const Row& row : rows) distinct.insert(engine::RowToString(row));
  uint64_t sum = 0;
  uint64_t xored = 0;
  for (const std::string& s : distinct) {
    uint64_t h = std::hash<std::string>{}(s);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    sum += h;
    xored ^= h;
  }
  return sum ^ (xored * 0x9e3779b97f4a7c15ULL) ^
         static_cast<uint64_t>(distinct.size());
}

}  // namespace estocada::rewriting
