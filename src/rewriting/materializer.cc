#include "rewriting/materializer.h"

#include <map>
#include <set>
#include <unordered_set>

#include "common/strings.h"

namespace estocada::rewriting {

using catalog::Catalog;
using catalog::FragmentStatistics;
using catalog::StorageDescriptor;
using catalog::StoreHandle;
using catalog::StoreKind;
using engine::Row;
using engine::Value;
using pivot::Adornment;

namespace {

stores::ColumnType InferColumnType(const std::vector<Row>& rows, size_t col) {
  for (const Row& r : rows) {
    const Value& v = r[col];
    if (v.is_null()) continue;
    if (v.is_int()) return stores::ColumnType::kInt;
    if (v.is_real()) return stores::ColumnType::kReal;
    if (v.is_bool()) return stores::ColumnType::kBool;
    return stores::ColumnType::kStr;
  }
  // No data to infer from (empty view at materialization time): stay
  // open to whatever incremental maintenance appends later.
  return stores::ColumnType::kAny;
}

/// Lists cannot live in a relational column; serialize them to JSON text.
Value FlattenForRelational(const Value& v) {
  if (v.is_list()) return Value::Str(v.ToJson().Serialize());
  return v;
}

FragmentStatistics ComputeStatistics(const std::vector<Row>& rows,
                                     size_t arity) {
  FragmentStatistics stats;
  stats.row_count = rows.size();
  stats.distinct.assign(arity, 0);
  for (size_t c = 0; c < arity; ++c) {
    std::unordered_set<size_t> hashes;
    for (const Row& r : rows) hashes.insert(r[c].Hash());
    stats.distinct[c] = hashes.size();
  }
  return stats;
}

/// Input-adorned positions of the fragment's stored relation.
std::vector<size_t> InputPositions(const pacb::ViewDefinition& view) {
  std::vector<size_t> out;
  for (size_t i = 0; i < view.adornments.size(); ++i) {
    if (view.adornments[i] == Adornment::kInput) out.push_back(i);
  }
  return out;
}

/// Positions to index: input-adorned ones plus the descriptor's explicit
/// index_positions (deduplicated, sorted).
std::vector<size_t> IndexPositions(const StorageDescriptor& desc) {
  std::set<size_t> positions;
  for (size_t p : InputPositions(desc.view)) positions.insert(p);
  for (size_t p : desc.index_positions) positions.insert(p);
  return {positions.begin(), positions.end()};
}

Status LoadRelational(stores::RelationalStore* store,
                      const StorageDescriptor& desc,
                      const std::vector<Row>& rows,
                      const std::vector<std::string>& columns) {
  std::vector<stores::ColumnDef> defs;
  for (size_t c = 0; c < columns.size(); ++c) {
    defs.push_back({columns[c], InferColumnType(rows, c)});
  }
  ESTOCADA_RETURN_NOT_OK(store->CreateTable(desc.container, defs));
  for (const Row& row : rows) {
    Row flat;
    flat.reserve(row.size());
    for (const Value& v : row) flat.push_back(FlattenForRelational(v));
    ESTOCADA_RETURN_NOT_OK(store->Insert(desc.container, std::move(flat)));
  }
  // Index the declared fast access paths.
  for (size_t pos : IndexPositions(desc)) {
    ESTOCADA_RETURN_NOT_OK(store->CreateIndex(desc.container, columns[pos]));
  }
  return Status::OK();
}

Status LoadKeyValue(stores::KeyValueStore* store,
                    const StorageDescriptor& desc,
                    const std::vector<Row>& rows) {
  ESTOCADA_RETURN_NOT_OK(store->CreateCollection(desc.container));
  // The payload under each key is the JSON *list of rows* sharing that
  // key (a key position need not be unique — e.g. an advisor-made
  // fragment keyed by product category).
  std::map<std::string, Value> grouped;
  for (const Row& row : rows) {
    std::string key = row[0].ToJson().Serialize();
    auto [it, fresh] = grouped.emplace(key, Value::List({}));
    it->second.mutable_list().push_back(Value::List(row));
  }
  for (const auto& [key, payload] : grouped) {
    ESTOCADA_RETURN_NOT_OK(
        store->Put(desc.container, key, payload.ToJson().Serialize()));
  }
  return Status::OK();
}

Status LoadDocument(stores::DocumentStore* store,
                    const StorageDescriptor& desc,
                    const std::vector<Row>& rows) {
  ESTOCADA_RETURN_NOT_OK(store->CreateCollection(desc.container));
  size_t n = 0;
  for (const Row& row : rows) {
    json::JsonValue doc = json::JsonValue::MakeObject();
    doc.Set("_id", json::JsonValue::Str(StrCat("r", n++)));
    for (size_t c = 0; c < row.size(); ++c) {
      doc.Set(StrCat("f", c), row[c].ToJson());
    }
    ESTOCADA_RETURN_NOT_OK(store->Insert(desc.container, doc).status());
  }
  // Path indexes on the declared fast access paths.
  for (size_t pos : IndexPositions(desc)) {
    ESTOCADA_RETURN_NOT_OK(
        store->CreatePathIndex(desc.container, StrCat("f", pos)));
  }
  return Status::OK();
}

Status LoadParallel(stores::ParallelStore* store,
                    const StorageDescriptor& desc,
                    const std::vector<Row>& rows, size_t arity) {
  ESTOCADA_RETURN_NOT_OK(store->CreateRelation(desc.container, arity));
  ESTOCADA_RETURN_NOT_OK(store->InsertBatch(desc.container, rows));
  std::vector<size_t> inputs = InputPositions(desc.view);
  if (inputs.empty()) inputs = desc.index_positions;
  if (!inputs.empty()) {
    ESTOCADA_RETURN_NOT_OK(store->CreateIndex(desc.container, inputs));
  }
  return Status::OK();
}

Status LoadText(stores::TextStore* store, const StorageDescriptor& desc,
                const std::vector<Row>& rows, size_t arity) {
  if (arity != 2) {
    return Status::InvalidArgument(
        StrCat("text fragment '", desc.name(),
               "' must have arity 2 (docID, term), got ", arity));
  }
  ESTOCADA_RETURN_NOT_OK(store->CreateCore(desc.container));
  // Group terms per document id.
  std::map<std::string, std::string> text_per_doc;
  for (const Row& row : rows) {
    std::string id = row[0].ToJson().Serialize();
    std::string term = row[1].is_string() ? row[1].string_value()
                                          : row[1].ToString();
    std::string& text = text_per_doc[id];
    if (!text.empty()) text += ' ';
    text += term;
  }
  for (const auto& [id, text] : text_per_doc) {
    ESTOCADA_RETURN_NOT_OK(store->AddDocument(desc.container, id,
                                              {{"text", text}}));
  }
  return Status::OK();
}

}  // namespace

Status MaterializeFragment(const StagingData& staging, Catalog* catalog,
                           const std::string& fragment_name) {
  ESTOCADA_ASSIGN_OR_RETURN(StorageDescriptor * desc,
                            catalog->GetMutableFragment(fragment_name));
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog->GetStore(desc->store_name));
  // Evaluate the view over the staged dataset (set semantics: a
  // materialized view holds each tuple once).
  ESTOCADA_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      EvaluateCqOverStaging(desc->view.query, staging, {}, true));
  const size_t arity = desc->view.arity();
  std::vector<std::string> columns = catalog::FragmentColumnNames(desc->view);

  switch (store->kind) {
    case StoreKind::kRelational:
      ESTOCADA_RETURN_NOT_OK(
          LoadRelational(store->relational, *desc, rows, columns));
      break;
    case StoreKind::kKeyValue:
      ESTOCADA_RETURN_NOT_OK(LoadKeyValue(store->kv, *desc, rows));
      break;
    case StoreKind::kDocument:
      ESTOCADA_RETURN_NOT_OK(LoadDocument(store->document, *desc, rows));
      break;
    case StoreKind::kParallel:
      ESTOCADA_RETURN_NOT_OK(LoadParallel(store->parallel, *desc, rows,
                                          arity));
      break;
    case StoreKind::kText:
      ESTOCADA_RETURN_NOT_OK(LoadText(store->text, *desc, rows, arity));
      break;
  }
  desc->stats = ComputeStatistics(rows, arity);
  desc->list_column.assign(arity, false);
  for (const Row& row : rows) {
    for (size_t c = 0; c < arity; ++c) {
      if (row[c].is_list()) desc->list_column[c] = true;
    }
  }
  return Status::OK();
}

namespace {

/// Appends freshly derived view rows to a fragment's physical container.
Status AppendRowsToFragment(const StoreHandle& store,
                            StorageDescriptor* desc,
                            const std::vector<Row>& rows) {
  switch (store.kind) {
    case StoreKind::kRelational:
      for (const Row& row : rows) {
        Row flat;
        flat.reserve(row.size());
        for (const Value& v : row) flat.push_back(FlattenForRelational(v));
        ESTOCADA_RETURN_NOT_OK(
            store.relational->Insert(desc->container, std::move(flat)));
      }
      break;
    case StoreKind::kKeyValue: {
      // Read-modify-write of the per-key row-list payloads.
      std::map<std::string, std::vector<Row>> by_key;
      for (const Row& row : rows) {
        by_key[row[0].ToJson().Serialize()].push_back(row);
      }
      for (const auto& [key, new_rows] : by_key) {
        Value payload = Value::List({});
        auto existing = store.kv->Get(desc->container, key);
        if (existing.ok()) {
          ESTOCADA_ASSIGN_OR_RETURN(json::JsonValue parsed,
                                    json::Parse(*existing));
          payload = Value::FromJson(parsed);
          if (!payload.is_list()) {
            return Status::Internal("corrupt KV fragment payload");
          }
        } else if (existing.status().code() != StatusCode::kNotFound) {
          return existing.status();
        }
        for (const Row& row : new_rows) {
          payload.mutable_list().push_back(Value::List(row));
        }
        ESTOCADA_RETURN_NOT_OK(store.kv->Put(
            desc->container, key, payload.ToJson().Serialize()));
      }
      break;
    }
    case StoreKind::kDocument: {
      size_t n = desc->stats.row_count;
      for (const Row& row : rows) {
        json::JsonValue doc = json::JsonValue::MakeObject();
        doc.Set("_id", json::JsonValue::Str(StrCat("r", n++)));
        for (size_t c = 0; c < row.size(); ++c) {
          doc.Set(StrCat("f", c), row[c].ToJson());
        }
        ESTOCADA_RETURN_NOT_OK(
            store.document->Insert(desc->container, doc).status());
      }
      break;
    }
    case StoreKind::kParallel:
      ESTOCADA_RETURN_NOT_OK(
          store.parallel->InsertBatch(desc->container, rows));
      break;
    case StoreKind::kText:
      return Status::Unsupported("text fragments are rebuilt, not appended");
  }
  desc->stats.row_count += rows.size();
  return Status::OK();
}

}  // namespace

Status MaintainFragmentsOnInsertBatch(
    const StagingData& staging, Catalog* catalog,
    const std::vector<std::pair<std::string, Row>>& new_rows) {
  // Collect affected fragment names first (iteration + mutation safety).
  std::vector<std::string> affected;
  for (const auto& [name, desc] : catalog->fragments()) {
    bool hit = false;
    for (const pivot::Atom& a : desc.view.query.body) {
      for (const auto& [relation, row] : new_rows) {
        if (a.relation == relation) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) affected.push_back(name);
  }
  for (const std::string& name : affected) {
    ESTOCADA_ASSIGN_OR_RETURN(StorageDescriptor * desc,
                              catalog->GetMutableFragment(name));
    ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                              catalog->GetStore(desc->store_name));
    if (store->kind == StoreKind::kText) {
      // Per-document postings are immutable in the text store: rebuild.
      ESTOCADA_RETURN_NOT_OK(DematerializeFragment(catalog, name));
      ESTOCADA_RETURN_NOT_OK(MaterializeFragment(staging, catalog, name));
      continue;
    }
    // Delta rule: for each new tuple and each occurrence of its relation
    // in the view body, evaluate the view with that atom pinned to the
    // tuple. Deduplicate across all pins of the batch: several staged
    // rows of one logical update (e.g. one document's path facts) derive
    // the same view row.
    std::vector<Row> delta;
    std::unordered_set<size_t> seen_hashes;
    const pivot::ConjunctiveQuery& view = desc->view.query;
    for (const auto& [relation, new_row] : new_rows) {
      for (size_t occ = 0; occ < view.body.size(); ++occ) {
        if (view.body[occ].relation != relation) continue;
        // Unify the occurrence's terms with the new row.
        pivot::Substitution pin;
        bool consistent = true;
        for (size_t i = 0; i < view.body[occ].terms.size() && consistent;
             ++i) {
          const pivot::Term& t = view.body[occ].terms[i];
          pivot::Term value = pivot::Term::Const(new_row[i].ToConstant());
          if (t.is_constant()) {
            consistent = (t == value);
          } else if (t.is_variable()) {
            auto [it, fresh] = pin.emplace(t.var_name(), value);
            if (!fresh) consistent = (it->second == value);
          }
        }
        if (!consistent) continue;
        pivot::ConjunctiveQuery pinned;
        pinned.name = view.name;
        pinned.body = ApplySubstitution(pin, view.body);
        for (const pivot::Term& h : view.head) {
          pinned.head.push_back(ApplySubstitution(pin, h));
        }
        ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                  EvaluateCqOverStaging(pinned, staging));
        for (Row& row : rows) {
          if (seen_hashes.insert(engine::RowHash()(row)).second) {
            delta.push_back(std::move(row));
          }
        }
      }
    }
    if (delta.empty()) continue;
    for (size_t c = 0; c < desc->view.arity(); ++c) {
      for (const Row& row : delta) {
        if (row[c].is_list() && c < desc->list_column.size()) {
          desc->list_column[c] = true;
        }
      }
    }
    ESTOCADA_RETURN_NOT_OK(AppendRowsToFragment(*store, desc, delta));
  }
  return Status::OK();
}

Status MaintainFragmentsOnInsert(const StagingData& staging,
                                 Catalog* catalog,
                                 const std::string& relation,
                                 const Row& new_row) {
  return MaintainFragmentsOnInsertBatch(staging, catalog,
                                        {{relation, new_row}});
}

Status DematerializeFragment(Catalog* catalog,
                             const std::string& fragment_name) {
  ESTOCADA_ASSIGN_OR_RETURN(const StorageDescriptor* desc,
                            catalog->GetFragment(fragment_name));
  ESTOCADA_ASSIGN_OR_RETURN(const StoreHandle* store,
                            catalog->GetStore(desc->store_name));
  switch (store->kind) {
    case StoreKind::kRelational:
      return store->relational->DropTable(desc->container);
    case StoreKind::kKeyValue:
      return store->kv->DropCollection(desc->container);
    case StoreKind::kDocument:
      return store->document->DropCollection(desc->container);
    case StoreKind::kParallel:
      return store->parallel->DropRelation(desc->container);
    case StoreKind::kText:
      return store->text->DropCore(desc->container);
  }
  return Status::Internal("unknown store kind");
}

}  // namespace estocada::rewriting
