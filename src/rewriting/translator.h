#ifndef ESTOCADA_REWRITING_TRANSLATOR_H_
#define ESTOCADA_REWRITING_TRANSLATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/operator.h"
#include "pivot/query.h"

namespace estocada::rewriting {

/// Per-store work counters accumulated while a plan executes; gives the
/// demo's "performance statistics split across the underlying DMSs and
/// ESTOCADA's runtime" (§IV step 3).
struct RuntimeStats {
  std::map<std::string, stores::StoreStats> per_store;

  double TotalSimulatedCost() const;
  std::string ToString() const;
};

/// Planning-time availability constraints: fragment reads route around
/// the excluded stores — each atom resolves to its first replica
/// placement that is fresh, not mid-rebuild, and not excluded. A
/// rewriting with some fragment left placement-less is dropped from the
/// candidate set. Fed by the runtime's circuit breakers — this is what
/// turns rewriting multiplicity *and* replica multiplicity into
/// failover. Exclusions are per store instance: an open breaker on one
/// instance never affects fragments held by other instances of the same
/// kind.
struct PlanConstraints {
  std::vector<std::string> excluded_stores;
  /// Stores on probation (half-open circuit breakers): still routable, but
  /// a fragment read prefers any replica on a fully-healthy store. Probe
  /// traffic reaches a recovering store only when no healthy replica can
  /// serve instead — a flapping dead replica earlier in placement order
  /// must never shadow a live sibling behind it.
  std::vector<std::string> probation_stores;

  bool Excludes(const std::string& store) const;
  bool OnProbation(const std::string& store) const;
};

/// An executable plan for one rewriting: an engine operator tree whose
/// leaves call into the underlying stores (delegated subqueries, point
/// lookups, searches), plus cost estimates and a printable description.
struct PlannedQuery {
  engine::OperatorPtr root;
  /// Work counters filled in while `root` executes.
  std::shared_ptr<RuntimeStats> runtime_stats;
  double estimated_cost = 0;
  double estimated_rows = 0;
  /// The rewriting this plan evaluates (over fragment relations).
  pivot::ConjunctiveQuery rewriting;
  /// Delegated native queries, one line each (SQL text, KV gets, ...).
  std::vector<std::string> delegated;
  /// Names of the stores this plan actually reads — the *routed* replica
  /// placements, not the fragments' primaries (sorted, deduplicated).
  /// The serving runtime attributes execution failures and targets
  /// circuit breakers using this list.
  std::vector<std::string> stores_used;

  /// Operator tree rendering plus the delegation list.
  std::string ToString() const;
};

/// Translates rewritings (CQs over fragment relations) into executable
/// plans: groups atoms per store ("identify the largest subquery that can
/// be delegated"), reformulates each group in the store's native API,
/// stitches groups with hash joins and BindJoins (for access-pattern
/// restricted sources), and estimates cost with textbook cardinality
/// formulas over the catalog's fragment statistics.
class Translator {
 public:
  explicit Translator(const catalog::Catalog* catalog);

  /// Builds the executable plan of `rewriting`. `parameters` supplies
  /// values for '$'-prefixed variables. Each fragment atom is routed to
  /// one available replica placement under `constraints`; with no
  /// constraints and fresh primaries this is always the primary. Fails
  /// kUnavailable when some fragment has no available placement.
  Result<PlannedQuery> Plan(
      const pivot::ConjunctiveQuery& rewriting,
      const std::map<std::string, engine::Value>& parameters = {},
      const PlanConstraints& constraints = {}) const;

  /// Cost-only variant of Plan: identical routing, feasibility checks,
  /// error surface and cost arithmetic (one shared code path — the two
  /// modes cannot disagree on a plan's estimated cost), but fetch
  /// closures and the operator tree are never built: `root` is null.
  /// The planner estimates every candidate this way and fully Plan()s
  /// only the winner.
  Result<PlannedQuery> Estimate(
      const pivot::ConjunctiveQuery& rewriting,
      const std::map<std::string, engine::Value>& parameters = {},
      const PlanConstraints& constraints = {}) const;

 private:
  Result<PlannedQuery> PlanInternal(
      const pivot::ConjunctiveQuery& rewriting,
      const std::map<std::string, engine::Value>& parameters,
      const PlanConstraints& constraints, bool build) const;

  const catalog::Catalog* catalog_;
};

}  // namespace estocada::rewriting

#endif  // ESTOCADA_REWRITING_TRANSLATOR_H_
