#ifndef ESTOCADA_REWRITING_TRANSLATOR_H_
#define ESTOCADA_REWRITING_TRANSLATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/operator.h"
#include "pivot/query.h"

namespace estocada::rewriting {

/// Per-store work counters accumulated while a plan executes; gives the
/// demo's "performance statistics split across the underlying DMSs and
/// ESTOCADA's runtime" (§IV step 3).
struct RuntimeStats {
  std::map<std::string, stores::StoreStats> per_store;

  double TotalSimulatedCost() const;
  std::string ToString() const;
};

/// An executable plan for one rewriting: an engine operator tree whose
/// leaves call into the underlying stores (delegated subqueries, point
/// lookups, searches), plus cost estimates and a printable description.
struct PlannedQuery {
  engine::OperatorPtr root;
  /// Work counters filled in while `root` executes.
  std::shared_ptr<RuntimeStats> runtime_stats;
  double estimated_cost = 0;
  double estimated_rows = 0;
  /// The rewriting this plan evaluates (over fragment relations).
  pivot::ConjunctiveQuery rewriting;
  /// Delegated native queries, one line each (SQL text, KV gets, ...).
  std::vector<std::string> delegated;
  /// Names of the stores whose fragments this plan reads (sorted,
  /// deduplicated). The serving runtime attributes execution failures and
  /// targets circuit breakers using this list.
  std::vector<std::string> stores_used;

  /// Operator tree rendering plus the delegation list.
  std::string ToString() const;
};

/// Translates rewritings (CQs over fragment relations) into executable
/// plans: groups atoms per store ("identify the largest subquery that can
/// be delegated"), reformulates each group in the store's native API,
/// stitches groups with hash joins and BindJoins (for access-pattern
/// restricted sources), and estimates cost with textbook cardinality
/// formulas over the catalog's fragment statistics.
class Translator {
 public:
  explicit Translator(const catalog::Catalog* catalog);

  /// Builds the executable plan of `rewriting`. `parameters` supplies
  /// values for '$'-prefixed variables.
  Result<PlannedQuery> Plan(
      const pivot::ConjunctiveQuery& rewriting,
      const std::map<std::string, engine::Value>& parameters = {}) const;

 private:
  const catalog::Catalog* catalog_;
};

}  // namespace estocada::rewriting

#endif  // ESTOCADA_REWRITING_TRANSLATOR_H_
