#ifndef ESTOCADA_REWRITING_PLANNER_H_
#define ESTOCADA_REWRITING_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "pacb/rewriter.h"
#include "rewriting/translator.h"

namespace estocada::rewriting {

/// Everything the query evaluator produced for one query: the PACB
/// rewritings, an executable plan per rewriting, and the index of the
/// cost-based choice. Demo step 2 ("inspect the translation, the PACB
/// output, the translated form and the executable plan") reads this.
struct PlanSet {
  pacb::RewritingResult rewriting_result;
  /// Parallel to rewritings. Only the best plan carries an operator tree
  /// (`root`); the others are cost-only estimates. Re-Plan a rewriting
  /// through a Translator (with `parameters`/`constraints` below) to
  /// materialize any of the others — Estocada::ExecutePlanned does this
  /// when asked for a non-best plan index.
  std::vector<PlannedQuery> plans;
  size_t best = 0;  ///< Index of the chosen plan.
  /// The planning inputs, kept so a cost-only plan can be materialized
  /// later with the exact arguments it was estimated under.
  std::map<std::string, engine::Value> parameters;
  PlanConstraints constraints;

  PlannedQuery& best_plan() { return plans[best]; }
  const PlannedQuery& best_plan() const { return plans[best]; }
};

/// Store names holding the fragments `rewriting` reads — every replica
/// placement, primaries first (sorted, deduplicated; atoms that are not
/// registered fragments are ignored). Note a plan built from the
/// rewriting reads only one routed placement per fragment: see
/// PlannedQuery::stores_used for the stores a plan actually touches.
std::vector<std::string> RewritingStores(
    const catalog::Catalog& catalog, const pivot::ConjunctiveQuery& rewriting);

/// The cost-based query evaluator: runs the PACB rewriter against the
/// catalog's views, translates every rewriting to an executable plan, and
/// picks the cheapest by estimated cost.
class Planner {
 public:
  Planner(const catalog::Catalog* catalog, const pacb::Rewriter* rewriter);

  /// Plans `query` (a CQ over dataset relations). Fails with kNoRewriting
  /// when no executable rewriting exists, kUnavailable when rewritings
  /// exist but every one touches an excluded store.
  Result<PlanSet> PlanQuery(
      const pivot::ConjunctiveQuery& query,
      const std::map<std::string, engine::Value>& parameters = {},
      const pacb::RewriterOptions& options = {},
      const PlanConstraints& constraints = {}) const;

  /// Translation-only half of PlanQuery: turns already-computed PACB
  /// rewritings into executable plans for this call's parameters and picks
  /// the cheapest. The serving runtime's plan cache uses this to skip the
  /// rewrite on a hit. Does not touch the rewriter.
  Result<PlanSet> PlanRewritings(
      pacb::RewritingResult rewriting_result,
      const std::map<std::string, engine::Value>& parameters = {},
      const PlanConstraints& constraints = {}) const;

 private:
  const catalog::Catalog* catalog_;
  const pacb::Rewriter* rewriter_;
};

}  // namespace estocada::rewriting

#endif  // ESTOCADA_REWRITING_PLANNER_H_
