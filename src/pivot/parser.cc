#include "pivot/parser.h"

#include <cctype>
#include <charconv>

#include "common/strings.h"

namespace estocada::pivot {

namespace {

/// Hand-rolled tokenizer/parser for the pivot text syntax. Tokens:
/// identifiers, quoted strings, numbers, punctuation ( ) , :- -> =.
class PivotParser {
 public:
  explicit PivotParser(std::string_view text) : text_(text) {}

  Result<ConjunctiveQuery> ParseQueryText() {
    ConjunctiveQuery q;
    SkipWs();
    ESTOCADA_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    q.name = std::move(name);
    ESTOCADA_ASSIGN_OR_RETURN(std::vector<Term> head, ParseTermList());
    q.head = std::move(head);
    SkipWs();
    if (!ConsumeSeq(":-")) return Fail("expected ':-'");
    ESTOCADA_ASSIGN_OR_RETURN(std::vector<Atom> body, ParseAtoms());
    q.body = std::move(body);
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing input after query");
    ESTOCADA_RETURN_NOT_OK(q.Validate());
    return q;
  }

  Result<Dependency> ParseDependencyText(std::string label) {
    ESTOCADA_ASSIGN_OR_RETURN(std::vector<Atom> body, ParseAtoms());
    SkipWs();
    if (!ConsumeSeq("->")) return Fail("expected '->'");
    // Lookahead: an EGD head is `term = term`; a TGD head is an atom list.
    size_t saved = pos_;
    {
      auto lhs = TryParseTerm();
      if (lhs.ok()) {
        SkipWs();
        if (Consume('=')) {
          ESTOCADA_ASSIGN_OR_RETURN(Term rhs, TryParseTerm());
          SkipWs();
          if (pos_ != text_.size()) return Fail("trailing input after EGD");
          Egd egd;
          egd.label = std::move(label);
          egd.body = std::move(body);
          egd.left = lhs.value();
          egd.right = rhs;
          return Dependency::FromEgd(std::move(egd));
        }
      }
    }
    pos_ = saved;
    ESTOCADA_ASSIGN_OR_RETURN(std::vector<Atom> head, ParseAtoms());
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing input after TGD");
    Tgd tgd;
    tgd.label = std::move(label);
    tgd.body = std::move(body);
    tgd.head = std::move(head);
    return Dependency::FromTgd(std::move(tgd));
  }

  Result<std::vector<Atom>> ParseAtoms() {
    std::vector<Atom> atoms;
    for (;;) {
      SkipWs();
      ESTOCADA_ASSIGN_OR_RETURN(std::string rel, ParseIdentifier());
      ESTOCADA_ASSIGN_OR_RETURN(std::vector<Term> terms, ParseTermList());
      atoms.emplace_back(std::move(rel), std::move(terms));
      SkipWs();
      // A comma continues the atom list only if an identifier+'(' follows
      // (to let callers stop before '->' etc.).
      size_t saved = pos_;
      if (!Consume(',')) break;
      SkipWs();
      if (!PeekAtomStart()) {
        pos_ = saved;
        break;
      }
    }
    return atoms;
  }

  size_t pos() const { return pos_; }

  /// True when only whitespace remains.
  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  Status Fail(std::string_view what) {
    return Status::ParseError(StrCat("pivot parse error at offset ", pos_,
                                     " in \"", text_, "\": ", what));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeSeq(std::string_view seq) {
    if (text_.substr(pos_, seq.size()) == seq) {
      pos_ += seq.size();
      return true;
    }
    return false;
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
           c == '$';
  }

  bool PeekAtomStart() {
    size_t p = pos_;
    while (p < text_.size() && IsIdentChar(text_[p])) ++p;
    if (p == pos_) return false;
    while (p < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[p]))) {
      ++p;
    }
    return p < text_.size() && text_[p] == '(';
  }

  Result<std::string> ParseIdentifier() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Fail("expected identifier");
    if (std::isdigit(static_cast<unsigned char>(text_[start]))) {
      return Fail("identifier may not start with a digit");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Term> TryParseTerm() {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("expected term");
    char c = text_[pos_];
    if (c == '\'' || c == '"') {
      char quote = c;
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        s.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) return Fail("unterminated string literal");
      ++pos_;  // closing quote
      return Term::Const(Constant::Str(std::move(s)));
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      bool is_real = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        if (text_[pos_] == '.') is_real = true;
        ++pos_;
      }
      std::string_view num = text_.substr(start, pos_ - start);
      if (is_real) {
        double d = 0;
        auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
        if (ec != std::errc()) return Fail("bad real literal");
        return Term::Const(Constant::Real(d));
      }
      int64_t v = 0;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
      if (ec != std::errc()) return Fail("bad integer literal");
      return Term::Const(Constant::Int(v));
    }
    ESTOCADA_ASSIGN_OR_RETURN(std::string ident, ParseIdentifier());
    if (ident == "true") return Term::Const(Constant::Bool(true));
    if (ident == "false") return Term::Const(Constant::Bool(false));
    if (ident == "null") return Term::Const(Constant::Null());
    return Term::Var(std::move(ident));
  }

  Result<std::vector<Term>> ParseTermList() {
    SkipWs();
    if (!Consume('(')) return Fail("expected '('");
    std::vector<Term> terms;
    SkipWs();
    if (Consume(')')) return terms;
    for (;;) {
      ESTOCADA_ASSIGN_OR_RETURN(Term t, TryParseTerm());
      terms.push_back(std::move(t));
      SkipWs();
      if (Consume(')')) return terms;
      if (!Consume(',')) return Fail("expected ',' or ')' in term list");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text) {
  return PivotParser(text).ParseQueryText();
}

Result<Dependency> ParseDependency(std::string_view text, std::string label) {
  return PivotParser(text).ParseDependencyText(std::move(label));
}

Result<std::vector<Dependency>> ParseDependencies(std::string_view text) {
  std::vector<Dependency> out;
  size_t line_no = 0;
  std::string current;
  auto flush = [&]() -> Status {
    std::string_view stripped = StripWhitespace(current);
    if (stripped.empty() || stripped[0] == '#') {
      current.clear();
      return Status::OK();
    }
    ESTOCADA_ASSIGN_OR_RETURN(
        Dependency d,
        ParseDependency(stripped, StrCat("line", line_no)));
    out.push_back(std::move(d));
    current.clear();
    return Status::OK();
  };
  for (char c : text) {
    if (c == '\n' || c == ';') {
      ++line_no;
      ESTOCADA_RETURN_NOT_OK(flush());
    } else {
      current.push_back(c);
    }
  }
  ++line_no;
  ESTOCADA_RETURN_NOT_OK(flush());
  return out;
}

Result<std::vector<Atom>> ParseAtomList(std::string_view text) {
  PivotParser p(text);
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Atom> atoms, p.ParseAtoms());
  if (!p.AtEnd()) {
    return Status::ParseError(
        StrCat("trailing input after atom list in \"", text, "\""));
  }
  return atoms;
}

}  // namespace estocada::pivot
