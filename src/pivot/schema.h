#ifndef ESTOCADA_PIVOT_SCHEMA_H_
#define ESTOCADA_PIVOT_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "pivot/dependency.h"

namespace estocada::pivot {

/// Access-pattern adornment of one relation position. `kInput` encodes the
/// paper's "the value of the key must be specified in order to access the
/// values associated to this key": a feasible plan must bind every kInput
/// position before the atom can be evaluated.
enum class Adornment {
  kFree,   ///< Position can be retrieved by scanning.
  kInput,  ///< Position must be bound before access (binding pattern).
};

/// Signature of one pivot-model relation: name, named positions, adornments
/// and (optionally) a primary key over a subset of positions.
struct RelationSignature {
  std::string name;
  std::vector<std::string> columns;
  std::vector<Adornment> adornments;  ///< Same length as columns; kFree default.
  std::vector<size_t> key;            ///< Position indices; empty = no key.

  size_t arity() const { return columns.size(); }

  /// True when some position requires an input binding.
  bool HasAccessPattern() const;

  /// "KVCarts(key^in, value)".
  std::string ToString() const;
};

/// A pivot schema: the relation signatures plus the constraints (TGDs/EGDs)
/// describing the data model(s) — e.g. the Child/Desc axioms of the document
/// encoding, key EGDs, and access-pattern metadata.
class Schema {
 public:
  Schema() = default;

  /// Adds a relation; positions default to kFree / no key.
  Status AddRelation(RelationSignature sig);

  /// Convenience: relation with all-free positions named c0..c{n-1}.
  Status AddRelation(const std::string& name, size_t arity);

  bool HasRelation(const std::string& name) const;
  Result<RelationSignature> GetRelation(const std::string& name) const;
  const std::map<std::string, RelationSignature>& relations() const {
    return relations_;
  }

  void AddDependency(Dependency d) { dependencies_.push_back(std::move(d)); }
  const std::vector<Dependency>& dependencies() const { return dependencies_; }

  /// Merges another schema's relations and dependencies into this one.
  /// Identical re-registrations are tolerated; conflicting arities fail.
  Status Merge(const Schema& other);

  /// Validates that every atom of every dependency matches a registered
  /// relation with the right arity.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::map<std::string, RelationSignature> relations_;
  std::vector<Dependency> dependencies_;
};

}  // namespace estocada::pivot

#endif  // ESTOCADA_PIVOT_SCHEMA_H_
