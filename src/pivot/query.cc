#include "pivot/query.h"

#include <unordered_set>

#include "common/strings.h"

namespace estocada::pivot {

Term ApplySubstitution(const Substitution& sub, const Term& t) {
  if (!t.is_variable()) return t;
  auto it = sub.find(t.var_name());
  return it == sub.end() ? t : it->second;
}

Atom ApplySubstitution(const Substitution& sub, const Atom& a) {
  Atom out;
  out.relation = a.relation;
  out.terms.reserve(a.terms.size());
  for (const Term& t : a.terms) out.terms.push_back(ApplySubstitution(sub, t));
  return out;
}

std::vector<Atom> ApplySubstitution(const Substitution& sub,
                                    const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(ApplySubstitution(sub, a));
  return out;
}

std::vector<std::string> ConjunctiveQuery::HeadVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Term& t : head) {
    if (t.is_variable() && seen.insert(t.var_name()).second) {
      out.push_back(t.var_name());
    }
  }
  return out;
}

bool ConjunctiveQuery::IsSafe() const {
  for (const Term& t : head) {
    if (t.is_variable() && !ContainsVariable(body, t.var_name())) return false;
  }
  return true;
}

Status ConjunctiveQuery::Validate() const {
  if (body.empty()) {
    return Status::InvalidArgument(
        StrCat("query '", name, "' has an empty body"));
  }
  if (!IsSafe()) {
    return Status::InvalidArgument(
        StrCat("query '", name, "' is unsafe: head variable not in body"));
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString() const {
  return StrCat(
      name, "(",
      StrJoinMapped(head, ", ", [](const Term& t) { return t.ToString(); }),
      ") :- ",
      StrJoinMapped(body, ", ", [](const Atom& a) { return a.ToString(); }));
}

ConjunctiveQuery ConjunctiveQuery::RenameVariables(
    const std::string& prefix) const {
  Substitution sub;
  for (const std::string& v : BodyVariables()) {
    sub.emplace(v, Term::Var(prefix + v));
  }
  for (const Term& t : head) {
    if (t.is_variable() && !sub.count(t.var_name())) {
      sub.emplace(t.var_name(), Term::Var(prefix + t.var_name()));
    }
  }
  ConjunctiveQuery out;
  out.name = name;
  out.body = ApplySubstitution(sub, body);
  out.head.reserve(head.size());
  for (const Term& t : head) out.head.push_back(ApplySubstitution(sub, t));
  return out;
}

std::ostream& operator<<(std::ostream& os, const ConjunctiveQuery& q) {
  return os << q.ToString();
}

FrozenBody FreezeBody(const ConjunctiveQuery& q, uint64_t first_null_id) {
  FrozenBody out;
  uint64_t next = first_null_id;
  for (const std::string& v : q.BodyVariables()) {
    out.freeze.emplace(v, Term::Null(next++));
  }
  out.atoms = ApplySubstitution(out.freeze, q.body);
  return out;
}

}  // namespace estocada::pivot
