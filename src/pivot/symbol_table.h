#ifndef ESTOCADA_PIVOT_SYMBOL_TABLE_H_
#define ESTOCADA_PIVOT_SYMBOL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pivot/term.h"

namespace estocada::pivot {

/// Dense interned identifier. The chase kernel works on these instead of
/// string-keyed maps: relation names, variable names and ground terms are
/// interned once and compared / hashed as plain integers afterwards.
using SymbolId = uint32_t;

/// Sentinel for "not interned / unbound".
inline constexpr SymbolId kNoSymbol = 0xFFFFFFFFu;

/// Interns strings (relation names, variable names) to dense SymbolIds.
/// Ids are assigned in first-intern order starting at 0 and are stable for
/// the lifetime of the table; `name(id)` is the inverse.
class SymbolTable {
 public:
  /// Returns the id of `s`, interning it if new.
  SymbolId Intern(const std::string& s);

  /// The id of `s` if already interned.
  std::optional<SymbolId> Lookup(const std::string& s) const;

  const std::string& name(SymbolId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

  /// Forgets every interned symbol (ids restart at 0). Bucket arrays and
  /// vector capacity are retained, so a cleared table re-fills without
  /// rehashing — scratch tables reset this way instead of being rebuilt.
  void Clear() {
    ids_.clear();
    names_.clear();
  }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

/// Interns ground terms (constants and labelled nulls) to dense SymbolIds.
/// Two terms get the same id iff they compare equal; `term(id)` is the
/// inverse. Variables must not be interned here — they live in flat slot
/// vectors keyed by a SymbolTable of their names.
class TermTable {
 public:
  /// Returns the id of `t`, interning it if new.
  SymbolId Intern(const Term& t);

  /// The id of `t` if already interned.
  std::optional<SymbolId> Lookup(const Term& t) const;

  const Term& term(SymbolId id) const { return terms_[id]; }
  size_t size() const { return terms_.size(); }

  /// See SymbolTable::Clear().
  void Clear() {
    ids_.clear();
    terms_.clear();
  }

 private:
  std::unordered_map<Term, SymbolId, TermHash> ids_;
  std::vector<Term> terms_;
};

}  // namespace estocada::pivot

#endif  // ESTOCADA_PIVOT_SYMBOL_TABLE_H_
