#include "pivot/atom.h"

#include <unordered_set>

#include "common/hash.h"
#include "common/strings.h"

namespace estocada::pivot {

std::string Atom::ToString() const {
  return StrCat(relation, "(",
                StrJoinMapped(terms, ", ", [](const Term& t) { return t.ToString(); }),
                ")");
}

size_t Atom::Hash() const {
  size_t seed = std::hash<std::string>()(relation);
  for (const Term& t : terms) HashCombine(&seed, t.Hash());
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Atom& a) {
  return os << a.ToString();
}

std::vector<std::string> CollectVariables(const std::vector<Atom>& atoms) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Atom& atom : atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_variable() && seen.insert(t.var_name()).second) {
        out.push_back(t.var_name());
      }
    }
  }
  return out;
}

bool ContainsVariable(const std::vector<Atom>& atoms, const std::string& name) {
  for (const Atom& atom : atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_variable() && t.var_name() == name) return true;
    }
  }
  return false;
}

}  // namespace estocada::pivot
