#ifndef ESTOCADA_PIVOT_QUERY_H_
#define ESTOCADA_PIVOT_QUERY_H_

#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "pivot/atom.h"

namespace estocada::pivot {

/// A substitution maps variable names to terms. Applying it replaces bound
/// variables and leaves everything else alone.
using Substitution = std::unordered_map<std::string, Term>;

/// Applies `sub` to a term / atom / atom list.
Term ApplySubstitution(const Substitution& sub, const Term& t);
Atom ApplySubstitution(const Substitution& sub, const Atom& a);
std::vector<Atom> ApplySubstitution(const Substitution& sub,
                                    const std::vector<Atom>& atoms);

/// A conjunctive query over the pivot signature:
///   name(head_terms) :- body_atoms.
/// Head terms are usually variables but may be constants. All pivot-level
/// queries, view definitions and rewritings in ESTOCADA are CQs.
struct ConjunctiveQuery {
  std::string name;
  std::vector<Term> head;
  std::vector<Atom> body;

  size_t arity() const { return head.size(); }

  /// Distinct variables of the body in first-occurrence order.
  std::vector<std::string> BodyVariables() const {
    return CollectVariables(body);
  }

  /// Variables occurring in the head.
  std::vector<std::string> HeadVariables() const;

  /// True if every head variable appears in the body (safety).
  bool IsSafe() const;

  /// Verifies safety and non-empty body.
  Status Validate() const;

  /// "q(x, y) :- R(x, z), S(z, y)".
  std::string ToString() const;

  /// Renames every variable with `prefix` prepended; used to make two
  /// queries variable-disjoint before combining them.
  ConjunctiveQuery RenameVariables(const std::string& prefix) const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.name == b.name && a.head == b.head && a.body == b.body;
  }
};

std::ostream& operator<<(std::ostream& os, const ConjunctiveQuery& q);

/// The canonical ("frozen") instance of a CQ body: each variable becomes a
/// distinct labelled null, numbered from `first_null_id` in first-occurrence
/// order; returns the frozen atoms and the variable→null mapping.
struct FrozenBody {
  std::vector<Atom> atoms;
  Substitution freeze;  // variable name -> labelled null
};
FrozenBody FreezeBody(const ConjunctiveQuery& q, uint64_t first_null_id = 0);

}  // namespace estocada::pivot

#endif  // ESTOCADA_PIVOT_QUERY_H_
