#include "pivot/term.h"

#include <cstdio>

#include "common/strings.h"

namespace estocada::pivot {

std::string Constant::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int()) return std::to_string(int_value());
  if (is_real()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", real_value());
    return buf;
  }
  // Escape quotes/backslashes so the literal re-parses exactly (view
  // definitions round-trip through their text form, e.g. in catalog
  // checkpoints).
  std::string out = "'";
  for (char c : string_value()) {
    if (c == '\'' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

size_t Constant::Hash() const {
  size_t seed = repr_.index();
  switch (repr_.index()) {
    case 0:
      break;
    case 1:
      HashCombine(&seed, std::get<bool>(repr_) ? 1u : 2u);
      break;
    case 2:
      HashCombine(&seed, std::hash<int64_t>()(std::get<int64_t>(repr_)));
      break;
    case 3:
      HashCombine(&seed, std::hash<double>()(std::get<double>(repr_)));
      break;
    case 4:
      HashCombine(&seed, std::hash<std::string>()(std::get<std::string>(repr_)));
      break;
  }
  return seed;
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
      return name_;
    case Kind::kConstant:
      return constant_.ToString();
    case Kind::kLabelledNull:
      return StrCat("_N", null_id_);
  }
  return "?";
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Term::Kind::kVariable:
      return a.name_ == b.name_;
    case Term::Kind::kConstant:
      return a.constant_ == b.constant_;
    case Term::Kind::kLabelledNull:
      return a.null_id_ == b.null_id_;
  }
  return false;
}

bool operator<(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) {
    return static_cast<int>(a.kind_) < static_cast<int>(b.kind_);
  }
  switch (a.kind_) {
    case Term::Kind::kVariable:
      return a.name_ < b.name_;
    case Term::Kind::kConstant:
      return a.constant_ < b.constant_;
    case Term::Kind::kLabelledNull:
      return a.null_id_ < b.null_id_;
  }
  return false;
}

size_t Term::Hash() const {
  size_t seed = static_cast<size_t>(kind_) + 17;
  switch (kind_) {
    case Kind::kVariable:
      HashCombine(&seed, std::hash<std::string>()(name_));
      break;
    case Kind::kConstant:
      HashCombine(&seed, constant_.Hash());
      break;
    case Kind::kLabelledNull:
      HashCombine(&seed, std::hash<uint64_t>()(null_id_));
      break;
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.ToString();
}

std::ostream& operator<<(std::ostream& os, const Constant& c) {
  return os << c.ToString();
}

}  // namespace estocada::pivot
