#ifndef ESTOCADA_PIVOT_ATOM_H_
#define ESTOCADA_PIVOT_ATOM_H_

#include <ostream>
#include <string>
#include <vector>

#include "pivot/term.h"

namespace estocada::pivot {

/// A relational atom `R(t1, ..., tn)` in the pivot model.
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  Atom() = default;
  Atom(std::string rel, std::vector<Term> ts)
      : relation(std::move(rel)), terms(std::move(ts)) {}

  size_t arity() const { return terms.size(); }

  /// "R(x, 'a', _N3)".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.terms < b.terms;
  }
};

std::ostream& operator<<(std::ostream& os, const Atom& a);

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// Collects the distinct variables occurring in `atoms`, in first-occurrence
/// order.
std::vector<std::string> CollectVariables(const std::vector<Atom>& atoms);

/// True iff variable `name` occurs in any of `atoms`.
bool ContainsVariable(const std::vector<Atom>& atoms, const std::string& name);

}  // namespace estocada::pivot

#endif  // ESTOCADA_PIVOT_ATOM_H_
