#ifndef ESTOCADA_PIVOT_TERM_H_
#define ESTOCADA_PIVOT_TERM_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/hash.h"

namespace estocada::pivot {

/// A typed constant in the pivot model. The monostate alternative is the
/// SQL-style null constant.
class Constant {
 public:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;

  Constant() : repr_(std::monostate{}) {}
  static Constant Null() { return Constant(); }
  static Constant Bool(bool b) { return Constant(Repr(b)); }
  static Constant Int(int64_t v) { return Constant(Repr(v)); }
  static Constant Real(double v) { return Constant(Repr(v)); }
  static Constant Str(std::string s) { return Constant(Repr(std::move(s))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_real() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double real_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }

  const Repr& repr() const { return repr_; }

  /// Render as pivot-syntax literal: 'abc', 42, 3.5, true, null.
  std::string ToString() const;

  friend bool operator==(const Constant& a, const Constant& b) {
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Constant& a, const Constant& b) {
    return !(a == b);
  }
  friend bool operator<(const Constant& a, const Constant& b) {
    return a.repr_ < b.repr_;
  }

  size_t Hash() const;

 private:
  explicit Constant(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

/// A term of the pivot model: a variable (named), a constant, or a labelled
/// null (fresh value invented by a chase step; identified by a counter).
class Term {
 public:
  enum class Kind { kVariable, kConstant, kLabelledNull };

  /// Default-constructed term is the null constant (needed by containers).
  Term() : kind_(Kind::kConstant) {}

  static Term Var(std::string name) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.name_ = std::move(name);
    return t;
  }
  static Term Const(Constant c) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.constant_ = std::move(c);
    return t;
  }
  static Term Null(uint64_t id) {
    Term t;
    t.kind_ = Kind::kLabelledNull;
    t.null_id_ = id;
    return t;
  }
  /// Convenience constant builders.
  static Term Str(std::string s) { return Const(Constant::Str(std::move(s))); }
  static Term Int(int64_t v) { return Const(Constant::Int(v)); }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_labelled_null() const { return kind_ == Kind::kLabelledNull; }
  /// Ground terms may appear in instances (constants and labelled nulls).
  bool is_ground() const { return !is_variable(); }

  const std::string& var_name() const { return name_; }
  const Constant& constant() const { return constant_; }
  uint64_t null_id() const { return null_id_; }

  /// Variables print as their name, nulls as "_N<k>", constants as literals.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b);
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b);

  size_t Hash() const;

 private:
  Kind kind_;
  std::string name_;      // kVariable
  Constant constant_;     // kConstant
  uint64_t null_id_ = 0;  // kLabelledNull
};

std::ostream& operator<<(std::ostream& os, const Term& t);
std::ostream& operator<<(std::ostream& os, const Constant& c);

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace estocada::pivot

#endif  // ESTOCADA_PIVOT_TERM_H_
