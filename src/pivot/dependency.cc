#include "pivot/dependency.h"

#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/strings.h"

namespace estocada::pivot {

std::vector<std::string> Tgd::ExistentialVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Atom& a : head) {
    for (const Term& t : a.terms) {
      if (t.is_variable() && !ContainsVariable(body, t.var_name()) &&
          seen.insert(t.var_name()).second) {
        out.push_back(t.var_name());
      }
    }
  }
  return out;
}

std::vector<std::string> Tgd::FrontierVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Atom& a : head) {
    for (const Term& t : a.terms) {
      if (t.is_variable() && ContainsVariable(body, t.var_name()) &&
          seen.insert(t.var_name()).second) {
        out.push_back(t.var_name());
      }
    }
  }
  return out;
}

std::string Tgd::ToString() const {
  return StrCat(
      StrJoinMapped(body, ", ", [](const Atom& a) { return a.ToString(); }),
      " -> ",
      StrJoinMapped(head, ", ", [](const Atom& a) { return a.ToString(); }));
}

std::string Egd::ToString() const {
  return StrCat(
      StrJoinMapped(body, ", ", [](const Atom& a) { return a.ToString(); }),
      " -> ", left.ToString(), " = ", right.ToString());
}

std::ostream& operator<<(std::ostream& os, const Tgd& t) {
  return os << t.ToString();
}
std::ostream& operator<<(std::ostream& os, const Egd& e) {
  return os << e.ToString();
}
std::ostream& operator<<(std::ostream& os, const Dependency& d) {
  return os << d.ToString();
}

bool IsWeaklyAcyclic(const std::vector<Dependency>& deps) {
  // Nodes: (relation, position). Edges from every body position of a
  // frontier variable to (a) every head position of the same variable
  // (regular edge) and (b) every head position holding an existential
  // variable in the same head (special edge). Weakly acyclic iff no cycle
  // contains a special edge.
  using Node = std::pair<std::string, size_t>;
  std::map<Node, std::map<Node, bool>> edges;  // dst -> has_special

  for (const Dependency& d : deps) {
    if (!d.is_tgd()) continue;
    const Tgd& t = d.tgd;
    std::unordered_set<std::string> existentials;
    for (const std::string& v : t.ExistentialVariables()) existentials.insert(v);

    // Positions of each frontier variable in the body.
    std::map<std::string, std::vector<Node>> body_positions;
    for (const Atom& a : t.body) {
      for (size_t i = 0; i < a.terms.size(); ++i) {
        if (a.terms[i].is_variable()) {
          body_positions[a.terms[i].var_name()].push_back({a.relation, i});
        }
      }
    }

    for (const Atom& a : t.head) {
      for (size_t i = 0; i < a.terms.size(); ++i) {
        const Term& ht = a.terms[i];
        if (!ht.is_variable()) continue;
        Node dst{a.relation, i};
        if (existentials.count(ht.var_name())) {
          // Special edge from every body position of every frontier var.
          for (const std::string& fv : t.FrontierVariables()) {
            for (const Node& src : body_positions[fv]) {
              edges[src][dst] = true;  // special dominates
            }
          }
        } else {
          for (const Node& src : body_positions[ht.var_name()]) {
            auto& entry = edges[src];
            entry.emplace(dst, false);  // keep special if already there
          }
        }
      }
    }
  }

  // Detect a cycle through a special edge: for each special edge (u, v),
  // check whether v reaches u.
  auto reaches = [&edges](const Node& from, const Node& to) {
    std::set<Node> visited;
    std::vector<Node> stack{from};
    while (!stack.empty()) {
      Node n = stack.back();
      stack.pop_back();
      if (n == to) return true;
      if (!visited.insert(n).second) continue;
      auto it = edges.find(n);
      if (it == edges.end()) continue;
      for (const auto& [dst, special] : it->second) stack.push_back(dst);
    }
    return false;
  };

  for (const auto& [src, outs] : edges) {
    for (const auto& [dst, special] : outs) {
      if (special && reaches(dst, src)) return false;
    }
  }
  return true;
}

}  // namespace estocada::pivot
