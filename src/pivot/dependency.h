#ifndef ESTOCADA_PIVOT_DEPENDENCY_H_
#define ESTOCADA_PIVOT_DEPENDENCY_H_

#include <ostream>
#include <string>
#include <vector>

#include "pivot/atom.h"

namespace estocada::pivot {

/// Tuple-generating dependency: ∀x̄ body(x̄) → ∃ȳ head(x̄, ȳ).
/// Existential variables are exactly the head variables absent from the body.
struct Tgd {
  std::string label;  ///< Diagnostic name ("doc:child-desc", "view:V1:fwd"...).
  std::vector<Atom> body;
  std::vector<Atom> head;

  /// Head variables that do not occur in the body (the ∃-quantified ones).
  std::vector<std::string> ExistentialVariables() const;

  /// Body variables that also occur in the head (the frontier).
  std::vector<std::string> FrontierVariables() const;

  /// "body -> head".
  std::string ToString() const;
};

/// Equality-generating dependency: ∀x̄ body(x̄) → l = r (one equality; a
/// multi-equality EGD is represented as several Egd values).
struct Egd {
  std::string label;
  std::vector<Atom> body;
  Term left;
  Term right;

  std::string ToString() const;
};

/// A dependency is a TGD or an EGD; sets of these describe both the data
/// models (document/KV/nested encodings) and the materialized views.
struct Dependency {
  enum class Kind { kTgd, kEgd };
  Kind kind;
  Tgd tgd;  // valid when kind == kTgd
  Egd egd;  // valid when kind == kEgd

  static Dependency FromTgd(Tgd t) {
    Dependency d;
    d.kind = Kind::kTgd;
    d.tgd = std::move(t);
    return d;
  }
  static Dependency FromEgd(Egd e) {
    Dependency d;
    d.kind = Kind::kEgd;
    d.egd = std::move(e);
    return d;
  }

  bool is_tgd() const { return kind == Kind::kTgd; }
  bool is_egd() const { return kind == Kind::kEgd; }

  const std::string& label() const {
    return is_tgd() ? tgd.label : egd.label;
  }

  std::string ToString() const {
    return is_tgd() ? tgd.ToString() : egd.ToString();
  }
};

std::ostream& operator<<(std::ostream& os, const Tgd& t);
std::ostream& operator<<(std::ostream& os, const Egd& e);
std::ostream& operator<<(std::ostream& os, const Dependency& d);

/// True iff the TGD set is weakly acyclic (Fagin et al.): the dependency
/// graph over (relation, position) nodes has no cycle through a
/// special ("existential") edge. Weak acyclicity guarantees chase
/// termination; all encodings and view constraints ESTOCADA generates are
/// checked against this in tests.
bool IsWeaklyAcyclic(const std::vector<Dependency>& deps);

}  // namespace estocada::pivot

#endif  // ESTOCADA_PIVOT_DEPENDENCY_H_
