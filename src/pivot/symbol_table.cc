#include "pivot/symbol_table.h"

namespace estocada::pivot {

SymbolId SymbolTable::Intern(const std::string& s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  ids_.emplace(s, id);
  names_.push_back(s);
  return id;
}

std::optional<SymbolId> SymbolTable::Lookup(const std::string& s) const {
  auto it = ids_.find(s);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

SymbolId TermTable::Intern(const Term& t) {
  auto it = ids_.find(t);
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(terms_.size());
  ids_.emplace(t, id);
  terms_.push_back(t);
  return id;
}

std::optional<SymbolId> TermTable::Lookup(const Term& t) const {
  auto it = ids_.find(t);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace estocada::pivot
