#include "pivot/schema.h"

#include "common/strings.h"

namespace estocada::pivot {

bool RelationSignature::HasAccessPattern() const {
  for (Adornment a : adornments) {
    if (a == Adornment::kInput) return true;
  }
  return false;
}

std::string RelationSignature::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::string c = columns[i];
    if (i < adornments.size() && adornments[i] == Adornment::kInput) {
      c += "^in";
    }
    cols.push_back(std::move(c));
  }
  return StrCat(name, "(", StrJoin(cols, ", "), ")");
}

Status Schema::AddRelation(RelationSignature sig) {
  if (sig.name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (sig.adornments.empty()) {
    sig.adornments.assign(sig.columns.size(), Adornment::kFree);
  }
  if (sig.adornments.size() != sig.columns.size()) {
    return Status::InvalidArgument(
        StrCat("relation '", sig.name, "': adornment/column count mismatch"));
  }
  for (size_t k : sig.key) {
    if (k >= sig.columns.size()) {
      return Status::InvalidArgument(
          StrCat("relation '", sig.name, "': key position out of range"));
    }
  }
  auto it = relations_.find(sig.name);
  if (it != relations_.end()) {
    if (it->second.arity() != sig.arity()) {
      return Status::AlreadyExists(
          StrCat("relation '", sig.name, "' already exists with arity ",
                 it->second.arity()));
    }
    return Status::OK();  // Identical-enough re-registration is a no-op.
  }
  relations_.emplace(sig.name, std::move(sig));
  return Status::OK();
}

Status Schema::AddRelation(const std::string& name, size_t arity) {
  RelationSignature sig;
  sig.name = name;
  for (size_t i = 0; i < arity; ++i) sig.columns.push_back(StrCat("c", i));
  sig.adornments.assign(arity, Adornment::kFree);
  return AddRelation(std::move(sig));
}

bool Schema::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

Result<RelationSignature> Schema::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not in schema"));
  }
  return it->second;
}

Status Schema::Merge(const Schema& other) {
  for (const auto& [name, sig] : other.relations_) {
    ESTOCADA_RETURN_NOT_OK(AddRelation(sig));
  }
  for (const Dependency& d : other.dependencies_) {
    dependencies_.push_back(d);
  }
  return Status::OK();
}

Status Schema::Validate() const {
  auto check_atoms = [this](const std::vector<Atom>& atoms,
                            const std::string& label) -> Status {
    for (const Atom& a : atoms) {
      auto it = relations_.find(a.relation);
      if (it == relations_.end()) {
        return Status::NotFound(
            StrCat("dependency '", label, "': unknown relation '", a.relation,
                   "'"));
      }
      if (it->second.arity() != a.arity()) {
        return Status::InvalidArgument(
            StrCat("dependency '", label, "': relation '", a.relation,
                   "' used with arity ", a.arity(), ", declared ",
                   it->second.arity()));
      }
    }
    return Status::OK();
  };
  for (const Dependency& d : dependencies_) {
    if (d.is_tgd()) {
      ESTOCADA_RETURN_NOT_OK(check_atoms(d.tgd.body, d.label()));
      ESTOCADA_RETURN_NOT_OK(check_atoms(d.tgd.head, d.label()));
    } else {
      ESTOCADA_RETURN_NOT_OK(check_atoms(d.egd.body, d.label()));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (const auto& [name, sig] : relations_) {
    out += sig.ToString();
    out += "\n";
  }
  for (const Dependency& d : dependencies_) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace estocada::pivot
