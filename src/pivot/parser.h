#ifndef ESTOCADA_PIVOT_PARSER_H_
#define ESTOCADA_PIVOT_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "pivot/dependency.h"
#include "pivot/query.h"

namespace estocada::pivot {

/// Parses a conjunctive query in datalog-ish syntax:
///
///   q(x, y) :- R(x, z), S(z, y), T(z, 'paris', 42)
///
/// Identifiers are variables; quoted strings, numbers, true/false/null are
/// constants. Relation names are the identifiers applied to parentheses.
Result<ConjunctiveQuery> ParseQuery(std::string_view text);

/// Parses a dependency:
///
///   TGD:  R(x, y), S(y, z) -> T(x, w), U(w, z)     (w is existential)
///   EGD:  R(x, y), R(x, z) -> y = z
///
/// Existential variables of a TGD are inferred (head vars not in the body).
Result<Dependency> ParseDependency(std::string_view text,
                                   std::string label = "");

/// Parses a ';'- or newline-separated list of dependencies; lines starting
/// with '#' are comments.
Result<std::vector<Dependency>> ParseDependencies(std::string_view text);

/// Parses a comma-separated atom list "R(x,y), S(y,z)".
Result<std::vector<Atom>> ParseAtomList(std::string_view text);

}  // namespace estocada::pivot

#endif  // ESTOCADA_PIVOT_PARSER_H_
