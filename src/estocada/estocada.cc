#include "estocada/estocada.h"

#include <algorithm>

#include "common/strings.h"
#include "pivot/parser.h"

namespace estocada {

using engine::Row;
using engine::Value;

Status Estocada::RegisterSchema(const pivot::Schema& schema) {
  ESTOCADA_RETURN_NOT_OK(catalog_.RegisterDatasetSchema(schema));
  // Create empty staging slots with the declared column names.
  for (const auto& [name, sig] : schema.relations()) {
    auto& slot = staging_[name];
    if (slot.columns.empty()) slot.columns = sig.columns;
  }
  MarkCatalogChanged();
  return Status::OK();
}

Status Estocada::RegisterStore(catalog::StoreHandle handle) {
  return catalog_.RegisterStore(std::move(handle));
}

Status Estocada::LoadRow(const std::string& relation, Row row) {
  auto sig = catalog_.dataset_schema().GetRelation(relation);
  if (!sig.ok()) return sig.status();
  if (row.size() != sig->arity()) {
    return Status::InvalidArgument(
        StrCat("relation '", relation, "' expects ", sig->arity(),
               " values, got ", row.size()));
  }
  staging_[relation].rows.push_back(std::move(row));
  return Status::OK();
}

Status Estocada::LoadRows(const std::string& relation,
                          std::vector<Row> rows) {
  for (Row& row : rows) {
    ESTOCADA_RETURN_NOT_OK(LoadRow(relation, std::move(row)));
  }
  return Status::OK();
}

Status Estocada::LoadStaging(const rewriting::StagingData& staging) {
  for (const auto& [relation, rel] : staging) {
    ESTOCADA_RETURN_NOT_OK(LoadRows(relation, rel.rows));
  }
  return Status::OK();
}

Status Estocada::DefineFragment(const std::string& view_text,
                                const std::string& store_name,
                                std::vector<pivot::Adornment> adornments,
                                std::vector<size_t> index_positions) {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(view_text));
  pacb::ViewDefinition view;
  view.query = std::move(q);
  view.adornments = std::move(adornments);
  return DefineFragment(std::move(view), store_name,
                        std::move(index_positions));
}

Status Estocada::DefineFragment(pacb::ViewDefinition view,
                                const std::string& store_name,
                                std::vector<size_t> index_positions) {
  catalog::StorageDescriptor desc;
  desc.view = std::move(view);
  desc.store_name = store_name;
  desc.index_positions = std::move(index_positions);
  std::string name = desc.name();
  ESTOCADA_RETURN_NOT_OK(catalog_.RegisterFragment(std::move(desc)));
  Status materialized =
      rewriting::MaterializeFragment(staging_, &catalog_, name);
  if (!materialized.ok()) {
    // Keep catalog and stores consistent on failure.
    (void)catalog_.DropFragment(name);
    return materialized;
  }
  MarkCatalogChanged();
  return Status::OK();
}

Status Estocada::DropFragment(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(rewriting::DematerializeFragment(&catalog_, name));
  ESTOCADA_RETURN_NOT_OK(catalog_.DropFragment(name));
  MarkCatalogChanged();
  return Status::OK();
}

Status Estocada::DefineReplicatedFragment(
    const std::string& view_text,
    const std::vector<std::string>& replica_stores,
    std::vector<pivot::Adornment> adornments,
    std::vector<size_t> index_positions) {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(view_text));
  pacb::ViewDefinition view;
  view.query = std::move(q);
  view.adornments = std::move(adornments);
  return DefineReplicatedFragment(std::move(view), replica_stores,
                                  std::move(index_positions));
}

Status Estocada::DefineReplicatedFragment(
    pacb::ViewDefinition view, const std::vector<std::string>& replica_stores,
    std::vector<size_t> index_positions) {
  if (replica_stores.empty()) {
    return Status::InvalidArgument(
        "a replicated fragment needs at least one store");
  }
  catalog::StorageDescriptor desc;
  desc.view = std::move(view);
  desc.store_name = replica_stores.front();
  desc.index_positions = std::move(index_positions);
  for (const std::string& store : replica_stores) {
    catalog::ReplicaPlacement placement;
    placement.store_name = store;
    desc.replicas.push_back(std::move(placement));
  }
  std::string name = desc.name();
  ESTOCADA_RETURN_NOT_OK(catalog_.RegisterFragment(std::move(desc)));
  Status materialized =
      rewriting::MaterializeFragment(staging_, &catalog_, name);
  if (!materialized.ok()) {
    (void)catalog_.DropFragment(name);
    return materialized;
  }
  MarkCatalogChanged();
  return Status::OK();
}

Status Estocada::DefinePartitionedFragment(
    const std::string& view_text, catalog::PartitionSpec::Kind kind,
    size_t key_position, const std::vector<std::string>& shard_stores,
    std::vector<engine::Value> bounds,
    std::vector<pivot::Adornment> adornments,
    std::vector<size_t> index_positions) {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(view_text));
  pacb::ViewDefinition view;
  view.query = std::move(q);
  view.adornments = std::move(adornments);
  std::vector<std::vector<std::string>> shard_replica_stores;
  shard_replica_stores.reserve(shard_stores.size());
  for (const std::string& store : shard_stores) {
    shard_replica_stores.push_back({store});
  }
  return DefinePartitionedFragment(std::move(view), kind, key_position,
                                   shard_replica_stores, std::move(bounds),
                                   std::move(index_positions));
}

Status Estocada::DefinePartitionedFragment(
    pacb::ViewDefinition view, catalog::PartitionSpec::Kind kind,
    size_t key_position,
    const std::vector<std::vector<std::string>>& shard_replica_stores,
    std::vector<engine::Value> bounds, std::vector<size_t> index_positions) {
  if (shard_replica_stores.size() < 2) {
    return Status::InvalidArgument(
        "a partitioned fragment needs at least 2 shards");
  }
  catalog::StorageDescriptor desc;
  desc.view = std::move(view);
  desc.index_positions = std::move(index_positions);
  desc.partition.kind = kind;
  desc.partition.key_position = key_position;
  desc.partition.shards = shard_replica_stores.size();
  desc.partition.bounds = std::move(bounds);
  for (const std::vector<std::string>& replica_stores : shard_replica_stores) {
    if (replica_stores.empty()) {
      return Status::InvalidArgument("every shard needs at least one store");
    }
    catalog::ShardState shard;
    for (const std::string& store : replica_stores) {
      catalog::ReplicaPlacement placement;
      placement.store_name = store;
      shard.replicas.push_back(std::move(placement));
    }
    desc.shards.push_back(std::move(shard));
  }
  desc.store_name = shard_replica_stores.front().front();
  std::string name = desc.name();
  ESTOCADA_RETURN_NOT_OK(catalog_.RegisterFragment(std::move(desc)));
  Status materialized =
      rewriting::MaterializeFragment(staging_, &catalog_, name);
  if (!materialized.ok()) {
    (void)catalog_.DropFragment(name);
    return materialized;
  }
  MarkCatalogChanged();
  return Status::OK();
}

Status Estocada::BeginReplicaRebuild(const std::string& name,
                                     size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(catalog::StorageDescriptor * desc,
                            catalog_.GetMutableFragment(name));
  if (replica >= desc->replica_count()) {
    return Status::OutOfRange(StrCat("fragment '", name, "' has ",
                                     desc->replica_count(),
                                     " replica(s), asked for #", replica));
  }
  if (desc->replica_count() <= 1) {
    return Status::FailedPrecondition(
        StrCat("fragment '", name,
               "' has a single replica; rebuilding it would leave nothing "
               "to serve reads"));
  }
  // Flag first: incremental maintenance and routing must stop touching
  // the container before it is torn down.
  desc->replicas[replica].rebuilding = true;
  Status dropped = rewriting::DropReplicaContainer(&catalog_, name, replica);
  if (!dropped.ok() && dropped.code() != StatusCode::kNotFound) {
    return dropped;
  }
  return rewriting::CreateReplicaContainer(&catalog_, name, replica);
}

Status Estocada::AppendToReplicaRows(const std::string& name, size_t replica,
                                     const std::vector<Row>& rows) {
  ESTOCADA_ASSIGN_OR_RETURN(const catalog::StorageDescriptor* desc,
                            catalog_.GetFragment(name));
  if (replica >= desc->replica_count()) {
    return Status::OutOfRange(StrCat("fragment '", name, "' has ",
                                     desc->replica_count(),
                                     " replica(s), asked for #", replica));
  }
  if (desc->replicas.empty() || !desc->replicas[replica].rebuilding) {
    return Status::FailedPrecondition(
        StrCat("replica #", replica, " of '", name,
               "' is live; writes reach it through the fan-out"));
  }
  return rewriting::AppendToReplica(&catalog_, name, replica, rows);
}

Status Estocada::RebuildReplicaFromStaging(const std::string& name,
                                           size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(const catalog::StorageDescriptor* desc,
                            catalog_.GetFragment(name));
  if (desc->replicas.empty() || replica >= desc->replicas.size() ||
      !desc->replicas[replica].rebuilding) {
    return Status::FailedPrecondition(
        StrCat("replica #", replica, " of '", name,
               "' is not rebuilding; use BeginReplicaRebuild first"));
  }
  return rewriting::MaterializeReplica(staging_, &catalog_, name, replica);
}

Status Estocada::AdmitReplica(const std::string& name, size_t replica) {
  ESTOCADA_ASSIGN_OR_RETURN(catalog::StorageDescriptor * desc,
                            catalog_.GetMutableFragment(name));
  if (desc->replicas.empty() || replica >= desc->replicas.size()) {
    return Status::OutOfRange(
        StrCat("fragment '", name, "' has no replica #", replica));
  }
  if (!desc->replicas[replica].rebuilding) {
    return Status::FailedPrecondition(
        StrCat("replica #", replica, " of '", name, "' is not rebuilding"));
  }
  desc->replicas[replica].epoch = desc->write_epoch;
  desc->replicas[replica].rebuilding = false;
  // No catalog-epoch bump: replica routing happens per translation, so
  // cached rewritings pick the re-admitted placement up immediately.
  return Status::OK();
}

Status Estocada::VerifyReplica(const std::string& name,
                               size_t replica) const {
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> expected,
                            EvaluateFragmentView(name));
  return rewriting::VerifyReplicaAgainstRows(catalog_, name, replica,
                                             expected);
}

Result<uint64_t> Estocada::ReplicaDigest(const std::string& name,
                                         size_t replica) const {
  return rewriting::FragmentReplicaDigest(catalog_, name, replica);
}

Status Estocada::RebuildShardReplicaFromStaging(const std::string& name,
                                                size_t shard, size_t replica) {
  return rewriting::MaterializeShardReplica(staging_, &catalog_, name, shard,
                                            replica);
}

Status Estocada::DefineShadowFragment(pacb::ViewDefinition view,
                                      const std::string& store_name,
                                      std::vector<size_t> index_positions) {
  catalog::StorageDescriptor desc;
  desc.view = std::move(view);
  desc.store_name = store_name;
  desc.index_positions = std::move(index_positions);
  desc.lifecycle = catalog::FragmentLifecycle::kShadow;
  std::string name = desc.name();
  ESTOCADA_RETURN_NOT_OK(catalog_.RegisterFragment(std::move(desc)));
  Status created = rewriting::CreateFragmentContainer(&catalog_, name);
  if (!created.ok()) {
    (void)catalog_.DropFragment(name);
    return created;
  }
  // Shadow fragments are invisible to the planner: no epoch bump.
  return Status::OK();
}

namespace {

Status RequireShadow(const catalog::Catalog& catalog,
                     const std::string& name) {
  ESTOCADA_ASSIGN_OR_RETURN(const catalog::StorageDescriptor* desc,
                            catalog.GetFragment(name));
  if (!desc->is_shadow()) {
    return Status::FailedPrecondition(
        StrCat("fragment '", name, "' is active, not a shadow"));
  }
  return Status::OK();
}

}  // namespace

Status Estocada::AppendToShadowFragment(const std::string& name,
                                        const std::vector<Row>& rows) {
  ESTOCADA_RETURN_NOT_OK(RequireShadow(catalog_, name));
  return rewriting::AppendToFragment(&catalog_, name, rows);
}

Status Estocada::MaintainShadowFragment(
    const std::string& name,
    const std::vector<std::pair<std::string, Row>>& deltas) {
  ESTOCADA_RETURN_NOT_OK(RequireShadow(catalog_, name));
  return rewriting::MaintainOneFragmentOnInsertBatch(staging_, &catalog_,
                                                     name, deltas);
}

Status Estocada::RebuildShadowFragment(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(RequireShadow(catalog_, name));
  ESTOCADA_RETURN_NOT_OK(rewriting::DematerializeFragment(&catalog_, name));
  return rewriting::MaterializeFragment(staging_, &catalog_, name);
}

Status Estocada::ActivateShadowFragment(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(RequireShadow(catalog_, name));
  ESTOCADA_ASSIGN_OR_RETURN(catalog::StorageDescriptor * desc,
                            catalog_.GetMutableFragment(name));
  desc->lifecycle = catalog::FragmentLifecycle::kActive;
  MarkCatalogChanged();
  return Status::OK();
}

Status Estocada::DropShadowFragment(const std::string& name) {
  ESTOCADA_RETURN_NOT_OK(RequireShadow(catalog_, name));
  ESTOCADA_RETURN_NOT_OK(rewriting::DematerializeFragment(&catalog_, name));
  // The planner never saw a shadow fragment: no epoch bump on rollback.
  return catalog_.DropFragment(name);
}

Result<std::vector<Row>> Estocada::EvaluateFragmentView(
    const std::string& name) const {
  ESTOCADA_ASSIGN_OR_RETURN(const catalog::StorageDescriptor* desc,
                            catalog_.GetFragment(name));
  return rewriting::EvaluateCqOverStaging(desc->view.query, staging_, {},
                                          /*distinct=*/true);
}

Status Estocada::VerifyFragment(const std::string& name) const {
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> expected,
                            EvaluateFragmentView(name));
  return rewriting::VerifyFragmentAgainstRows(catalog_, name, expected);
}

std::string Estocada::ExportCatalogJson() const {
  return catalog::CatalogToJson(catalog_).Pretty();
}

Status Estocada::ImportCatalogJson(const std::string& json_text) {
  ESTOCADA_ASSIGN_OR_RETURN(json::JsonValue doc, json::Parse(json_text));
  // Stage descriptors into a scratch catalog first so a malformed file
  // cannot leave this system half-imported.
  catalog::Catalog scratch;
  ESTOCADA_RETURN_NOT_OK(scratch.RegisterDatasetSchema(
      catalog_.dataset_schema()));
  for (const auto& [name, handle] : catalog_.stores()) {
    ESTOCADA_RETURN_NOT_OK(scratch.RegisterStore(handle));
  }
  ESTOCADA_RETURN_NOT_OK(catalog::FragmentsFromJson(doc, &scratch));
  for (const auto& [name, desc] : scratch.fragments()) {
    catalog::StorageDescriptor copy = desc;
    copy.stats = {};  // Recomputed at materialization.
    ESTOCADA_RETURN_NOT_OK(catalog_.RegisterFragment(std::move(copy)));
    Status materialized =
        rewriting::MaterializeFragment(staging_, &catalog_, name);
    if (!materialized.ok()) {
      (void)catalog_.DropFragment(name);
      return materialized;
    }
  }
  MarkCatalogChanged();
  return Status::OK();
}

Status Estocada::RefreshRewriter() {
  if (!rewriter_dirty_ && rewriter_ != nullptr) return Status::OK();
  rewriter_ = std::make_unique<pacb::Rewriter>(catalog_.dataset_schema(),
                                               catalog_.AllViews());
  ESTOCADA_RETURN_NOT_OK(rewriter_->Prepare());
  rewriter_dirty_ = false;
  return Status::OK();
}

Result<rewriting::PlanSet> Estocada::Explain(
    const std::string& query_text,
    const std::map<std::string, Value>& parameters) {
  ESTOCADA_RETURN_NOT_OK(RefreshRewriter());
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(query_text));
  rewriting::Planner planner(&catalog_, rewriter_.get());
  return planner.PlanQuery(q, parameters);
}

Status Estocada::RegisterDocumentCollection(
    const std::string& dataset, const std::string& collection,
    std::vector<encoding::DocumentPath> paths) {
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema schema,
      encoding::DocumentEncoding(dataset, collection, paths));
  ESTOCADA_RETURN_NOT_OK(RegisterSchema(schema));
  doc_collections_[StrCat(dataset, ".", collection)] = std::move(paths);
  return Status::OK();
}

Result<std::string> Estocada::LoadDocument(const std::string& dataset,
                                           const std::string& collection,
                                           const json::JsonValue& document) {
  std::string key = StrCat(dataset, ".", collection);
  auto it = doc_collections_.find(key);
  if (it == doc_collections_.end()) {
    return Status::NotFound(
        StrCat("'", key, "' is not a registered document collection"));
  }
  std::string id;
  if (const json::JsonValue* idv = document.Find("_id");
      idv != nullptr && idv->is_string()) {
    id = idv->string_value();
  } else {
    id = StrCat(key, "/", next_doc_id_++);
  }
  // Uniqueness within the staged .doc relation.
  auto& doc_rel = staging_[StrCat(key, ".doc")];
  for (const Row& row : doc_rel.rows) {
    if (row[0] == Value::Str(id)) {
      return Status::AlreadyExists(
          StrCat("document '", id, "' already loaded into ", key));
    }
  }
  doc_rel.rows.push_back({Value::Str(id)});
  for (const encoding::DocumentPath& p : it->second) {
    const json::JsonValue* v = document.FindPath(p.path);
    if (v == nullptr) continue;  // Missing path: no fact.
    auto& rel = staging_[StrCat(key, ".", p.path)];
    if (v->is_array()) {
      for (const json::JsonValue& e : v->array()) {
        rel.rows.push_back({Value::Str(id), Value::FromJson(e)});
      }
    } else {
      rel.rows.push_back({Value::Str(id), Value::FromJson(*v)});
    }
  }
  return id;
}

Status Estocada::DeleteRow(const std::string& relation,
                           const Row& row) {
  auto it = staging_.find(relation);
  if (it == staging_.end()) {
    return Status::NotFound(StrCat("relation '", relation, "' not staged"));
  }
  auto& rows = it->second.rows;
  size_t before = rows.size();
  rows.erase(std::remove(rows.begin(), rows.end(), row), rows.end());
  if (rows.size() == before) {
    return Status::NotFound(
        StrCat("no staged tuple ", engine::RowToString(row), " in '",
               relation, "'"));
  }
  // Rebuild every fragment whose view mentions the relation. Shadow
  // fragments stay out: the migration engine schedules their rebuild
  // from its own delta log so a deletion cannot race the backfill.
  for (const auto& [name, desc] : catalog_.fragments()) {
    if (desc.is_shadow()) continue;
    bool affected = false;
    for (const pivot::Atom& a : desc.view.query.body) {
      if (a.relation == relation) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;
    ESTOCADA_RETURN_NOT_OK(
        rewriting::DematerializeFragment(&catalog_, name));
    ESTOCADA_RETURN_NOT_OK(
        rewriting::MaterializeFragment(staging_, &catalog_, name));
  }
  return Status::OK();
}

Status Estocada::RegisterTreeDataset(const std::string& dataset) {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::Schema schema,
                            encoding::DocumentTreeEncoding(dataset));
  return RegisterSchema(schema);
}

Status Estocada::LoadTreeDocument(const std::string& dataset,
                                  const std::string& doc_id,
                                  const json::JsonValue& document) {
  std::string doc_rel = StrCat(dataset, ".Doc");
  if (!catalog_.dataset_schema().HasRelation(doc_rel)) {
    return Status::NotFound(
        StrCat("'", dataset, "' is not a registered tree dataset"));
  }
  for (const Row& row : staging_[doc_rel].rows) {
    if (row[0] == Value::Str(doc_id)) {
      return Status::AlreadyExists(
          StrCat("document '", doc_id, "' already loaded into ", dataset));
    }
  }
  std::vector<pivot::Atom> atoms =
      encoding::ShredDocument(dataset, doc_id, document);
  // Stage the shredded facts, collecting Child edges for the closure.
  std::map<std::string, std::vector<std::string>> children;
  for (const pivot::Atom& a : atoms) {
    Row row;
    row.reserve(a.terms.size());
    for (const pivot::Term& t : a.terms) {
      row.push_back(Value::FromConstant(t.constant()));
    }
    if (a.relation == StrCat(dataset, ".Child")) {
      children[row[0].string_value()].push_back(row[1].string_value());
    }
    staging_[a.relation].rows.push_back(std::move(row));
  }
  // Complete Desc transitively (depth-first from every node). The tree
  // axioms would derive the same facts by chasing; staging them directly
  // makes Desc a first-class queryable relation.
  auto& desc_rel = staging_[StrCat(dataset, ".Desc")];
  for (const auto& [anc, direct] : children) {
    std::vector<std::string> stack(direct.begin(), direct.end());
    while (!stack.empty()) {
      std::string node = std::move(stack.back());
      stack.pop_back();
      desc_rel.rows.push_back({Value::Str(anc), Value::Str(node)});
      auto it = children.find(node);
      if (it != children.end()) {
        stack.insert(stack.end(), it->second.begin(), it->second.end());
      }
    }
  }
  return Status::OK();
}

Status Estocada::RegisterGraphDataset(const std::string& dataset,
                                      size_t max_hops) {
  if (graph_hop_bounds_.count(dataset)) {
    return Status::AlreadyExists(
        StrCat("graph dataset '", dataset, "' already registered"));
  }
  ESTOCADA_ASSIGN_OR_RETURN(pivot::Schema schema,
                            encoding::GraphEncoding(dataset, max_hops));
  ESTOCADA_RETURN_NOT_OK(RegisterSchema(schema));
  graph_hop_bounds_[dataset] = max_hops;
  return Status::OK();
}

Status Estocada::LoadGraph(const std::string& dataset,
                           const encoding::GraphData& graph) {
  auto bound_it = graph_hop_bounds_.find(dataset);
  if (bound_it == graph_hop_bounds_.end()) {
    return Status::NotFound(
        StrCat("'", dataset, "' is not a registered graph dataset"));
  }
  const size_t max_hops = bound_it->second;
  for (const pivot::Atom& a : encoding::ShredGraph(dataset, graph)) {
    Row row;
    row.reserve(a.terms.size());
    for (const pivot::Term& t : a.terms) {
      row.push_back(Value::FromConstant(t.constant()));
    }
    staging_[a.relation].rows.push_back(std::move(row));
  }
  // Recompute Reach1..ReachK over the full staged edge set (LoadGraph may
  // be called repeatedly, and later loads can shorten paths between nodes
  // staged earlier). The graph axioms would derive the same facts by
  // chasing; staging them directly makes bounded paths first-class
  // queryable relations — the same trick LoadTreeDocument plays for Desc.
  std::map<Value, std::vector<Value>> adjacency;
  for (const Row& edge : staging_[StrCat(dataset, ".Edge")].rows) {
    adjacency[edge[0]].push_back(edge[2]);
  }
  for (size_t j = 1; j <= max_hops; ++j) {
    staging_[StrCat(dataset, ".Reach", j)].rows.clear();
  }
  for (const auto& [src, direct] : adjacency) {
    // Bounded BFS: dist[n] = fewest hops from src (1..max_hops).
    std::map<Value, size_t> dist;
    std::vector<Value> frontier;
    for (const Value& n : direct) {
      if (dist.emplace(n, 1).second) frontier.push_back(n);
    }
    for (size_t hops = 2; hops <= max_hops && !frontier.empty(); ++hops) {
      std::vector<Value> next;
      for (const Value& n : frontier) {
        auto it = adjacency.find(n);
        if (it == adjacency.end()) continue;
        for (const Value& m : it->second) {
          if (dist.emplace(m, hops).second) next.push_back(m);
        }
      }
      frontier = std::move(next);
    }
    // Reach_j means "reachable in at most j hops": a node first seen at
    // distance d appears in every Reach_j with j >= d.
    for (const auto& [dst, d] : dist) {
      for (size_t j = d; j <= max_hops; ++j) {
        staging_[StrCat(dataset, ".Reach", j)].rows.push_back({src, dst});
      }
    }
  }
  return Status::OK();
}

Status Estocada::InsertRow(const std::string& relation, Row row) {
  ESTOCADA_RETURN_NOT_OK(LoadRow(relation, row));
  return rewriting::MaintainFragmentsOnInsert(staging_, &catalog_, relation,
                                              row);
}

Result<std::string> Estocada::InsertDocument(const std::string& dataset,
                                             const std::string& collection,
                                             const json::JsonValue& document) {
  std::string key = StrCat(dataset, ".", collection);
  // Capture relation sizes to identify the rows LoadDocument stages.
  std::map<std::string, size_t> before;
  for (const auto& [rel, data] : staging_) {
    if (rel.rfind(key, 0) == 0) before[rel] = data.rows.size();
  }
  ESTOCADA_ASSIGN_OR_RETURN(std::string id,
                            LoadDocument(dataset, collection, document));
  std::vector<std::pair<std::string, Row>> batch;
  for (const auto& [rel, data] : staging_) {
    if (rel.rfind(key, 0) != 0) continue;
    size_t start = before.count(rel) ? before[rel] : 0;
    for (size_t i = start; i < data.rows.size(); ++i) {
      batch.emplace_back(rel, data.rows[i]);
    }
  }
  ESTOCADA_RETURN_NOT_OK(rewriting::MaintainFragmentsOnInsertBatch(
      staging_, &catalog_, batch));
  return id;
}

Result<Estocada::QueryResult> Estocada::Query(
    const std::string& query_text,
    const std::map<std::string, Value>& parameters) {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(query_text));
  return RunQuery(q, parameters);
}

Result<Estocada::QueryResult> Estocada::QuerySql(
    const std::string& sql,
    const std::map<std::string, Value>& parameters) {
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::ConjunctiveQuery q,
      frontend::SqlToCq(sql, catalog_.dataset_schema()));
  return RunQuery(q, parameters);
}

Result<Estocada::QueryResult> Estocada::QueryDocFind(
    const frontend::DocFindSpec& spec,
    const std::map<std::string, Value>& parameters) {
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::ConjunctiveQuery q,
      frontend::DocFindToCq(spec, catalog_.dataset_schema()));
  return RunQuery(q, parameters);
}

Result<Estocada::QueryResult> Estocada::QueryGraphMatch(
    const frontend::GraphMatchSpec& spec,
    const std::map<std::string, Value>& parameters) {
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::ConjunctiveQuery q,
      frontend::GraphMatchToCq(spec, catalog_.dataset_schema()));
  return RunQuery(q, parameters);
}

Result<Estocada::QueryResult> Estocada::QueryKeyLookup(
    const std::string& relation, const Value& key) {
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::ConjunctiveQuery q,
      frontend::KeyLookupToCq(relation, catalog_.dataset_schema()));
  return RunQuery(q, {{"$key", key}});
}

Result<rewriting::PlanSet> Estocada::PlanBest(
    const pivot::ConjunctiveQuery& q,
    const std::map<std::string, Value>& parameters) {
  ESTOCADA_RETURN_NOT_OK(RefreshRewriter());
  rewriting::Planner planner(&catalog_, rewriter_.get());
  return planner.PlanQuery(q, parameters);
}

Result<Estocada::QueryResult> Estocada::QueryProgram(
    const std::vector<std::string>& cq_texts,
    const std::map<std::string, Value>& parameters, const ProgramOps& ops) {
  if (cq_texts.empty()) {
    return Status::InvalidArgument("QueryProgram needs at least one query");
  }
  std::vector<engine::OperatorPtr> branches;
  std::vector<std::shared_ptr<rewriting::RuntimeStats>> branch_stats;
  QueryResult result;
  size_t arity = 0;
  std::vector<std::string> rewriting_texts;
  for (const std::string& text : cq_texts) {
    ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                              pivot::ParseQuery(text));
    if (branches.empty()) {
      arity = q.arity();
    } else if (q.arity() != arity) {
      return Status::InvalidArgument(
          StrCat("union branches must share one arity; '", text, "' has ",
                 q.arity(), ", expected ", arity));
    }
    ESTOCADA_ASSIGN_OR_RETURN(rewriting::PlanSet plans,
                              PlanBest(q, parameters));
    rewriting::PlannedQuery& best = plans.best_plan();
    result.estimated_cost += best.estimated_cost;
    result.rewritings_considered += plans.plans.size();
    rewriting_texts.push_back(best.rewriting.ToString());
    branch_stats.push_back(best.runtime_stats);
    branches.push_back(std::move(best.root));
    // Log each branch for the advisor, cost attributed after execution.
    std::vector<std::string> fragments_used;
    for (const pivot::Atom& a : best.rewriting.body) {
      fragments_used.push_back(a.relation);
    }
    workload_log_.Record(q, best.estimated_cost, fragments_used, parameters);
  }
  engine::OperatorPtr root =
      branches.size() == 1
          ? std::move(branches[0])
          : std::make_unique<engine::UnionAllOperator>(std::move(branches));
  if (!ops.aggregates.empty() || !ops.group_by.empty()) {
    root = std::make_unique<engine::AggregateOperator>(
        std::move(root), ops.group_by, ops.aggregates);
  }
  if (!ops.order_by.empty()) {
    root = std::make_unique<engine::SortOperator>(std::move(root),
                                                  ops.order_by);
  }
  if (ops.limit > 0) {
    root = std::make_unique<engine::LimitOperator>(std::move(root),
                                                   ops.limit);
  }
  ESTOCADA_ASSIGN_OR_RETURN(result.rows, engine::Collect(root.get()));
  for (const auto& stats : branch_stats) {
    for (const auto& [store, st] : stats->per_store) {
      result.runtime_stats.per_store[store].Add(st);
    }
  }
  result.rewriting_text = StrJoin(rewriting_texts, "  UNION  ");
  result.plan_text = engine::PlanToString(*root);
  return result;
}

std::string Estocada::QueryResult::RuntimeSplitLine() const {
  return StrCat("stores shipped ", rows_from_stores,
                " row(s); estocada runtime returned ", rows.size());
}

Result<Estocada::QueryResult> Estocada::RunQuery(
    const pivot::ConjunctiveQuery& q,
    const std::map<std::string, Value>& parameters) {
  ESTOCADA_ASSIGN_OR_RETURN(rewriting::PlanSet plans,
                            PlanBest(q, parameters));
  return ExecutePlanned(std::move(plans), q, parameters);
}

Result<rewriting::PlanSet> Estocada::PlanPrepared(
    const pivot::ConjunctiveQuery& query,
    const std::map<std::string, Value>& parameters,
    const rewriting::PlanConstraints& constraints) const {
  if (!rewriter_ready()) {
    return Status::Internal(
        "PlanPrepared called with a stale rewriter; run PrepareRewriter() "
        "after catalog changes");
  }
  rewriting::Planner planner(&catalog_, rewriter_.get());
  return planner.PlanQuery(query, parameters, {}, constraints);
}

Result<rewriting::PlanSet> Estocada::PlanFromRewritings(
    pacb::RewritingResult rewritings,
    const std::map<std::string, Value>& parameters,
    const rewriting::PlanConstraints& constraints) const {
  rewriting::Planner planner(&catalog_, /*rewriter=*/nullptr);
  return planner.PlanRewritings(std::move(rewritings), parameters,
                                constraints);
}

Result<Estocada::QueryResult> Estocada::ExecutePlanned(
    rewriting::PlanSet plans, const pivot::ConjunctiveQuery& q,
    const std::map<std::string, Value>& parameters) const {
  rewriting::PlannedQuery& best = plans.best_plan();
  if (best.root == nullptr) {
    // Cost-only estimate (a non-winner plan, or a PlanSet assembled by a
    // caller that overrode `best`): materialize the operator tree now
    // with the arguments it was estimated under.
    rewriting::Translator translator(&catalog_);
    ESTOCADA_ASSIGN_OR_RETURN(
        best, translator.Plan(best.rewriting, plans.parameters,
                              plans.constraints));
  }

  QueryResult result;
  ESTOCADA_ASSIGN_OR_RETURN(result.rows, engine::Collect(best.root.get()));
  result.runtime_stats = *best.runtime_stats;
  for (const auto& [store, st] : result.runtime_stats.per_store) {
    result.rows_from_stores += st.rows_returned;
  }
  result.rewriting_text = best.rewriting.ToString();
  result.plan_text = best.ToString();
  result.estimated_cost = best.estimated_cost;
  result.rewritings_considered = plans.plans.size();
  result.rewriter_stats = plans.rewriting_result.stats;

  // Feed the advisor's workload log.
  std::vector<std::string> fragments_used;
  for (const pivot::Atom& a : best.rewriting.body) {
    fragments_used.push_back(a.relation);
  }
  workload_log_.Record(q, result.simulated_cost(), fragments_used, parameters,
                       result.rows.size());
  return result;
}

Result<Estocada::QueryResult> Estocada::ExecutePlanned(
    rewriting::PlanSet plans, const pivot::ConjunctiveQuery& q,
    size_t plan_index) const {
  if (plan_index >= plans.plans.size()) {
    return Status::InvalidArgument(
        StrCat("plan index ", plan_index, " out of range (", plans.plans.size(),
               " plans)"));
  }
  plans.best = plan_index;
  return ExecutePlanned(std::move(plans), q);
}

Result<std::vector<Row>> Estocada::EvaluateOverStaging(
    const std::string& query_text,
    const std::map<std::string, Value>& parameters) const {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::ConjunctiveQuery q,
                            pivot::ParseQuery(query_text));
  return rewriting::EvaluateCqOverStaging(q, staging_, parameters);
}

Result<std::vector<Row>> Estocada::EvaluateOverStagingPrepared(
    const pivot::ConjunctiveQuery& query,
    const std::map<std::string, Value>& parameters) const {
  return rewriting::EvaluateCqOverStaging(query, staging_, parameters);
}

std::vector<advisor::Recommendation> Estocada::Advise(
    const advisor::AdvisorOptions& options) const {
  advisor::StorageAdvisor sa(options);
  return sa.Recommend(catalog_, workload_log_);
}

Status Estocada::ApplyRecommendation(const advisor::Recommendation& rec) {
  if (rec.action == advisor::Recommendation::Action::kDropFragment) {
    return DropFragment(rec.fragment_name);
  }
  return DefineFragment(rec.view, rec.store_name);
}

}  // namespace estocada
