#ifndef ESTOCADA_ESTOCADA_ESTOCADA_H_
#define ESTOCADA_ESTOCADA_ESTOCADA_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "catalog/catalog.h"
#include "catalog/serialize.h"
#include "common/result.h"
#include "encoding/encodings.h"
#include "frontend/docfind.h"
#include "frontend/gmatch.h"
#include "frontend/sql.h"
#include "json/json.h"
#include "pacb/rewriter.h"
#include "rewriting/cq_eval.h"
#include "rewriting/materializer.h"
#include "rewriting/planner.h"
#include "rewriting/translator.h"

namespace estocada {

/// The ESTOCADA system facade (paper Fig. 1): applications register their
/// dataset schemas and the available DMSs, load data, declare fragments
/// (LAV materialized views placed in specific stores), and then query the
/// *datasets* — the system rewrites each query over the fragments with
/// PACB, picks a plan cost-wise, delegates subqueries to the stores, and
/// evaluates the rest in its own engine.
class Estocada {
 public:
  Estocada() = default;

  // ------------------------------------------------------------- Setup --

  /// Merges a dataset's pivot schema (relations + model constraints).
  Status RegisterSchema(const pivot::Schema& schema);

  /// Registers a DMS instance (non-owning pointer inside the handle).
  Status RegisterStore(catalog::StoreHandle handle);

  /// Loads one tuple of a dataset relation into the staging area (the
  /// application-side ground truth fragments are materialized from).
  Status LoadRow(const std::string& relation, engine::Row row);

  /// Bulk load.
  Status LoadRows(const std::string& relation, std::vector<engine::Row> rows);

  /// Loads a whole staged dataset at once (workload generators).
  Status LoadStaging(const rewriting::StagingData& staging);

  /// Registers a *document-native* dataset collection: merges the path-
  /// relation encoding ("<dataset>.<collection>.<path>"(docID, value) per
  /// path, plus the .doc relation and its constraints) into the pivot
  /// schema. Documents are then loaded with LoadDocument and queried
  /// through the path relations (or the DocFind front-end).
  Status RegisterDocumentCollection(
      const std::string& dataset, const std::string& collection,
      std::vector<encoding::DocumentPath> paths);

  /// Shreds one JSON document of a registered collection into the staging
  /// path relations. The document's string "_id" is used when present
  /// (must be unique), else an id is generated. Array values at a path
  /// stage one row per element (multikey). Returns the document id.
  Result<std::string> LoadDocument(const std::string& dataset,
                                   const std::string& collection,
                                   const json::JsonValue& document);

  /// Registers a dataset in the paper's *generic tree* document encoding
  /// (§III): relations <dataset>.Doc/Root/Child/Desc/Tag/Val/ArrayElem
  /// plus the tree axioms (Child ⊆ Desc, transitivity, one parent/tag/
  /// value, ...). Unlike the path-relation form, this encodes arbitrary
  /// documents without pre-registering paths.
  Status RegisterTreeDataset(const std::string& dataset);

  /// Shreds a JSON document into tree facts and stages them. `Desc` facts
  /// are completed transitively at load time, so structural queries over
  /// Desc are answerable through fragments without chasing at runtime.
  Status LoadTreeDocument(const std::string& dataset,
                          const std::string& doc_id,
                          const json::JsonValue& document);

  /// Registers a dataset in the property-graph encoding (§III applied to
  /// graphs): relations <dataset>.Node/Edge/NodeProp/EdgeProp plus the
  /// bounded-reachability relations Reach1..Reach<max_hops> and their
  /// axioms. The hop bound is remembered so LoadGraph can complete the
  /// Reach relations at load time.
  Status RegisterGraphDataset(const std::string& dataset, size_t max_hops);

  /// Shreds a property graph into pivot facts and stages them. Reach
  /// facts are completed up to the dataset's hop bound (a bounded BFS
  /// over the full staged edge set), so bounded-path queries are
  /// answerable through fragments without chasing at runtime — the same
  /// trick LoadTreeDocument plays for Desc. May be called several times
  /// per dataset; Reach is recomputed over all staged edges each call.
  Status LoadGraph(const std::string& dataset,
                   const encoding::GraphData& graph);

  // ------------------------------------------------ Incremental updates --

  /// Inserts a tuple *after* fragments exist: stages it and incrementally
  /// maintains every fragment whose view mentions the relation (delta
  /// evaluation + append; text fragments rebuild). A delta row that was
  /// already derivable through another witness may be stored twice; query
  /// answers stay correct because evaluation applies set semantics.
  Status InsertRow(const std::string& relation, engine::Row row);

  /// Document-collection variant of InsertRow: shreds and maintains.
  Result<std::string> InsertDocument(const std::string& dataset,
                                     const std::string& collection,
                                     const json::JsonValue& document);

  /// Deletes every staged tuple equal to `row` and *rebuilds* the
  /// fragments whose views mention the relation. Deletions do not have an
  /// efficient delta under bag-free view maintenance (and the paper
  /// leaves dynamic reorganization as ongoing work), so correctness is
  /// bought with a rematerialization. Returns kNotFound when no such
  /// tuple is staged.
  Status DeleteRow(const std::string& relation, const engine::Row& row);

  // -------------------------------------------------------- Fragments --

  /// Declares and materializes a fragment. `view_text` is pivot syntax,
  /// e.g. "F_cart(u, c) :- mk.carts(u, c)"; `adornments` flags
  /// access-pattern-restricted positions (empty = all free);
  /// `index_positions` requests extra secondary indexes (beyond the
  /// input-adorned positions, which are always indexed).
  Status DefineFragment(const std::string& view_text,
                        const std::string& store_name,
                        std::vector<pivot::Adornment> adornments = {},
                        std::vector<size_t> index_positions = {});

  /// Structured variant.
  Status DefineFragment(pacb::ViewDefinition view,
                        const std::string& store_name,
                        std::vector<size_t> index_positions = {});

  /// Drops a fragment: removes the stored container and the descriptor.
  Status DropFragment(const std::string& name);

  // -------------------------------------------------- Replication --
  // K-way fragment replication (robustness): a replicated fragment keeps
  // one placement per store in its replica set, each with its own
  // container and freshness epoch. Reads route to one healthy fresh
  // replica (rewriting/translator.cc); writes fan out to every fresh one
  // (rewriting/materializer.cc). The per-replica calls below are the
  // ReplicaRepairer's building blocks — like the shadow-fragment calls
  // they never bump the catalog epoch, because replica routing happens
  // per translation against the live placement bits, not in cached plans.

  /// Declares a fragment replicated across `replica_stores` (K = size;
  /// the first store is the primary and keeps the legacy store_name/
  /// container fields) and materializes every replica. Sibling containers
  /// default to "<fragment>#r<i>".
  Status DefineReplicatedFragment(
      const std::string& view_text,
      const std::vector<std::string>& replica_stores,
      std::vector<pivot::Adornment> adornments = {},
      std::vector<size_t> index_positions = {});

  /// Structured variant.
  Status DefineReplicatedFragment(
      pacb::ViewDefinition view,
      const std::vector<std::string>& replica_stores,
      std::vector<size_t> index_positions = {});

  // -------------------------------------------------- Partitioning --
  // Sharded fragments (scale-out): a partitioned fragment splits its view
  // rows across N shard containers ("<fragment>#p<i>") by hash or range
  // on one head position. Reads with the key bound route to the single
  // owning shard; unbound reads scatter over every shard and gather in
  // shard order (rewriting/translator.cc); writes split the delta and fan
  // each bucket to its shard (rewriting/materializer.cc). Each shard may
  // itself be K-replicated — the two mechanisms compose.

  /// Declares a fragment partitioned across `shard_stores` (one store per
  /// shard, N = size >= 2) by `kind` on head position `key_position`, and
  /// materializes every shard. Range partitioning takes `bounds` — N-1
  /// strictly ascending upper-exclusive split values; hash takes none.
  Status DefinePartitionedFragment(
      const std::string& view_text, catalog::PartitionSpec::Kind kind,
      size_t key_position, const std::vector<std::string>& shard_stores,
      std::vector<engine::Value> bounds = {},
      std::vector<pivot::Adornment> adornments = {},
      std::vector<size_t> index_positions = {});

  /// Structured variant; `shard_replica_stores[s]` lists shard s's
  /// replica stores (first = primary, siblings "<fragment>#p<s>#r<i>"),
  /// so a shard can be replicated for fault tolerance.
  Status DefinePartitionedFragment(
      pacb::ViewDefinition view, catalog::PartitionSpec::Kind kind,
      size_t key_position,
      const std::vector<std::vector<std::string>>& shard_replica_stores,
      std::vector<engine::Value> bounds = {},
      std::vector<size_t> index_positions = {});

  /// Starts a rebuild of one replica: flags the placement `rebuilding`
  /// (routing skips it, write fan-out stops touching its container) and
  /// re-creates its container empty. Re-entrant — retrying an aborted
  /// rebuild restarts from a clean container. Refuses to rebuild the only
  /// replica of a fragment (nothing would be left to serve reads).
  Status BeginReplicaRebuild(const std::string& name, size_t replica);

  /// Appends backfill/catch-up rows to a rebuilding replica's container.
  /// Refused for live replicas — those are written by the fan-out only.
  Status AppendToReplicaRows(const std::string& name, size_t replica,
                             const std::vector<engine::Row>& rows);

  /// One-shot rebuild of a rebuilding replica's container from the
  /// staging truth (drop + re-evaluate + native load). The repair path
  /// for text placements, which cannot take appends; valid for any kind.
  Status RebuildReplicaFromStaging(const std::string& name, size_t replica);

  /// Re-admits a rebuilt replica: stamps it with the fragment's current
  /// write epoch and clears `rebuilding`, so routing and the write
  /// fan-out see it again. Call only after the container verified against
  /// the staging truth (VerifyReplica) — admission itself does not check.
  Status AdmitReplica(const std::string& name, size_t replica);

  /// Set-compares one replica's container against the fragment view over
  /// staging (the ground truth). OK iff equal.
  Status VerifyReplica(const std::string& name, size_t replica) const;

  /// Order-independent content digest of one replica (anti-entropy:
  /// same-kind siblings must digest equal). Text placements return
  /// kUnsupported — scrub those with VerifyReplica.
  Result<uint64_t> ReplicaDigest(const std::string& name,
                                 size_t replica) const;

  /// One-shot rebuild of one shard replica of a *partitioned* fragment
  /// from the staging truth (drop + re-evaluate + keep the shard's bucket
  /// + native load), stamping it fresh on success — the repair path for a
  /// shard replica that missed writes while its store was down.
  Status RebuildShardReplicaFromStaging(const std::string& name, size_t shard,
                                        size_t replica);

  // ---------------------------------------------- Shadow fragments --
  // Building blocks of the online migration engine (src/migration). A
  // *shadow* fragment has a descriptor and a physical container but is
  // invisible to the rewriter/planner, to incremental maintenance, and
  // to catalog export, so it can be backfilled in batches while the old
  // layout keeps serving — and abandoned without a trace on abort. None
  // of these calls bumps the catalog epoch except
  // ActivateShadowFragment, which is the migration's atomic cutover.

  /// Registers a shadow fragment and creates its *empty* container (no
  /// view evaluation, no epoch bump). On failure nothing is left behind.
  Status DefineShadowFragment(pacb::ViewDefinition view,
                              const std::string& store_name,
                              std::vector<size_t> index_positions = {});

  /// Appends backfill rows to a shadow fragment's container.
  Status AppendToShadowFragment(const std::string& name,
                                const std::vector<engine::Row>& rows);

  /// Replays captured update deltas ((relation, row) pairs already in
  /// staging) against one shadow fragment via the incremental-
  /// maintenance delta rule.
  Status MaintainShadowFragment(
      const std::string& name,
      const std::vector<std::pair<std::string, engine::Row>>& deltas);

  /// Rebuilds a shadow fragment's container from the staging truth
  /// (deletions have no append delta; text targets cannot append).
  Status RebuildShadowFragment(const std::string& name);

  /// Flips a shadow fragment to active — the migration cutover. This is
  /// a catalog change: the rewriter is dirtied and the epoch bumps, so
  /// every cached plan of the old layout is invalidated.
  Status ActivateShadowFragment(const std::string& name);

  /// Rollback: drops a shadow fragment's container and descriptor
  /// without an epoch bump (the planner never saw it).
  Status DropShadowFragment(const std::string& name);

  /// The fragment's view evaluated over the staging area with set
  /// semantics — the ground truth its container must hold.
  Result<std::vector<engine::Row>> EvaluateFragmentView(
      const std::string& name) const;

  /// Set-compares a fragment's physical container against its view over
  /// staging (shadow or active; all five store kinds). OK iff equal.
  Status VerifyFragment(const std::string& name) const;

  const catalog::Catalog& catalog() const { return catalog_; }

  /// Checkpoints the fragment layout (storage descriptors) as JSON text.
  std::string ExportCatalogJson() const;

  /// Re-creates a fragment layout from ExportCatalogJson output: registers
  /// each descriptor and re-materializes it from the staged data. Stores
  /// and dataset schemas must already be registered under the same names.
  Status ImportCatalogJson(const std::string& json_text);

  // ----------------------------------------------------------- Queries --

  struct QueryResult {
    std::vector<engine::Row> rows;
    /// Work split across the underlying DMSs (demo step 3).
    rewriting::RuntimeStats runtime_stats;
    /// The rewriting the cost-based choice picked and its plan.
    std::string rewriting_text;
    std::string plan_text;
    double estimated_cost = 0;
    size_t rewritings_considered = 0;
    pacb::RewriterStats rewriter_stats;
    /// ESTOCADA's own runtime share (demo step 3 splits statistics
    /// "across the underlying DMS and ESTOCADA's runtime"): rows shipped
    /// out of the stores into the engine vs. rows finally returned — the
    /// difference is joined/filtered/deduplicated by the engine.
    uint64_t rows_from_stores = 0;
    /// Set by the fault-tolerant serving path when every fragment-based
    /// rewriting was unavailable and the answer came from the staging
    /// area (bottom rung of the degradation ladder — correct but slow).
    bool degraded_to_staging = false;
    /// Execution attempts the serving path spent on this query (1 = no
    /// retry; only the fault-tolerant path sets anything higher).
    int attempts = 1;
    /// Immediate re-plans after a circuit breaker tripped mid-attempt:
    /// routing then sees a different replica set, so the serving path
    /// re-plans onto sibling replicas without consuming a retry attempt
    /// or sleeping a backoff.
    int reroutes = 0;
    /// Stores that were open-circuit when this query was planned.
    std::vector<std::string> excluded_stores;

    double simulated_cost() const {
      return runtime_stats.TotalSimulatedCost();
    }

    /// "stores shipped N rows; engine returned M" one-liner.
    std::string RuntimeSplitLine() const;
  };

  /// Answers a query over the *datasets* through the fragments. The query
  /// is pivot CQ text; '$'-variables take values from `parameters`.
  Result<QueryResult> Query(
      const std::string& query_text,
      const std::map<std::string, engine::Value>& parameters = {});

  /// Native-language front-ends (paper §III: each dataset is accessed in
  /// the language of its model). All reduce to pivot CQs and share the
  /// whole rewriting/delegation pipeline.
  /// SQL (conjunctive SELECT-FROM-WHERE) for relational datasets:
  Result<QueryResult> QuerySql(
      const std::string& sql,
      const std::map<std::string, engine::Value>& parameters = {});
  /// Document find() for document collections:
  Result<QueryResult> QueryDocFind(
      const frontend::DocFindSpec& spec,
      const std::map<std::string, engine::Value>& parameters = {});
  /// Key-based access for key-value-shaped relations:
  Result<QueryResult> QueryKeyLookup(const std::string& relation,
                                     const engine::Value& key);
  /// Graph pattern matching (MATCH-style) for property-graph datasets:
  Result<QueryResult> QueryGraphMatch(
      const frontend::GraphMatchSpec& spec,
      const std::map<std::string, engine::Value>& parameters = {});

  /// Post-combination operations of the (optional) GAV layer the paper
  /// sketches: algebraic operators applied *on top of* individually
  /// rewritten queries. Aggregation references the union's head columns
  /// by position.
  struct ProgramOps {
    std::vector<size_t> group_by;
    std::vector<engine::AggSpec> aggregates;
    std::vector<size_t> order_by;  ///< Applied after aggregation.
    size_t limit = 0;              ///< 0 = no limit.
  };

  /// Evaluates the union of several CQs (same head arity), each rewritten
  /// and planned independently over the fragments, with `ops` applied to
  /// the combined stream by ESTOCADA's own engine.
  Result<QueryResult> QueryProgram(
      const std::vector<std::string>& cq_texts,
      const std::map<std::string, engine::Value>& parameters,
      const ProgramOps& ops);
  Result<QueryResult> QueryProgram(
      const std::vector<std::string>& cq_texts,
      const std::map<std::string, engine::Value>& parameters = {}) {
    return QueryProgram(cq_texts, parameters, ProgramOps());
  }

  /// Plans without executing (demo step 2: inspect rewritings + plans).
  Result<rewriting::PlanSet> Explain(
      const std::string& query_text,
      const std::map<std::string, engine::Value>& parameters = {});

  /// Reference evaluation directly over the staging area (ground truth
  /// for tests and the vanilla baseline in benches).
  Result<std::vector<engine::Row>> EvaluateOverStaging(
      const std::string& query_text,
      const std::map<std::string, engine::Value>& parameters = {}) const;

  /// Parsed-query variant for the serving runtime's degradation ladder:
  /// when no rewriting survives the health exclusions, the server answers
  /// from the staging area through this const path.
  Result<std::vector<engine::Row>> EvaluateOverStagingPrepared(
      const pivot::ConjunctiveQuery& query,
      const std::map<std::string, engine::Value>& parameters = {}) const;

  // ----------------------------------------------------------- Serving --
  //
  // Const-safe query path for the concurrent serving runtime
  // (src/runtime): a QueryServer serializes catalog changes behind an
  // exclusive lock, calls PrepareRewriter() there, and then serves reads
  // through the const members below under a shared lock. The catalog
  // epoch versions cached plans: every fragment/schema change bumps it,
  // so a plan cache keyed on (canonical query, epoch) can never serve a
  // rewriting computed against a stale fragment layout.

  /// Monotone counter incremented by every catalog change (schema merge,
  /// fragment definition/drop, catalog import, applied recommendation).
  uint64_t catalog_epoch() const {
    return catalog_epoch_.load(std::memory_order_acquire);
  }

  /// Builds the PACB rewriter if a catalog change left it dirty. Callers
  /// that want the const planning path must run this (under an exclusive
  /// lock, when serving concurrently) after any catalog change.
  Status PrepareRewriter() { return RefreshRewriter(); }

  /// True when the rewriter reflects the current catalog, i.e. the const
  /// planning path is usable without PrepareRewriter().
  bool rewriter_ready() const {
    return !rewriter_dirty_ && rewriter_ != nullptr;
  }

  /// Plans a query without mutating the facade; requires rewriter_ready().
  /// Runs the full PACB rewrite + translation + cost-based choice.
  /// `constraints` (from the runtime's circuit breakers) drops rewritings
  /// over unavailable stores before the cost-based choice.
  Result<rewriting::PlanSet> PlanPrepared(
      const pivot::ConjunctiveQuery& query,
      const std::map<std::string, engine::Value>& parameters = {},
      const rewriting::PlanConstraints& constraints = {}) const;

  /// Translates previously computed PACB rewritings (e.g. a plan-cache
  /// hit) into executable plans for this call's parameters — the rewrite,
  /// the system's most expensive step, is skipped entirely.
  Result<rewriting::PlanSet> PlanFromRewritings(
      pacb::RewritingResult rewritings,
      const std::map<std::string, engine::Value>& parameters = {},
      const rewriting::PlanConstraints& constraints = {}) const;

  /// Executes the best plan of `plans` and assembles the QueryResult,
  /// recording `query` in the workload log (internally synchronized).
  /// Callers that have the concrete parameter bindings pass them so the
  /// log retains replayable samples for the Autopilot's cost probes.
  /// Const: safe to run from many threads as long as no catalog or data
  /// mutation runs concurrently.
  Result<QueryResult> ExecutePlanned(
      rewriting::PlanSet plans, const pivot::ConjunctiveQuery& query,
      const std::map<std::string, engine::Value>& parameters = {}) const;

  /// Executes plan `plan_index` of `plans` instead of the cost-based
  /// choice. Differential tests use this to run *every* rewriting of a
  /// query and compare each answer against the staging oracle. Consumes
  /// `plans` (operator trees are single-use).
  Result<QueryResult> ExecutePlanned(rewriting::PlanSet plans,
                                     const pivot::ConjunctiveQuery& query,
                                     size_t plan_index) const;

  // ----------------------------------------------------------- Advisor --

  const advisor::WorkloadLog& workload_log() const { return workload_log_; }
  void ClearWorkloadLog() { workload_log_.Clear(); }

  /// Runs the storage advisor over the accumulated workload log.
  std::vector<advisor::Recommendation> Advise(
      const advisor::AdvisorOptions& options = {}) const;

  /// Applies one recommendation (defines or drops the fragment).
  Status ApplyRecommendation(const advisor::Recommendation& rec);

 private:
  /// Rebuilds the PACB rewriter after a fragment change.
  Status RefreshRewriter();

  /// Marks the fragment layout changed: dirties the rewriter and bumps the
  /// catalog epoch so serving-layer plan caches drop their entries.
  void MarkCatalogChanged() {
    rewriter_dirty_ = true;
    catalog_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Shared body of Query and the front-end variants.
  Result<QueryResult> RunQuery(
      const pivot::ConjunctiveQuery& query,
      const std::map<std::string, engine::Value>& parameters);

  /// Plans one CQ and returns the chosen plan (used by RunQuery and
  /// QueryProgram).
  Result<rewriting::PlanSet> PlanBest(
      const pivot::ConjunctiveQuery& query,
      const std::map<std::string, engine::Value>& parameters);

  catalog::Catalog catalog_;
  rewriting::StagingData staging_;
  std::unique_ptr<pacb::Rewriter> rewriter_;
  bool rewriter_dirty_ = true;
  std::atomic<uint64_t> catalog_epoch_{0};
  /// Mutable so the const serving path can log executions; WorkloadLog
  /// synchronizes its writers internally.
  mutable advisor::WorkloadLog workload_log_;
  /// Registered document collections: "<dataset>.<collection>" -> paths.
  std::map<std::string, std::vector<encoding::DocumentPath>> doc_collections_;
  /// Registered graph datasets: dataset -> the encoding's hop bound.
  std::map<std::string, size_t> graph_hop_bounds_;
  uint64_t next_doc_id_ = 0;
};

}  // namespace estocada

#endif  // ESTOCADA_ESTOCADA_ESTOCADA_H_
