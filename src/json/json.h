#ifndef ESTOCADA_JSON_JSON_H_
#define ESTOCADA_JSON_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace estocada::json {

/// JSON value kinds, per RFC 8259. Integers are kept distinct from doubles
/// so the document store can index them exactly.
enum class JsonKind {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kArray,
  kObject,
};

/// Immutable-ish JSON tree value. Objects preserve a deterministic
/// (lexicographic) member order — std::map — so serialization, hashing, and
/// the document encoding are stable run to run.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  /// Constructs null.
  JsonValue() : kind_(JsonKind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string s);
  static JsonValue MakeArray(Array items = {});
  static JsonValue MakeObject(Object members = {});

  JsonKind kind() const { return kind_; }
  bool is_null() const { return kind_ == JsonKind::kNull; }
  bool is_bool() const { return kind_ == JsonKind::kBool; }
  bool is_int() const { return kind_ == JsonKind::kInt; }
  bool is_double() const { return kind_ == JsonKind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == JsonKind::kString; }
  bool is_array() const { return kind_ == JsonKind::kArray; }
  bool is_object() const { return kind_ == JsonKind::kObject; }

  /// Typed accessors; calling the wrong one is a programming error (assert).
  bool bool_value() const;
  int64_t int_value() const;
  double double_value() const;
  /// Numeric value as double regardless of int/double kind.
  double as_double() const;
  const std::string& string_value() const;
  const Array& array() const;
  Array& mutable_array();
  const Object& object() const;
  Object& mutable_object();

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Navigates a dotted path ("user.address.city"); array steps use numeric
  /// components ("items.0.price"). Returns nullptr when any step is missing.
  const JsonValue* FindPath(std::string_view dotted_path) const;

  /// Inserts/overwrites an object member. Requires is_object().
  void Set(std::string key, JsonValue value);

  /// Appends to an array. Requires is_array().
  void Append(JsonValue value);

  /// Number of members/elements; 0 for scalars.
  size_t size() const;

  /// Compact single-line serialization (RFC 8259 escapes).
  std::string Serialize() const;

  /// Multi-line, two-space-indented serialization.
  std::string Pretty() const;

  /// Deep structural equality (ints never equal doubles: 1 != 1.0).
  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

  /// Total order over JSON values (kind rank, then content); gives the
  /// document store a sort/index order for heterogeneous values.
  static int Compare(const JsonValue& a, const JsonValue& b);

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  JsonKind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses a complete JSON text. Trailing non-whitespace is an error.
Result<JsonValue> Parse(std::string_view text);

std::ostream& operator<<(std::ostream& os, const JsonValue& v);

}  // namespace estocada::json

#endif  // ESTOCADA_JSON_JSON_H_
