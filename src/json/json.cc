#include "json/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/strings.h"

namespace estocada::json {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = JsonKind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = JsonKind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = JsonKind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = JsonKind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(Array items) {
  JsonValue v;
  v.kind_ = JsonKind::kArray;
  v.array_ = std::make_shared<Array>(std::move(items));
  return v;
}

JsonValue JsonValue::MakeObject(Object members) {
  JsonValue v;
  v.kind_ = JsonKind::kObject;
  v.object_ = std::make_shared<Object>(std::move(members));
  return v;
}

bool JsonValue::bool_value() const {
  assert(is_bool());
  return bool_;
}

int64_t JsonValue::int_value() const {
  assert(is_int());
  return int_;
}

double JsonValue::double_value() const {
  assert(is_double());
  return double_;
}

double JsonValue::as_double() const {
  assert(is_number());
  return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::string_value() const {
  assert(is_string());
  return string_;
}

const JsonValue::Array& JsonValue::array() const {
  assert(is_array());
  return *array_;
}

JsonValue::Array& JsonValue::mutable_array() {
  assert(is_array());
  // Copy-on-write: never mutate a node shared with another value.
  if (array_.use_count() > 1) array_ = std::make_shared<Array>(*array_);
  return *array_;
}

const JsonValue::Object& JsonValue::object() const {
  assert(is_object());
  return *object_;
}

JsonValue::Object& JsonValue::mutable_object() {
  assert(is_object());
  if (object_.use_count() > 1) object_ = std::make_shared<Object>(*object_);
  return *object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::FindPath(std::string_view dotted_path) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (start <= dotted_path.size()) {
    size_t dot = dotted_path.find('.', start);
    std::string_view step = dotted_path.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start);
    if (step.empty()) return nullptr;
    if (cur->is_object()) {
      cur = cur->Find(step);
    } else if (cur->is_array()) {
      size_t idx = 0;
      auto [ptr, ec] =
          std::from_chars(step.data(), step.data() + step.size(), idx);
      if (ec != std::errc() || ptr != step.data() + step.size()) return nullptr;
      if (idx >= cur->array_->size()) return nullptr;
      cur = &(*cur->array_)[idx];
    } else {
      return nullptr;
    }
    if (cur == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return cur;
}

void JsonValue::Set(std::string key, JsonValue value) {
  mutable_object()[std::move(key)] = std::move(value);
}

void JsonValue::Append(JsonValue value) {
  mutable_array().push_back(std::move(value));
}

size_t JsonValue::size() const {
  if (is_array()) return array_->size();
  if (is_object()) return object_->size();
  return 0;
}

namespace {

void EscapeStringTo(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberTo(double d, std::string* out) {
  if (std::isfinite(d)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    std::string s = buf;
    // Keep the double/int distinction across a round-trip: an integral
    // double must not re-parse as an integer.
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    *out += s;
  } else {
    // JSON has no Inf/NaN; serialize as null (the common lenient choice).
    *out += "null";
  }
}

}  // namespace

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  auto newline = [&] {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * depth), ' ');
    }
  };
  switch (kind_) {
    case JsonKind::kNull:
      *out += "null";
      break;
    case JsonKind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case JsonKind::kInt:
      *out += std::to_string(int_);
      break;
    case JsonKind::kDouble:
      NumberTo(double_, out);
      break;
    case JsonKind::kString:
      EscapeStringTo(string_, out);
      break;
    case JsonKind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : *array_) {
        if (!first) out->push_back(',');
        first = false;
        ++depth;
        newline();
        item.SerializeTo(out, indent, depth);
        --depth;
      }
      if (!array_->empty()) newline();
      out->push_back(']');
      break;
    }
    case JsonKind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : *object_) {
        if (!first) out->push_back(',');
        first = false;
        ++depth;
        newline();
        EscapeStringTo(key, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        value.SerializeTo(out, indent, depth);
        --depth;
      }
      if (!object_->empty()) newline();
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::Pretty() const {
  std::string out;
  SerializeTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  return JsonValue::Compare(a, b) == 0;
}

int JsonValue::Compare(const JsonValue& a, const JsonValue& b) {
  auto rank = [](JsonKind k) { return static_cast<int>(k); };
  if (a.kind_ != b.kind_) return rank(a.kind_) < rank(b.kind_) ? -1 : 1;
  auto cmp3 = [](auto x, auto y) { return x < y ? -1 : (y < x ? 1 : 0); };
  switch (a.kind_) {
    case JsonKind::kNull:
      return 0;
    case JsonKind::kBool:
      return cmp3(a.bool_, b.bool_);
    case JsonKind::kInt:
      return cmp3(a.int_, b.int_);
    case JsonKind::kDouble:
      return cmp3(a.double_, b.double_);
    case JsonKind::kString: {
      int c = a.string_.compare(b.string_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case JsonKind::kArray: {
      const auto& x = *a.array_;
      const auto& y = *b.array_;
      for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
        int c = Compare(x[i], y[i]);
        if (c != 0) return c;
      }
      return cmp3(x.size(), y.size());
    }
    case JsonKind::kObject: {
      auto ia = a.object_->begin();
      auto ib = b.object_->begin();
      for (; ia != a.object_->end() && ib != b.object_->end(); ++ia, ++ib) {
        int kc = ia->first.compare(ib->first);
        if (kc != 0) return kc < 0 ? -1 : 1;
        int vc = Compare(ia->second, ib->second);
        if (vc != 0) return vc;
      }
      return cmp3(a.object_->size(), b.object_->size());
    }
  }
  return 0;
}

namespace {

/// Recursive-descent RFC 8259 parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseComplete() {
    ESTOCADA_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Fail(std::string_view what) {
    return Status::ParseError(
        StrCat("JSON parse error at offset ", pos_, ": ", what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        ESTOCADA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Str(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Fail("unexpected character");
    }
  }

  Result<JsonValue> ParseLiteral(std::string_view lit, JsonValue value) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    std::string_view num = text_.substr(start, pos_ - start);
    if (num.empty() || num == "-") return Fail("bad number");
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
      if (ec == std::errc() && p == num.data() + num.size()) {
        return JsonValue::Int(v);
      }
      // Overflowing integers fall through to double.
    }
    double d = 0;
    auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
    if (ec != std::errc() || p != num.data() + num.size()) {
      return Fail("bad number");
    }
    return JsonValue::Double(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two 3-byte sequences; sufficient for our data).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return arr;
    for (;;) {
      ESTOCADA_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      arr.Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWhitespace();
      ESTOCADA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' in object");
      ESTOCADA_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> Parse(std::string_view text) {
  return Parser(text).ParseComplete();
}

std::ostream& operator<<(std::ostream& os, const JsonValue& v) {
  return os << v.Serialize();
}

}  // namespace estocada::json
