#ifndef ESTOCADA_FRONTEND_SQL_H_
#define ESTOCADA_FRONTEND_SQL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "pivot/query.h"
#include "pivot/schema.h"

namespace estocada::frontend {

/// Translates the conjunctive SELECT-FROM-WHERE fragment of SQL — the
/// native language of relational datasets (paper §III: "each dataset is
/// accessed through a language specific to its native data model, e.g.
/// SQL if the data is relational") — into a pivot-model conjunctive
/// query.
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT a.col [AS name], b.col, ...
///   FROM   dataset.table a, dataset.table2 b, ...
///   WHERE  a.col = b.col AND a.col = 'literal' AND b.col = $param ...
///
/// Tables resolve against `schema` ("dataset.table" pivot relations with
/// named columns); star selects (`SELECT *`), inequalities, and nested
/// queries are outside the CQ fragment and rejected with kUnsupported.
/// `$param` variables carry through as execution-time parameters.
///
/// The result is an ordinary pivot CQ: run it through Estocada::Query /
/// the PACB rewriter like any other.
Result<pivot::ConjunctiveQuery> SqlToCq(std::string_view sql,
                                        const pivot::Schema& schema,
                                        std::string query_name = "q");

}  // namespace estocada::frontend

#endif  // ESTOCADA_FRONTEND_SQL_H_
