#include "frontend/gmatch.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "pivot/parser.h"

namespace estocada::frontend {

using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Term;

namespace {

/// Parses a property value in pivot literal syntax (or a $parameter) via
/// a throwaway atom — the same guard docfind uses, so malformed values
/// are rejected instead of smuggled into the query body.
Result<Term> ParseLiteral(const std::string& value) {
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Atom> parsed,
                            pivot::ParseAtomList(StrCat("X(", value, ")")));
  if (parsed.size() != 1 || parsed[0].terms.size() != 1) {
    return Status::InvalidArgument(
        StrCat("property value '", value,
               "' must be a single literal or $parameter"));
  }
  const Term& v = parsed[0].terms[0];
  if (v.is_variable() && v.var_name()[0] != '$') {
    return Status::InvalidArgument(
        StrCat("property value '", value,
               "' must be a literal or a $parameter"));
  }
  return v;
}

}  // namespace

Result<ConjunctiveQuery> GraphMatchToCq(const GraphMatchSpec& spec,
                                        const pivot::Schema& schema,
                                        std::string query_name) {
  if (spec.dataset.empty()) {
    return Status::InvalidArgument("GraphMatchSpec needs a dataset");
  }
  auto rel = [&spec](const std::string& r) {
    return StrCat(spec.dataset, ".", r);
  };
  if (!schema.HasRelation(rel("Node"))) {
    return Status::NotFound(
        StrCat("'", spec.dataset, "' is not a registered graph dataset (no ",
               rel("Node"), " relation)"));
  }
  ConjunctiveQuery q;
  q.name = std::move(query_name);

  size_t fresh = 0;
  auto fresh_var = [&fresh]() { return Term::Var(StrCat("_g", fresh++)); };

  // One Node atom per declared pattern; the binding variable is the id.
  std::set<std::string> declared;
  // "var.key" -> value variable, shared between repeated returns. Filter
  // constants are NOT shared in: a returned property always gets its own
  // value variable and NodeProp atom (the key EGD keeps them consistent).
  std::map<std::string, Term> prop_value;
  for (const GraphMatchSpec::NodePattern& n : spec.nodes) {
    if (n.var.empty()) {
      return Status::InvalidArgument("node pattern needs a variable name");
    }
    if (!declared.insert(n.var).second) {
      return Status::InvalidArgument(
          StrCat("node variable '", n.var, "' declared twice"));
    }
    Term id = Term::Var(n.var);
    Term label = n.label.empty() ? fresh_var() : Term::Str(n.label);
    q.body.push_back(Atom(rel("Node"), {id, label}));
    for (const auto& [key, value] : n.props) {
      ESTOCADA_ASSIGN_OR_RETURN(Term v, ParseLiteral(value));
      q.body.push_back(Atom(rel("NodeProp"), {id, Term::Str(key), v}));
    }
  }

  for (const GraphMatchSpec::EdgePattern& e : spec.edges) {
    if (!declared.count(e.src_var) || !declared.count(e.dst_var)) {
      return Status::InvalidArgument(
          StrCat("edge ", e.src_var, " -> ", e.dst_var,
                 " references an undeclared node variable"));
    }
    Term src = Term::Var(e.src_var);
    Term dst = Term::Var(e.dst_var);
    if (e.max_hops == 1) {
      Term label = e.label.empty() ? fresh_var() : Term::Str(e.label);
      q.body.push_back(Atom(rel("Edge"), {src, label, dst}));
      for (const auto& [key, value] : e.props) {
        ESTOCADA_ASSIGN_OR_RETURN(Term v, ParseLiteral(value));
        q.body.push_back(
            Atom(rel("EdgeProp"), {src, label, dst, Term::Str(key), v}));
      }
    } else {
      if (!e.label.empty() || !e.props.empty()) {
        return Status::InvalidArgument(
            StrCat("bounded path ", e.src_var, " -*1..", e.max_hops, "-> ",
                   e.dst_var,
                   " cannot carry a label or properties (the encoding's "
                   "reachability is label-agnostic)"));
      }
      std::string reach = rel(StrCat("Reach", e.max_hops));
      if (!schema.HasRelation(reach)) {
        return Status::NotFound(
            StrCat("bounded path needs ", reach,
                   "; the dataset's graph encoding was registered with a "
                   "smaller hop bound"));
      }
      q.body.push_back(Atom(reach, {src, dst}));
    }
  }

  for (const std::string& ret : spec.returns) {
    size_t dot = ret.find('.');
    if (dot == std::string::npos) {
      if (!declared.count(ret)) {
        return Status::InvalidArgument(
            StrCat("return '", ret, "' is not a declared node variable"));
      }
      q.head.push_back(Term::Var(ret));
      continue;
    }
    std::string var = ret.substr(0, dot);
    std::string key = ret.substr(dot + 1);
    if (!declared.count(var)) {
      return Status::InvalidArgument(
          StrCat("return '", ret, "' is not a declared node variable"));
    }
    auto [it, inserted] =
        prop_value.emplace(ret, Term::Var(StrCat("v_", var, "_", key)));
    if (inserted) {
      q.body.push_back(Atom(
          rel("NodeProp"), {Term::Var(var), Term::Str(key), it->second}));
    }
    q.head.push_back(it->second);
  }
  if (q.head.empty()) {
    return Status::InvalidArgument("GraphMatchSpec needs at least one return");
  }
  ESTOCADA_RETURN_NOT_OK(q.Validate());
  return q;
}

}  // namespace estocada::frontend
