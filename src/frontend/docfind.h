#ifndef ESTOCADA_FRONTEND_DOCFIND_H_
#define ESTOCADA_FRONTEND_DOCFIND_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "pivot/query.h"
#include "pivot/schema.h"

namespace estocada::frontend {

/// The document-native query API (the "find()" of the paper's MongoDB):
/// conjunctive equality predicates over registered dotted paths of one
/// document collection, returning values at selected paths. Translates to
/// a pivot CQ over the collection's *path relations* (see
/// encoding::DocumentEncoding): one atom per mentioned path, joined on the
/// shared document id.
///
///   DocFindSpec spec;
///   spec.collection = "mk.products";            // dataset.collection
///   spec.filters = {{"category", "'cat0'"}};    // path = pivot literal
///   spec.returns = {"pid", "name"};             // paths to project
///
/// Filter values use pivot literal syntax ('str', 42, 2.5, true, null) or
/// a $parameter. The resulting CQ's head is (docID, returns...).
struct DocFindSpec {
  std::string collection;
  struct Filter {
    std::string path;
    std::string value;  ///< Pivot literal or $param.
  };
  std::vector<Filter> filters;
  std::vector<std::string> returns;
  bool include_doc_id = true;  ///< Prepend docID to the head.
};

Result<pivot::ConjunctiveQuery> DocFindToCq(const DocFindSpec& spec,
                                            const pivot::Schema& schema,
                                            std::string query_name = "q");

/// The key-value-native access ("key-based search API"): the value columns
/// of `relation` for a given key, i.e. q(v...) :- relation($key, v...).
/// `relation` must be binary-or-wider with the key in position 0.
Result<pivot::ConjunctiveQuery> KeyLookupToCq(const std::string& relation,
                                              const pivot::Schema& schema,
                                              std::string query_name = "q");

}  // namespace estocada::frontend

#endif  // ESTOCADA_FRONTEND_DOCFIND_H_
