#include "frontend/sql.h"

#include <cctype>
#include <charconv>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace estocada::frontend {

using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::RelationSignature;
using pivot::Term;

namespace {

/// SQL token kinds: identifiers (possibly dotted), literals, punctuation.
struct Token {
  enum class Kind { kIdent, kString, kNumber, kParam, kPunct, kEnd };
  Kind kind;
  std::string text;
};

class SqlLexer {
 public:
  explicit SqlLexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != '\'') {
          s.push_back(text_[pos_++]);
        }
        if (pos_ >= text_.size()) {
          return Status::ParseError("unterminated SQL string literal");
        }
        ++pos_;
        out.push_back({Token::Kind::kString, std::move(s)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        size_t start = pos_;
        if (c == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.')) {
          ++pos_;
        }
        out.push_back({Token::Kind::kNumber,
                       std::string(text_.substr(start, pos_ - start))});
        continue;
      }
      if (c == '$') {
        size_t start = pos_++;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back({Token::Kind::kParam,
                       std::string(text_.substr(start, pos_ - start))});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.')) {
          ++pos_;
        }
        out.push_back({Token::Kind::kIdent,
                       std::string(text_.substr(start, pos_ - start))});
        continue;
      }
      if (c == ',' || c == '=' || c == '(' || c == ')' || c == '*' ||
          c == '<' || c == '>' || c == '!') {
        out.push_back({Token::Kind::kPunct, std::string(1, c)});
        ++pos_;
        continue;
      }
      return Status::ParseError(
          StrCat("unexpected character '", std::string(1, c),
                 "' in SQL at offset ", pos_));
    }
    out.push_back({Token::Kind::kEnd, ""});
    return out;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Recursive-descent parser over the token stream.
class SqlParser {
 public:
  SqlParser(std::vector<Token> tokens, const pivot::Schema& schema,
            std::string query_name)
      : tokens_(std::move(tokens)),
        schema_(schema),
        query_name_(std::move(query_name)) {}

  Result<ConjunctiveQuery> Parse() {
    ESTOCADA_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    // Select list: alias.column [AS name], ...
    struct SelectItem {
      std::string alias, column, out_name;
    };
    std::vector<SelectItem> select;
    for (;;) {
      if (PeekPunct("*")) {
        return Status::Unsupported(
            "SELECT * is not part of the supported conjunctive fragment; "
            "list the columns explicitly");
      }
      ESTOCADA_ASSIGN_OR_RETURN(auto col, ParseQualifiedColumn());
      SelectItem item{col.first, col.second, col.second};
      if (PeekKeyword("AS")) {
        ++pos_;
        ESTOCADA_ASSIGN_OR_RETURN(std::string name, ParseIdent());
        item.out_name = std::move(name);
      }
      select.push_back(std::move(item));
      if (!ConsumePunct(",")) break;
    }
    ESTOCADA_RETURN_NOT_OK(ExpectKeyword("FROM"));
    // FROM list: relation alias, ...
    for (;;) {
      ESTOCADA_ASSIGN_OR_RETURN(std::string rel, ParseIdent());
      ESTOCADA_ASSIGN_OR_RETURN(std::string alias, ParseIdent());
      ESTOCADA_ASSIGN_OR_RETURN(const RelationSignature sig,
                                schema_.GetRelation(rel));
      if (tables_.count(alias)) {
        return Status::ParseError(StrCat("duplicate alias '", alias, "'"));
      }
      tables_.emplace(alias, sig);
      from_order_.push_back(alias);
      if (!ConsumePunct(",")) break;
    }
    // WHERE: conjunction of equalities.
    struct Equality {
      // Each side is a column ref or a constant term.
      bool left_is_col, right_is_col;
      std::pair<std::string, std::string> lcol, rcol;
      Term lconst, rconst;
    };
    std::vector<Equality> equalities;
    if (PeekKeyword("WHERE")) {
      ++pos_;
      for (;;) {
        Equality eq;
        ESTOCADA_RETURN_NOT_OK(ParseOperand(&eq.left_is_col, &eq.lcol,
                                            &eq.lconst));
        if (!ConsumePunct("=")) {
          return Status::Unsupported(
              "only equality predicates are in the conjunctive fragment");
        }
        ESTOCADA_RETURN_NOT_OK(ParseOperand(&eq.right_is_col, &eq.rcol,
                                            &eq.rconst));
        equalities.push_back(std::move(eq));
        if (!PeekKeyword("AND")) break;
        ++pos_;
      }
    }
    if (tokens_[pos_].kind != Token::Kind::kEnd) {
      return Status::Unsupported(
          StrCat("unsupported SQL beyond the conjunctive fragment near '",
                 tokens_[pos_].text, "'"));
    }

    // ---- Build the CQ. Every (alias, column) gets a variable name;
    // equalities unify variable names (union-find over column refs) or
    // pin a column to a constant.
    // Variable naming: "<alias>_<column>" canonicalized by union-find.
    std::map<std::pair<std::string, std::string>,
             std::pair<std::string, std::string>>
        parent;
    auto canon = [&](std::pair<std::string, std::string> c) {
      while (true) {
        auto it = parent.find(c);
        if (it == parent.end() || it->second == c) return c;
        c = it->second;
      }
    };
    auto check_col = [&](const std::pair<std::string, std::string>& c)
        -> Status {
      auto it = tables_.find(c.first);
      if (it == tables_.end()) {
        return Status::NotFound(StrCat("unknown alias '", c.first, "'"));
      }
      for (const std::string& col : it->second.columns) {
        if (col == c.second) return Status::OK();
      }
      return Status::NotFound(
          StrCat("unknown column '", c.first, ".", c.second, "'"));
    };
    std::map<std::pair<std::string, std::string>, Term> pinned;
    for (const Equality& eq : equalities) {
      if (eq.left_is_col) ESTOCADA_RETURN_NOT_OK(check_col(eq.lcol));
      if (eq.right_is_col) ESTOCADA_RETURN_NOT_OK(check_col(eq.rcol));
      if (eq.left_is_col && eq.right_is_col) {
        auto a = canon(eq.lcol);
        auto b = canon(eq.rcol);
        if (a != b) parent[a] = b;
      } else if (eq.left_is_col) {
        pinned[canon(eq.lcol)] = eq.rconst;
      } else if (eq.right_is_col) {
        pinned[canon(eq.rcol)] = eq.lconst;
      } else {
        return Status::Unsupported(
            "constant = constant predicates are not useful in a CQ");
      }
    }
    // Re-canonicalize pins (a later union may have moved the root).
    std::map<std::pair<std::string, std::string>, Term> pinned_canon;
    for (const auto& [col, term] : pinned) {
      pinned_canon[canon(col)] = term;
    }

    auto term_for = [&](const std::string& alias,
                        const std::string& column) -> Term {
      auto c = canon({alias, column});
      auto pin = pinned_canon.find(c);
      if (pin != pinned_canon.end()) return pin->second;
      return Term::Var(StrCat(c.first, "_", c.second));
    };

    ConjunctiveQuery q;
    q.name = query_name_;
    for (const std::string& alias : from_order_) {
      const RelationSignature& sig = tables_.at(alias);
      Atom a;
      a.relation = sig.name;
      for (const std::string& col : sig.columns) {
        a.terms.push_back(term_for(alias, col));
      }
      q.body.push_back(std::move(a));
    }
    for (const auto& item : select) {
      ESTOCADA_RETURN_NOT_OK(check_col({item.alias, item.column}));
      q.head.push_back(term_for(item.alias, item.column));
    }
    ESTOCADA_RETURN_NOT_OK(q.Validate());
    return q;
  }

 private:
  bool PeekKeyword(const char* kw) const {
    return tokens_[pos_].kind == Token::Kind::kIdent &&
           AsciiLower(tokens_[pos_].text) == AsciiLower(kw);
  }
  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Status::ParseError(
          StrCat("expected ", kw, " near '", tokens_[pos_].text, "'"));
    }
    ++pos_;
    return Status::OK();
  }
  bool PeekPunct(const char* p) const {
    return tokens_[pos_].kind == Token::Kind::kPunct &&
           tokens_[pos_].text == p;
  }
  bool ConsumePunct(const char* p) {
    if (PeekPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Result<std::string> ParseIdent() {
    if (tokens_[pos_].kind != Token::Kind::kIdent) {
      return Status::ParseError(
          StrCat("expected identifier near '", tokens_[pos_].text, "'"));
    }
    return tokens_[pos_++].text;
  }
  /// "alias.column" (the relation name itself may be dotted, so the
  /// *last* dot separates the column).
  Result<std::pair<std::string, std::string>> ParseQualifiedColumn() {
    ESTOCADA_ASSIGN_OR_RETURN(std::string ident, ParseIdent());
    size_t dot = ident.rfind('.');
    if (dot == std::string::npos) {
      return Status::ParseError(
          StrCat("column reference '", ident, "' must be alias-qualified"));
    }
    return std::make_pair(ident.substr(0, dot), ident.substr(dot + 1));
  }
  Status ParseOperand(bool* is_col,
                      std::pair<std::string, std::string>* col, Term* c) {
    const Token& t = tokens_[pos_];
    switch (t.kind) {
      case Token::Kind::kIdent: {
        ESTOCADA_ASSIGN_OR_RETURN(auto qc, ParseQualifiedColumn());
        *is_col = true;
        *col = std::move(qc);
        return Status::OK();
      }
      case Token::Kind::kString:
        *is_col = false;
        *c = Term::Str(t.text);
        ++pos_;
        return Status::OK();
      case Token::Kind::kNumber: {
        *is_col = false;
        if (t.text.find('.') != std::string::npos) {
          double d = 0;
          auto [p, ec] =
              std::from_chars(t.text.data(), t.text.data() + t.text.size(), d);
          (void)p;
          if (ec != std::errc()) return Status::ParseError("bad number");
          *c = Term::Const(pivot::Constant::Real(d));
        } else {
          int64_t v = 0;
          auto [p, ec] =
              std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
          (void)p;
          if (ec != std::errc()) return Status::ParseError("bad number");
          *c = Term::Int(v);
        }
        ++pos_;
        return Status::OK();
      }
      case Token::Kind::kParam:
        // Parameters stay symbolic: they become '$'-variables of the CQ.
        *is_col = false;
        *c = Term::Var(t.text);
        ++pos_;
        return Status::OK();
      default:
        return Status::ParseError(
            StrCat("expected operand near '", t.text, "'"));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const pivot::Schema& schema_;
  std::string query_name_;
  std::map<std::string, RelationSignature> tables_;
  std::vector<std::string> from_order_;
};

}  // namespace

Result<ConjunctiveQuery> SqlToCq(std::string_view sql,
                                 const pivot::Schema& schema,
                                 std::string query_name) {
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Token> tokens, SqlLexer(sql).Lex());
  return SqlParser(std::move(tokens), schema, std::move(query_name)).Parse();
}

}  // namespace estocada::frontend
