#include "frontend/docfind.h"

#include <map>

#include "common/strings.h"
#include "pivot/parser.h"

namespace estocada::frontend {

using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Term;

Result<ConjunctiveQuery> DocFindToCq(const DocFindSpec& spec,
                                     const pivot::Schema& schema,
                                     std::string query_name) {
  if (spec.collection.empty()) {
    return Status::InvalidArgument("DocFindSpec needs a collection");
  }
  std::string doc_rel = StrCat(spec.collection, ".doc");
  if (!schema.HasRelation(doc_rel)) {
    return Status::NotFound(
        StrCat("'", spec.collection,
               "' is not a registered document collection (no ", doc_rel,
               " relation)"));
  }
  ConjunctiveQuery q;
  q.name = std::move(query_name);
  Term doc_id = Term::Var("docID");
  q.body.push_back(Atom(doc_rel, {doc_id}));

  // One path-relation atom per mentioned path; repeated paths share one
  // atom only if both filter and return mention it (value var reused).
  std::map<std::string, Term> value_term;
  auto path_atom = [&](const std::string& path,
                       const Term& value) -> Status {
    std::string rel = StrCat(spec.collection, ".", path);
    if (!schema.HasRelation(rel)) {
      return Status::NotFound(
          StrCat("path '", path, "' is not registered for collection '",
                 spec.collection, "'"));
    }
    q.body.push_back(Atom(rel, {doc_id, value}));
    return Status::OK();
  };
  for (const DocFindSpec::Filter& f : spec.filters) {
    // Parse the literal via a throwaway atom ("X(<value>)"). The value is
    // interpolated into pivot syntax, so anything that does not parse back
    // to exactly one single-term atom (empty string, "1), Y(2", ...) is
    // rejected here rather than smuggled into the query body.
    ESTOCADA_ASSIGN_OR_RETURN(std::vector<Atom> parsed,
                              pivot::ParseAtomList(StrCat("X(", f.value,
                                                          ")")));
    if (parsed.size() != 1 || parsed[0].terms.size() != 1) {
      return Status::InvalidArgument(
          StrCat("filter value '", f.value,
                 "' must be a single literal or $parameter"));
    }
    const Term& v = parsed[0].terms[0];
    if (v.is_variable() && v.var_name()[0] != '$') {
      return Status::InvalidArgument(
          StrCat("filter value '", f.value,
                 "' must be a literal or a $parameter"));
    }
    ESTOCADA_RETURN_NOT_OK(path_atom(f.path, v));
  }
  for (const std::string& path : spec.returns) {
    auto [it, fresh] = value_term.emplace(
        path, Term::Var(StrCat("v_", path)));
    if (fresh) {
      ESTOCADA_RETURN_NOT_OK(path_atom(path, it->second));
    }
  }

  if (spec.include_doc_id) q.head.push_back(doc_id);
  for (const std::string& path : spec.returns) {
    q.head.push_back(value_term.at(path));
  }
  if (q.head.empty()) q.head.push_back(doc_id);
  ESTOCADA_RETURN_NOT_OK(q.Validate());
  return q;
}

Result<ConjunctiveQuery> KeyLookupToCq(const std::string& relation,
                                       const pivot::Schema& schema,
                                       std::string query_name) {
  ESTOCADA_ASSIGN_OR_RETURN(pivot::RelationSignature sig,
                            schema.GetRelation(relation));
  if (sig.arity() < 2) {
    return Status::InvalidArgument(
        StrCat("key lookup needs arity >= 2, '", relation, "' has ",
               sig.arity()));
  }
  ConjunctiveQuery q;
  q.name = std::move(query_name);
  Atom a;
  a.relation = relation;
  a.terms.push_back(Term::Var("$key"));
  for (size_t i = 1; i < sig.arity(); ++i) {
    Term v = Term::Var(StrCat("v", i));
    a.terms.push_back(v);
    q.head.push_back(v);
  }
  q.body.push_back(std::move(a));
  return q;
}

}  // namespace estocada::frontend
