#ifndef ESTOCADA_FRONTEND_GMATCH_H_
#define ESTOCADA_FRONTEND_GMATCH_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "pivot/query.h"
#include "pivot/schema.h"

namespace estocada::frontend {

/// The graph-native query API (a small Cypher-flavoured MATCH): node
/// patterns with labels and property equality, labeled edge patterns,
/// and `*1..k` bounded-length paths. Translates to a pivot CQ over the
/// dataset's encoding::GraphEncoding relations — one Node atom per
/// declared node, NodeProp/EdgeProp atoms per property filter, an Edge
/// atom per single-hop edge, and a Reach<k> atom per bounded path.
///
///   GraphMatchSpec spec;
///   spec.dataset = "soc";
///   spec.nodes = {{"a", "User", {{"country", "'fr'"}}},
///                 {"b", "User", {}}};
///   spec.edges = {{"a", "follows", "b", {}, 1}};     // a -[follows]-> b
///   spec.edges.push_back({"b", "", "c", {}, 3});     // b -*1..3-> c
///   spec.returns = {"b", "b.name"};
///
/// Property values use pivot literal syntax ('str', 42, 2.5, true, null)
/// or a $parameter. `returns` entries are node variables (their ids) or
/// "var.key" (a node property value). The head lists them in order.
struct GraphMatchSpec {
  std::string dataset;
  struct NodePattern {
    std::string var;    ///< Binding name; shared across patterns.
    std::string label;  ///< Required label; "" matches any.
    /// Property equality filters: key = pivot literal or $param.
    std::vector<std::pair<std::string, std::string>> props;
  };
  struct EdgePattern {
    std::string src_var;
    std::string label;  ///< Edge label; "" matches any. Single-hop only.
    std::string dst_var;
    /// Edge property equality filters (single-hop only).
    std::vector<std::pair<std::string, std::string>> props;
    /// 1 = a direct Edge atom; k > 1 = a bounded path of at most k hops
    /// (a Reach<k> atom — label/props must then be empty, the encoding's
    /// reachability is label-agnostic). k must not exceed the max_hops
    /// the dataset's GraphEncoding registered.
    size_t max_hops = 1;
  };
  std::vector<NodePattern> nodes;
  std::vector<EdgePattern> edges;
  std::vector<std::string> returns;
};

Result<pivot::ConjunctiveQuery> GraphMatchToCq(const GraphMatchSpec& spec,
                                               const pivot::Schema& schema,
                                               std::string query_name = "q");

}  // namespace estocada::frontend

#endif  // ESTOCADA_FRONTEND_GMATCH_H_
