#ifndef ESTOCADA_ENGINE_COMPILED_H_
#define ESTOCADA_ENGINE_COMPILED_H_

#include <cstdint>
#include <vector>

#include "engine/batch.h"
#include "engine/value.h"

namespace estocada::engine {

/// Compiled key kernels for the hot join loops, the engine-side analogue
/// of the chase kernel's compiled homomorphism matcher (DESIGN.md §2.6):
/// instead of materializing a `Row` key per tuple and hashing it through
/// `std::function`-shaped indirection, the join operators resolve a pair
/// of plain function pointers *once at Open* — specialized per key arity
/// via template instantiation, with a generic fallback above the
/// specialized arities — and the inner loop hashes and compares key
/// columns in place over the batch's column vectors.
struct KeyOps {
  /// Hash of the key columns `cols[0..arity)` of physical row `row`.
  uint64_t (*hash)(const RowBatch& batch, const uint32_t* cols, size_t arity,
                   uint32_t row);
  /// Equality of two keys drawn from (possibly different) batches.
  bool (*equals)(const RowBatch& a, const uint32_t* a_cols, uint32_t a_row,
                 const RowBatch& b, const uint32_t* b_cols, size_t arity,
                 uint32_t b_row);
};

/// The per-arity kernel, compiled (instantiated) once and cached in a
/// static table — repeated Opens of the same key shape pay nothing.
const KeyOps& CompiledKeyOps(size_t arity);

/// Open-addressing chained hash table mapping key hashes to build-side row
/// chains, sized once from the build cardinality. Chains preserve insertion
/// order, so probe output order matches the tuple-at-a-time oracle exactly.
/// Keys with equal hashes share a chain; the caller filters candidates with
/// the compiled equality kernel.
class FlatJoinTable {
 public:
  /// Sizes the bucket array for `n` entries (power of two, ≤70% load).
  void Reset(size_t n);

  /// Registers build row `row_index` under `hash`.
  void Insert(uint64_t hash, uint32_t row_index);

  static constexpr uint32_t kNone = 0xffffffffu;

  /// First candidate build row for `hash`, or kNone.
  uint32_t Head(uint64_t hash) const;

  /// Next candidate in the same chain, or kNone.
  uint32_t Next(uint32_t row_index) const { return next_[row_index]; }

  size_t entries() const { return entries_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t head = kNone;
    uint32_t tail = kNone;
  };
  std::vector<Slot> slots_;
  std::vector<uint32_t> next_;
  size_t mask_ = 0;
  size_t entries_ = 0;
};

}  // namespace estocada::engine

#endif  // ESTOCADA_ENGINE_COMPILED_H_
