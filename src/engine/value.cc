#include "engine/value.h"

#include <cassert>
#include <cstdio>

#include "common/hash.h"
#include "common/strings.h"

namespace estocada::engine {

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

Value Value::Real(double d) {
  Value v;
  v.kind_ = Kind::kReal;
  v.real_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kStr;
  v.str_ = std::move(s);
  return v;
}

Value Value::List(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kList;
  v.list_ = std::make_shared<std::vector<Value>>(std::move(items));
  return v;
}

bool Value::bool_value() const {
  assert(is_bool());
  return bool_;
}

int64_t Value::int_value() const {
  assert(is_int());
  return int_;
}

double Value::real_value() const {
  assert(is_real());
  return real_;
}

double Value::as_real() const {
  assert(is_int() || is_real());
  return is_int() ? static_cast<double>(int_) : real_;
}

const std::string& Value::string_value() const {
  assert(is_string());
  return str_;
}

const std::vector<Value>& Value::list() const {
  assert(is_list());
  return *list_;
}

std::vector<Value>& Value::mutable_list() {
  assert(is_list());
  if (list_.use_count() > 1) {
    list_ = std::make_shared<std::vector<Value>>(*list_);
  }
  return *list_;
}

int Value::Compare(const Value& a, const Value& b) {
  auto cmp3 = [](auto x, auto y) { return x < y ? -1 : (y < x ? 1 : 0); };
  // Numeric kinds compare with each other (SQL semantics).
  const bool a_num = a.is_int() || a.is_real();
  const bool b_num = b.is_int() || b.is_real();
  if (a_num && b_num) {
    if (a.is_int() && b.is_int()) return cmp3(a.int_, b.int_);
    return cmp3(a.as_real(), b.as_real());
  }
  if (a.kind_ != b.kind_) {
    return cmp3(static_cast<int>(a.kind_), static_cast<int>(b.kind_));
  }
  switch (a.kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return cmp3(a.bool_, b.bool_);
    case Kind::kStr: {
      int c = a.str_.compare(b.str_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case Kind::kList: {
      const auto& x = *a.list_;
      const auto& y = *b.list_;
      for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
        int c = Compare(x[i], y[i]);
        if (c != 0) return c;
      }
      return cmp3(x.size(), y.size());
    }
    default:
      return 0;  // Unreachable: numeric kinds handled above.
  }
}

size_t Value::Hash() const {
  size_t seed = 0x5151;
  switch (kind_) {
    case Kind::kNull:
      HashCombine(&seed, 3);
      break;
    case Kind::kBool:
      HashCombine(&seed, bool_ ? 11u : 13u);
      break;
    case Kind::kInt:
      // Ints and equal-valued reals must hash alike (they compare equal).
      HashCombine(&seed, std::hash<double>()(static_cast<double>(int_)));
      break;
    case Kind::kReal:
      HashCombine(&seed, std::hash<double>()(real_));
      break;
    case Kind::kStr:
      HashCombine(&seed, std::hash<std::string>()(str_));
      break;
    case Kind::kList:
      for (const Value& v : *list_) HashCombine(&seed, v.Hash());
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kReal: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", real_);
      return buf;
    }
    case Kind::kStr:
      return str_;
    case Kind::kList:
      return StrCat(
          "[",
          StrJoinMapped(*list_, ", ",
                        [](const Value& v) { return v.ToString(); }),
          "]");
  }
  return "?";
}

Value Value::FromJson(const json::JsonValue& j) {
  switch (j.kind()) {
    case json::JsonKind::kNull:
      return Null();
    case json::JsonKind::kBool:
      return Bool(j.bool_value());
    case json::JsonKind::kInt:
      return Int(j.int_value());
    case json::JsonKind::kDouble:
      return Real(j.double_value());
    case json::JsonKind::kString:
      return Str(j.string_value());
    case json::JsonKind::kArray: {
      std::vector<Value> items;
      items.reserve(j.array().size());
      for (const auto& e : j.array()) items.push_back(FromJson(e));
      return List(std::move(items));
    }
    case json::JsonKind::kObject: {
      std::vector<Value> pairs;
      for (const auto& [k, v] : j.object()) {
        pairs.push_back(List({Str(k), FromJson(v)}));
      }
      return List(std::move(pairs));
    }
  }
  return Null();
}

json::JsonValue Value::ToJson() const {
  switch (kind_) {
    case Kind::kNull:
      return json::JsonValue::Null();
    case Kind::kBool:
      return json::JsonValue::Bool(bool_);
    case Kind::kInt:
      return json::JsonValue::Int(int_);
    case Kind::kReal:
      return json::JsonValue::Double(real_);
    case Kind::kStr:
      return json::JsonValue::Str(str_);
    case Kind::kList: {
      json::JsonValue arr = json::JsonValue::MakeArray();
      for (const Value& v : *list_) arr.Append(v.ToJson());
      return arr;
    }
  }
  return json::JsonValue::Null();
}

Value Value::FromConstant(const pivot::Constant& c) {
  if (c.is_null()) return Null();
  if (c.is_bool()) return Bool(c.bool_value());
  if (c.is_int()) return Int(c.int_value());
  if (c.is_real()) return Real(c.real_value());
  return Str(c.string_value());
}

pivot::Constant Value::ToConstant() const {
  switch (kind_) {
    case Kind::kNull:
      return pivot::Constant::Null();
    case Kind::kBool:
      return pivot::Constant::Bool(bool_);
    case Kind::kInt:
      return pivot::Constant::Int(int_);
    case Kind::kReal:
      return pivot::Constant::Real(real_);
    case Kind::kStr:
      return pivot::Constant::Str(str_);
    case Kind::kList:
      // Pivot constants are scalar; nested values travel as JSON text.
      return pivot::Constant::Str(ToJson().Serialize());
  }
  return pivot::Constant::Null();
}

std::string RowToString(const Row& row) {
  return StrCat(
      "(",
      StrJoinMapped(row, ", ", [](const Value& v) { return v.ToString(); }),
      ")");
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

size_t RowHash::operator()(const Row& r) const {
  size_t seed = 0x9797;
  for (const Value& v : r) HashCombine(&seed, v.Hash());
  return seed;
}

}  // namespace estocada::engine
