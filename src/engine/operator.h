#ifndef ESTOCADA_ENGINE_OPERATOR_H_
#define ESTOCADA_ENGINE_OPERATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/expr.h"
#include "engine/value.h"

namespace estocada::engine {

/// Pull-based physical operator of ESTOCADA's lightweight execution engine
/// (the paper's "Runtime Execution Engine" evaluating the non-delegated
/// operations over a nested relational model). Usage: Open(), then Next()
/// until it yields nullopt.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  /// Next output row, or nullopt at end of stream.
  virtual Result<std::optional<Row>> Next() = 0;

  /// Column names of the output (for plan display and name resolution).
  virtual std::vector<std::string> columns() const = 0;

  /// One-line operator description; trees render via PlanToString.
  virtual std::string label() const = 0;

  /// Children, for plan printing (borrowed pointers).
  virtual std::vector<const Operator*> children() const { return {}; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` into a vector (Open + Next*).
Result<std::vector<Row>> Collect(Operator* op);

/// Indented multi-line rendering of an operator tree.
std::string PlanToString(const Operator& op, int indent = 0);

// --------------------------------------------------------------- Sources --

/// Materialized input (also the adapter for delegated store results:
/// the rewriting layer runs the native store query and wraps the rows).
class RowsOperator final : public Operator {
 public:
  RowsOperator(std::vector<std::string> columns, std::vector<Row> rows,
               std::string label = "rows");
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override { return columns_; }
  std::string label() const override;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  std::string label_;
  size_t pos_ = 0;
};

/// Lazily calls `fetch` at Open — this is how delegated subqueries reach
/// the underlying DMSs without the engine depending on the store APIs.
class CallbackScanOperator final : public Operator {
 public:
  using Fetch = std::function<Result<std::vector<Row>>()>;
  CallbackScanOperator(std::vector<std::string> columns, Fetch fetch,
                       std::string label);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override { return columns_; }
  std::string label() const override { return label_; }

 private:
  std::vector<std::string> columns_;
  Fetch fetch_;
  std::string label_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Scatter-gather source over a partitioned fragment: one fetch closure
/// per shard, all invoked at Open. With a `pool`, fetches fan out as
/// concurrent tasks — fetches sharing a `shard_key` (the backing store
/// instance) run sequentially inside one task, so a store's statistics
/// sink is never written from two threads at once; with a null pool all
/// fetches run inline. Results are concatenated in shard order, so the
/// output is deterministic regardless of completion order, and the first
/// failing shard (lowest index) fails the Open — a partitioned read
/// cannot answer soundly with a shard missing.
class ScatterGatherOperator final : public Operator {
 public:
  using Fetch = std::function<Result<std::vector<Row>>()>;
  ScatterGatherOperator(std::vector<std::string> columns,
                        std::vector<Fetch> shard_fetches,
                        std::vector<std::string> shard_keys, std::string label,
                        ThreadPool* pool);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override { return columns_; }
  std::string label() const override;

 private:
  std::vector<std::string> columns_;
  std::vector<Fetch> fetches_;
  std::vector<std::string> shard_keys_;
  std::string label_;
  ThreadPool* pool_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// ------------------------------------------------------- Unary operators --

class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr input, ExprPtr predicate);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  ExprPtr predicate_;
};

/// Projects/computes output columns from expressions.
class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr input, std::vector<std::string> names,
                  std::vector<ExprPtr> exprs);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override { return names_; }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<std::string> names_;
  std::vector<ExprPtr> exprs_;
};

class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr input, size_t limit);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  size_t limit_;
  size_t produced_ = 0;
};

class DistinctOperator final : public Operator {
 public:
  explicit DistinctOperator(OperatorPtr input);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override { return "Distinct"; }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::unordered_map<Row, bool, RowHash> seen_;
};

/// Sorts by the given column positions (ascending; stable).
class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr input, std::vector<size_t> sort_columns);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<size_t> sort_columns_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// ------------------------------------------------------ Binary operators --

/// Classic build/probe hash equijoin on pairs of (left col, right col).
/// Output = left columns ++ right columns.
class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right,
                   std::vector<std::pair<size_t, size_t>> key_pairs);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override;
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<std::pair<size_t, size_t>> key_pairs_;
  std::unordered_map<Row, std::vector<Row>, RowHash> build_;
  std::optional<Row> current_probe_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// The BindJoin of the paper: for each input row, extracts the values at
/// `bind_columns` and calls `fetch` with them — the closure performs a
/// native access-pattern-restricted call (a KV Get, an indexed lookup...).
/// Output = input columns ++ fetched columns. Results are memoized per
/// binding so repeated keys cost one call.
class BindJoinOperator final : public Operator {
 public:
  using Fetch = std::function<Result<std::vector<Row>>(const Row& binding)>;
  BindJoinOperator(OperatorPtr input, std::vector<size_t> bind_columns,
                   std::vector<std::string> fetched_columns, Fetch fetch,
                   std::string target_label);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override;
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

  /// Number of times `fetch` was actually invoked (cache misses).
  size_t fetch_calls() const { return fetch_calls_; }

 private:
  OperatorPtr input_;
  std::vector<size_t> bind_columns_;
  std::vector<std::string> fetched_columns_;
  Fetch fetch_;
  std::string target_label_;
  std::unordered_map<Row, std::vector<Row>, RowHash> cache_;
  std::optional<Row> current_input_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_pos_ = 0;
  size_t fetch_calls_ = 0;
};

/// Bag union of inputs with identical arity.
class UnionAllOperator final : public Operator {
 public:
  explicit UnionAllOperator(std::vector<OperatorPtr> inputs);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override;
  std::string label() const override { return "UnionAll"; }
  std::vector<const Operator*> children() const override;

 private:
  std::vector<OperatorPtr> inputs_;
  size_t current_ = 0;
};

// ------------------------------------------------------ Nested / groups --

/// Groups by `group_columns` and nests each remaining column tuple into a
/// list value: output = group columns ++ one list column of nested rows
/// (each nested row itself a list). This is the engine-side construction
/// of nested results the paper describes for non-delegable operations.
class NestOperator final : public Operator {
 public:
  NestOperator(OperatorPtr input, std::vector<size_t> group_columns,
               std::string nested_column_name);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override;
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<size_t> group_columns_;
  std::string nested_name_;
  std::vector<Row> output_;
  size_t pos_ = 0;
};

/// Expands a list column into one output row per element (positions other
/// than `list_column` are copied; the list column is replaced with the
/// element).
class UnnestOperator final : public Operator {
 public:
  UnnestOperator(OperatorPtr input, size_t list_column);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  size_t list_column_;
  std::optional<Row> current_;
  size_t elem_pos_ = 0;
};

/// Aggregate functions of the grouping operator.
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFn fn;
  size_t column;  ///< Ignored for kCount.
  std::string output_name;
};

/// Hash group-by with the classic aggregate functions.
class AggregateOperator final : public Operator {
 public:
  AggregateOperator(OperatorPtr input, std::vector<size_t> group_columns,
                    std::vector<AggSpec> aggregates);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override;
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<size_t> group_columns_;
  std::vector<AggSpec> aggs_;
  std::vector<Row> output_;
  size_t pos_ = 0;
};

}  // namespace estocada::engine

#endif  // ESTOCADA_ENGINE_OPERATOR_H_
