#ifndef ESTOCADA_ENGINE_OPERATOR_H_
#define ESTOCADA_ENGINE_OPERATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/batch.h"
#include "engine/compiled.h"
#include "engine/expr.h"
#include "engine/value.h"

namespace estocada::engine {

/// Physical operator of ESTOCADA's lightweight execution engine (the
/// paper's "Runtime Execution Engine" evaluating the non-delegated
/// operations over a nested relational model). Two pull interfaces share
/// one Open():
///
///  * Batch-at-a-time (the production path): Open(), then NextBatch()
///    until it returns false. Each true return delivers at least one row.
///  * Tuple-at-a-time (the original Volcano-style path, kept as the
///    internal debug oracle — see CollectTuples): Open(), then Next()
///    until nullopt.
///
/// The base-class NextBatch is a compatibility adapter that pulls rows
/// from Next(), so unconverted operators compose transparently with batch
/// parents; converted operators override it with vectorized loops and
/// keep their Next() implementation intact. One execution must drive an
/// operator through a single interface (both share Open-reset state), but
/// a batch parent over a tuple child — and vice versa — is fine.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  /// Next output row, or nullopt at end of stream.
  virtual Result<std::optional<Row>> Next() = 0;

  /// Next chunk of output rows: fills `out` (resetting it first) and
  /// returns true, or returns false at end of stream. A true return
  /// carries at least one logical row. Default implementation adapts
  /// Next() — override for a vectorized path.
  virtual Result<bool> NextBatch(RowBatch* out);

  /// Column names of the output (for plan display and name resolution).
  virtual std::vector<std::string> columns() const = 0;

  /// One-line operator description; trees render via PlanToString.
  virtual std::string label() const = 0;

  /// Children, for plan printing (borrowed pointers).
  virtual std::vector<const Operator*> children() const { return {}; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` into a vector via the batch interface (Open + NextBatch*).
Result<std::vector<Row>> Collect(Operator* op);

/// Drains `op` tuple-at-a-time (Open + Next*). The old execution funnel,
/// kept as the oracle for the batch-vs-tuple differential (TESTING.md) —
/// the engine analogue of the chase kernel's ForEachHomomorphismScan.
Result<std::vector<Row>> CollectTuples(Operator* op);

/// Indented multi-line rendering of an operator tree.
std::string PlanToString(const Operator& op, int indent = 0);

// --------------------------------------------------------------- Sources --

/// Materialized input (also the adapter for delegated store results:
/// the rewriting layer runs the native store query and wraps the rows).
class RowsOperator final : public Operator {
 public:
  RowsOperator(std::vector<std::string> columns, std::vector<Row> rows,
               std::string label = "rows");
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override { return columns_; }
  std::string label() const override;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  std::string label_;
  size_t pos_ = 0;
};

/// Lazily calls `fetch` at Open — this is how delegated subqueries reach
/// the underlying DMSs without the engine depending on the store APIs.
class CallbackScanOperator final : public Operator {
 public:
  using Fetch = std::function<Result<std::vector<Row>>()>;
  CallbackScanOperator(std::vector<std::string> columns, Fetch fetch,
                       std::string label);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override { return columns_; }
  std::string label() const override { return label_; }

 private:
  std::vector<std::string> columns_;
  Fetch fetch_;
  std::string label_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Streaming source for graph-store accesses: every NextBatch pulls one
/// page of rows from the store through `fetch` (paged neighbor expansion
/// / pattern match via GraphStore::MatchPage), so a large expansion is
/// never materialized inside the operator — the plan consumes it
/// batch-at-a-time straight off the adjacency indexes. The engine stays
/// store-agnostic: `fetch`/`reset` are closures the translator builds.
class GraphFetchOperator final : public Operator {
 public:
  /// Appends the next page of rows to `out` (already cleared); returns
  /// true while more pages may remain. A true return may carry zero rows
  /// (residual filtering ate the whole page) — the operator keeps
  /// pulling until rows arrive or the stream ends.
  using ChunkFetch = std::function<Result<bool>(std::vector<Row>* out)>;
  /// Restarts the store-side cursor; called by every Open.
  using ChunkReset = std::function<Status()>;

  GraphFetchOperator(std::vector<std::string> columns, ChunkReset reset,
                     ChunkFetch fetch, std::string label);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override { return columns_; }
  std::string label() const override { return label_; }

 private:
  /// Pulls pages until the buffer holds unserved rows or the stream ends.
  Status Refill();

  std::vector<std::string> columns_;
  ChunkReset reset_;
  ChunkFetch fetch_;
  std::string label_;
  std::vector<Row> buffer_;
  size_t pos_ = 0;
  bool done_ = false;
};

/// Scatter-gather source over a partitioned fragment: one fetch closure
/// per shard, all invoked at Open. With a `pool`, fetches fan out as
/// concurrent tasks — fetches sharing a `shard_key` (the backing store
/// instance) run sequentially inside one task, so a store's statistics
/// sink is never written from two threads at once; with a null pool all
/// fetches run inline. Results are concatenated in shard order, so the
/// output is deterministic regardless of completion order, and the first
/// failing shard (lowest index) fails the Open — a partitioned read
/// cannot answer soundly with a shard missing.
class ScatterGatherOperator final : public Operator {
 public:
  using Fetch = std::function<Result<std::vector<Row>>()>;
  ScatterGatherOperator(std::vector<std::string> columns,
                        std::vector<Fetch> shard_fetches,
                        std::vector<std::string> shard_keys, std::string label,
                        ThreadPool* pool);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override { return columns_; }
  std::string label() const override;

 private:
  std::vector<std::string> columns_;
  std::vector<Fetch> fetches_;
  std::vector<std::string> shard_keys_;
  std::string label_;
  ThreadPool* pool_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// ------------------------------------------------------- Unary operators --

class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr input, ExprPtr predicate);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  ExprPtr predicate_;
  RowBatch in_;
};

/// Projects/computes output columns from expressions.
class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr input, std::vector<std::string> names,
                  std::vector<ExprPtr> exprs);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override { return names_; }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<std::string> names_;
  std::vector<ExprPtr> exprs_;
  RowBatch in_;
  std::vector<uint32_t> sel_scratch_;
};

class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr input, size_t limit);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  size_t limit_;
  size_t produced_ = 0;
  RowBatch in_;
};

class DistinctOperator final : public Operator {
 public:
  explicit DistinctOperator(OperatorPtr input);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override { return "Distinct"; }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::unordered_map<Row, bool, RowHash> seen_;
  RowBatch in_;
};

/// Sorts by the given column positions (ascending; stable).
class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr input, std::vector<size_t> sort_columns);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<size_t> sort_columns_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// ------------------------------------------------------ Binary operators --

/// Classic build/probe hash equijoin on pairs of (left col, right col).
/// Output = left columns ++ right columns.
class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right,
                   std::vector<std::pair<size_t, size_t>> key_pairs);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override;
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  /// Tuple path: materializes `build_` from the drained build rows.
  void BuildTupleMap();
  /// Batch path: materializes the columnar build side + flat hash table,
  /// resolving the compiled per-arity key kernel.
  void BuildBatchTable();

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<std::pair<size_t, size_t>> key_pairs_;
  /// Build side as drained at Open; consumed by whichever path runs.
  std::vector<Row> build_rows_;
  // Tuple-path state.
  bool map_built_ = false;
  std::unordered_map<Row, std::vector<Row>, RowHash> build_;
  std::optional<Row> current_probe_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_pos_ = 0;
  // Batch-path state (compiled loop).
  bool table_built_ = false;
  RowBatch build_batch_;
  FlatJoinTable table_;
  std::vector<uint32_t> build_key_cols_;
  std::vector<uint32_t> probe_key_cols_;
  const KeyOps* key_ops_ = nullptr;
  RowBatch probe_;
};

/// The BindJoin of the paper: for each input row, extracts the values at
/// `bind_columns` and calls `fetch` with them — the closure performs a
/// native access-pattern-restricted call (a KV Get, an indexed lookup...).
/// Output = input columns ++ fetched columns. Results are memoized per
/// binding so repeated keys cost one call.
class BindJoinOperator final : public Operator {
 public:
  using Fetch = std::function<Result<std::vector<Row>>(const Row& binding)>;
  /// Batched fetch: one call covering several distinct bindings (a store
  /// MGet-style round trip); results are positional with `bindings`.
  using BatchFetch = std::function<Result<std::vector<std::vector<Row>>>(
      const std::vector<Row>& bindings)>;
  BindJoinOperator(OperatorPtr input, std::vector<size_t> bind_columns,
                   std::vector<std::string> fetched_columns, Fetch fetch,
                   std::string target_label);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override;
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

  /// Installs a batched fetch used by the batch path when an input chunk
  /// carries more than one distinct uncached binding. Optional — without
  /// it the batch path falls back to per-binding `fetch` calls.
  void set_batch_fetch(BatchFetch batch_fetch) {
    batch_fetch_ = std::move(batch_fetch);
  }

  /// Number of bindings actually fetched from the target (cache misses);
  /// a batched fetch covering k bindings counts k.
  size_t fetch_calls() const { return fetch_calls_; }

 private:
  OperatorPtr input_;
  std::vector<size_t> bind_columns_;
  std::vector<std::string> fetched_columns_;
  Fetch fetch_;
  BatchFetch batch_fetch_;
  std::string target_label_;
  std::unordered_map<Row, std::vector<Row>, RowHash> cache_;
  std::optional<Row> current_input_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_pos_ = 0;
  size_t fetch_calls_ = 0;
  RowBatch in_;
};

/// Bag union of inputs with identical arity.
class UnionAllOperator final : public Operator {
 public:
  explicit UnionAllOperator(std::vector<OperatorPtr> inputs);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  Result<bool> NextBatch(RowBatch* out) override;
  std::vector<std::string> columns() const override;
  std::string label() const override { return "UnionAll"; }
  std::vector<const Operator*> children() const override;

 private:
  std::vector<OperatorPtr> inputs_;
  size_t current_ = 0;
};

// ------------------------------------------------------ Nested / groups --

/// Groups by `group_columns` and nests each remaining column tuple into a
/// list value: output = group columns ++ one list column of nested rows
/// (each nested row itself a list). This is the engine-side construction
/// of nested results the paper describes for non-delegable operations.
class NestOperator final : public Operator {
 public:
  NestOperator(OperatorPtr input, std::vector<size_t> group_columns,
               std::string nested_column_name);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override;
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<size_t> group_columns_;
  std::string nested_name_;
  std::vector<Row> output_;
  size_t pos_ = 0;
};

/// Expands a list column into one output row per element (positions other
/// than `list_column` are copied; the list column is replaced with the
/// element).
class UnnestOperator final : public Operator {
 public:
  UnnestOperator(OperatorPtr input, size_t list_column);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override {
    return input_->columns();
  }
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  size_t list_column_;
  std::optional<Row> current_;
  size_t elem_pos_ = 0;
};

/// Aggregate functions of the grouping operator.
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFn fn;
  size_t column;  ///< Ignored for kCount.
  std::string output_name;
};

/// Hash group-by with the classic aggregate functions.
class AggregateOperator final : public Operator {
 public:
  AggregateOperator(OperatorPtr input, std::vector<size_t> group_columns,
                    std::vector<AggSpec> aggregates);
  Status Open() override;
  Result<std::optional<Row>> Next() override;
  std::vector<std::string> columns() const override;
  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<size_t> group_columns_;
  std::vector<AggSpec> aggs_;
  std::vector<Row> output_;
  size_t pos_ = 0;
};

}  // namespace estocada::engine

#endif  // ESTOCADA_ENGINE_OPERATOR_H_
