#ifndef ESTOCADA_ENGINE_VALUE_H_
#define ESTOCADA_ENGINE_VALUE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "json/json.h"
#include "pivot/term.h"

namespace estocada::engine {

/// Runtime value of the ESTOCADA execution engine's *nested relational*
/// model: atomic types (null/bool/int/real/string) plus ordered lists,
/// which represent both nested collections and nested tuples. Document
/// nodes travel as their JSON serialization or as node-id strings.
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kReal, kStr, kList };

  /// Default is SQL-style null.
  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value Str(std::string s);
  static Value List(std::vector<Value> items);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_real() const { return kind_ == Kind::kReal; }
  bool is_string() const { return kind_ == Kind::kStr; }
  bool is_list() const { return kind_ == Kind::kList; }

  bool bool_value() const;
  int64_t int_value() const;
  double real_value() const;
  /// Numeric value as double (int or real).
  double as_real() const;
  const std::string& string_value() const;
  const std::vector<Value>& list() const;
  std::vector<Value>& mutable_list();

  /// Total order: kind rank first, then content; ints and reals compare
  /// numerically against each other (1 == 1.0 here, unlike JSON — the
  /// engine follows SQL comparison semantics).
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

  size_t Hash() const;

  /// Display form: strings unquoted only inside ToString of scalars; lists
  /// as [a, b, c].
  std::string ToString() const;

  /// Conversions to/from the JSON model (JSON objects become key-sorted
  /// [[key, value], ...] pair lists) and the pivot constant model (lists
  /// serialize to JSON text; pivot has no collection constants).
  static Value FromJson(const json::JsonValue& j);
  json::JsonValue ToJson() const;
  static Value FromConstant(const pivot::Constant& c);
  pivot::Constant ToConstant() const;

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double real_ = 0;
  std::string str_;
  std::shared_ptr<std::vector<Value>> list_;
};

/// One tuple of the nested relational engine.
using Row = std::vector<Value>;

std::string RowToString(const Row& row);
std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHash {
  size_t operator()(const Row& r) const;
};

}  // namespace estocada::engine

#endif  // ESTOCADA_ENGINE_VALUE_H_
