#include "engine/expr.h"

#include "common/strings.h"

namespace estocada::engine {

std::shared_ptr<Expr> Expr::Column(size_t index) {
  auto e = std::make_shared<Expr>();
  e->op_ = Op::kColumn;
  e->column_ = index;
  return e;
}

std::shared_ptr<Expr> Expr::Const(Value v) {
  auto e = std::make_shared<Expr>();
  e->op_ = Op::kConst;
  e->value_ = std::move(v);
  return e;
}

std::shared_ptr<Expr> Expr::Binary(Op op, std::shared_ptr<Expr> l,
                                   std::shared_ptr<Expr> r) {
  auto e = std::make_shared<Expr>();
  e->op_ = op;
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

std::shared_ptr<Expr> Expr::Not(std::shared_ptr<Expr> inner) {
  auto e = std::make_shared<Expr>();
  e->op_ = Op::kNot;
  e->left_ = std::move(inner);
  return e;
}

Result<Value> Expr::Eval(const Row& row) const {
  switch (op_) {
    case Op::kColumn:
      if (column_ >= row.size()) {
        return Status::OutOfRange(
            StrCat("column ", column_, " out of range (row has ", row.size(),
                   ")"));
      }
      return row[column_];
    case Op::kConst:
      return value_;
    case Op::kNot: {
      ESTOCADA_ASSIGN_OR_RETURN(bool b, left_->EvalBool(row));
      return Value::Bool(!b);
    }
    default:
      break;
  }
  ESTOCADA_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  ESTOCADA_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  switch (op_) {
    case Op::kAnd:
    case Op::kOr: {
      bool lb = l.is_bool() ? l.bool_value() : !l.is_null();
      bool rb = r.is_bool() ? r.bool_value() : !r.is_null();
      return Value::Bool(op_ == Op::kAnd ? (lb && rb) : (lb || rb));
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      if (l.is_null() || r.is_null()) return Value::Bool(false);
      int c = Value::Compare(l, r);
      switch (op_) {
        case Op::kEq:
          return Value::Bool(c == 0);
        case Op::kNe:
          return Value::Bool(c != 0);
        case Op::kLt:
          return Value::Bool(c < 0);
        case Op::kLe:
          return Value::Bool(c <= 0);
        case Op::kGt:
          return Value::Bool(c > 0);
        default:
          return Value::Bool(c >= 0);
      }
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv: {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (op_ == Op::kAdd && l.is_string() && r.is_string()) {
        return Value::Str(l.string_value() + r.string_value());
      }
      if (!(l.is_int() || l.is_real()) || !(r.is_int() || r.is_real())) {
        return Status::InvalidArgument(
            StrCat("arithmetic on non-numeric values: ", l.ToString(), ", ",
                   r.ToString()));
      }
      if (l.is_int() && r.is_int() && op_ != Op::kDiv) {
        int64_t a = l.int_value();
        int64_t b = r.int_value();
        switch (op_) {
          case Op::kAdd:
            return Value::Int(a + b);
          case Op::kSub:
            return Value::Int(a - b);
          default:
            return Value::Int(a * b);
        }
      }
      double a = l.as_real();
      double b = r.as_real();
      switch (op_) {
        case Op::kAdd:
          return Value::Real(a + b);
        case Op::kSub:
          return Value::Real(a - b);
        case Op::kMul:
          return Value::Real(a * b);
        default:
          if (b == 0) {
            return Status::InvalidArgument("division by zero");
          }
          return Value::Real(a / b);
      }
    }
    default:
      return Status::Internal("unhandled expression operator");
  }
}

Result<bool> Expr::EvalBool(const Row& row) const {
  ESTOCADA_ASSIGN_OR_RETURN(Value v, Eval(row));
  if (v.is_null()) return false;
  if (v.is_bool()) return v.bool_value();
  return true;  // Non-null non-bool is truthy.
}

std::string Expr::ToString() const {
  switch (op_) {
    case Op::kColumn:
      return StrCat("$", column_);
    case Op::kConst:
      return value_.ToString();
    case Op::kNot:
      return StrCat("NOT(", left_->ToString(), ")");
    default:
      break;
  }
  const char* sym = "?";
  switch (op_) {
    case Op::kEq: sym = "="; break;
    case Op::kNe: sym = "!="; break;
    case Op::kLt: sym = "<"; break;
    case Op::kLe: sym = "<="; break;
    case Op::kGt: sym = ">"; break;
    case Op::kGe: sym = ">="; break;
    case Op::kAnd: sym = "AND"; break;
    case Op::kOr: sym = "OR"; break;
    case Op::kAdd: sym = "+"; break;
    case Op::kSub: sym = "-"; break;
    case Op::kMul: sym = "*"; break;
    case Op::kDiv: sym = "/"; break;
    default: break;
  }
  return StrCat("(", left_->ToString(), " ", sym, " ", right_->ToString(),
                ")");
}

}  // namespace estocada::engine
