#include "engine/expr.h"

#include "common/strings.h"

namespace estocada::engine {

std::shared_ptr<Expr> Expr::Column(size_t index) {
  auto e = std::make_shared<Expr>();
  e->op_ = Op::kColumn;
  e->column_ = index;
  return e;
}

std::shared_ptr<Expr> Expr::Const(Value v) {
  auto e = std::make_shared<Expr>();
  e->op_ = Op::kConst;
  e->value_ = std::move(v);
  return e;
}

std::shared_ptr<Expr> Expr::Binary(Op op, std::shared_ptr<Expr> l,
                                   std::shared_ptr<Expr> r) {
  auto e = std::make_shared<Expr>();
  e->op_ = op;
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

std::shared_ptr<Expr> Expr::Not(std::shared_ptr<Expr> inner) {
  auto e = std::make_shared<Expr>();
  e->op_ = Op::kNot;
  e->left_ = std::move(inner);
  return e;
}

Result<Value> Expr::Eval(const Row& row) const {
  switch (op_) {
    case Op::kColumn:
      if (column_ >= row.size()) {
        return Status::OutOfRange(
            StrCat("column ", column_, " out of range (row has ", row.size(),
                   ")"));
      }
      return row[column_];
    case Op::kConst:
      return value_;
    case Op::kNot: {
      ESTOCADA_ASSIGN_OR_RETURN(bool b, left_->EvalBool(row));
      return Value::Bool(!b);
    }
    default:
      break;
  }
  ESTOCADA_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  ESTOCADA_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  switch (op_) {
    case Op::kAnd:
    case Op::kOr: {
      bool lb = l.is_bool() ? l.bool_value() : !l.is_null();
      bool rb = r.is_bool() ? r.bool_value() : !r.is_null();
      return Value::Bool(op_ == Op::kAnd ? (lb && rb) : (lb || rb));
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      if (l.is_null() || r.is_null()) return Value::Bool(false);
      int c = Value::Compare(l, r);
      switch (op_) {
        case Op::kEq:
          return Value::Bool(c == 0);
        case Op::kNe:
          return Value::Bool(c != 0);
        case Op::kLt:
          return Value::Bool(c < 0);
        case Op::kLe:
          return Value::Bool(c <= 0);
        case Op::kGt:
          return Value::Bool(c > 0);
        default:
          return Value::Bool(c >= 0);
      }
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv: {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (op_ == Op::kAdd && l.is_string() && r.is_string()) {
        return Value::Str(l.string_value() + r.string_value());
      }
      if (!(l.is_int() || l.is_real()) || !(r.is_int() || r.is_real())) {
        return Status::InvalidArgument(
            StrCat("arithmetic on non-numeric values: ", l.ToString(), ", ",
                   r.ToString()));
      }
      if (l.is_int() && r.is_int() && op_ != Op::kDiv) {
        int64_t a = l.int_value();
        int64_t b = r.int_value();
        switch (op_) {
          case Op::kAdd:
            return Value::Int(a + b);
          case Op::kSub:
            return Value::Int(a - b);
          default:
            return Value::Int(a * b);
        }
      }
      double a = l.as_real();
      double b = r.as_real();
      switch (op_) {
        case Op::kAdd:
          return Value::Real(a + b);
        case Op::kSub:
          return Value::Real(a - b);
        case Op::kMul:
          return Value::Real(a * b);
        default:
          if (b == 0) {
            return Status::InvalidArgument("division by zero");
          }
          return Value::Real(a / b);
      }
    }
    default:
      return Status::Internal("unhandled expression operator");
  }
}

Result<bool> Expr::EvalBool(const Row& row) const {
  ESTOCADA_ASSIGN_OR_RETURN(Value v, Eval(row));
  if (v.is_null()) return false;
  if (v.is_bool()) return v.bool_value();
  return true;  // Non-null non-bool is truthy.
}

namespace {

/// Materializes physical row `p` of `batch` into `scratch` (reused across
/// the fallback loop so the allocation amortizes).
void GatherRow(const RowBatch& batch, uint32_t p, Row* scratch) {
  scratch->clear();
  for (size_t c = 0; c < batch.arity(); ++c) {
    scratch->push_back(batch.column(c)[p]);
  }
}

bool CompareKeeps(Expr::Op op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return false;
  int c = Value::Compare(l, r);
  switch (op) {
    case Expr::Op::kEq: return c == 0;
    case Expr::Op::kNe: return c != 0;
    case Expr::Op::kLt: return c < 0;
    case Expr::Op::kLe: return c <= 0;
    case Expr::Op::kGt: return c > 0;
    default: return c >= 0;
  }
}

}  // namespace

Status Expr::FilterBatch(const RowBatch& batch,
                         std::vector<uint32_t>* sel) const {
  if (sel->empty()) return Status::OK();
  switch (op_) {
    case Op::kAnd: {
      ESTOCADA_RETURN_NOT_OK(left_->FilterBatch(batch, sel));
      return right_->FilterBatch(batch, sel);
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      const bool l_col = left_->op_ == Op::kColumn;
      const bool r_col = right_->op_ == Op::kColumn;
      const bool l_const = left_->op_ == Op::kConst;
      const bool r_const = right_->op_ == Op::kConst;
      if ((l_col || l_const) && (r_col || r_const)) {
        if ((l_col && left_->column_ >= batch.arity()) ||
            (r_col && right_->column_ >= batch.arity())) {
          return Status::OutOfRange(
              StrCat("column out of range in predicate ", ToString()));
        }
        const std::vector<Value>* lc =
            l_col ? &batch.column(left_->column_) : nullptr;
        const std::vector<Value>* rc =
            r_col ? &batch.column(right_->column_) : nullptr;
        size_t kept = 0;
        for (uint32_t p : *sel) {
          const Value& l = lc ? (*lc)[p] : left_->value_;
          const Value& r = rc ? (*rc)[p] : right_->value_;
          if (CompareKeeps(op_, l, r)) (*sel)[kept++] = p;
        }
        sel->resize(kept);
        return Status::OK();
      }
      break;
    }
    default:
      break;
  }
  // Fallback: identical semantics to the tuple path, row at a time.
  Row scratch;
  scratch.reserve(batch.arity());
  size_t kept = 0;
  for (uint32_t p : *sel) {
    GatherRow(batch, p, &scratch);
    ESTOCADA_ASSIGN_OR_RETURN(bool keep, EvalBool(scratch));
    if (keep) (*sel)[kept++] = p;
  }
  sel->resize(kept);
  return Status::OK();
}

Status Expr::EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                       std::vector<Value>* out) const {
  out->clear();
  out->reserve(sel.size());
  switch (op_) {
    case Op::kColumn: {
      if (column_ >= batch.arity()) {
        return Status::OutOfRange(StrCat("column ", column_,
                                         " out of range (batch has ",
                                         batch.arity(), ")"));
      }
      const std::vector<Value>& col = batch.column(column_);
      for (uint32_t p : sel) out->push_back(col[p]);
      return Status::OK();
    }
    case Op::kConst: {
      for (size_t i = 0; i < sel.size(); ++i) out->push_back(value_);
      return Status::OK();
    }
    default:
      break;
  }
  Row scratch;
  scratch.reserve(batch.arity());
  for (uint32_t p : sel) {
    GatherRow(batch, p, &scratch);
    ESTOCADA_ASSIGN_OR_RETURN(Value v, Eval(scratch));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

std::string Expr::ToString() const {
  switch (op_) {
    case Op::kColumn:
      return StrCat("$", column_);
    case Op::kConst:
      return value_.ToString();
    case Op::kNot:
      return StrCat("NOT(", left_->ToString(), ")");
    default:
      break;
  }
  const char* sym = "?";
  switch (op_) {
    case Op::kEq: sym = "="; break;
    case Op::kNe: sym = "!="; break;
    case Op::kLt: sym = "<"; break;
    case Op::kLe: sym = "<="; break;
    case Op::kGt: sym = ">"; break;
    case Op::kGe: sym = ">="; break;
    case Op::kAnd: sym = "AND"; break;
    case Op::kOr: sym = "OR"; break;
    case Op::kAdd: sym = "+"; break;
    case Op::kSub: sym = "-"; break;
    case Op::kMul: sym = "*"; break;
    case Op::kDiv: sym = "/"; break;
    default: break;
  }
  return StrCat("(", left_->ToString(), " ", sym, " ", right_->ToString(),
                ")");
}

}  // namespace estocada::engine
