#include "engine/compiled.h"

namespace estocada::engine {

namespace {

inline uint64_t MixHash(uint64_t seed, uint64_t h) {
  // boost::hash_combine-style mixing, matching RowHash's shape so compiled
  // and tuple paths agree on distribution (not on exact values — only the
  // compiled path consumes these hashes).
  return seed ^ (h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// Arity-templated kernel: the loop unrolls at compile time for the small
/// arities every translator-produced join uses (1 and 2 cover the
/// marketplace and generated workloads; 3 and 4 exist for headroom).
template <size_t A>
struct FixedKeyOps {
  static uint64_t Hash(const RowBatch& batch, const uint32_t* cols,
                       size_t /*arity*/, uint32_t row) {
    uint64_t h = 0;
    for (size_t k = 0; k < A; ++k) {
      h = MixHash(h, batch.column(cols[k])[row].Hash());
    }
    return h;
  }
  static bool Equals(const RowBatch& a, const uint32_t* a_cols, uint32_t a_row,
                     const RowBatch& b, const uint32_t* b_cols,
                     size_t /*arity*/, uint32_t b_row) {
    for (size_t k = 0; k < A; ++k) {
      if (Value::Compare(a.column(a_cols[k])[a_row],
                         b.column(b_cols[k])[b_row]) != 0) {
        return false;
      }
    }
    return true;
  }
};

struct GenericKeyOps {
  static uint64_t Hash(const RowBatch& batch, const uint32_t* cols,
                       size_t arity, uint32_t row) {
    uint64_t h = 0;
    for (size_t k = 0; k < arity; ++k) {
      h = MixHash(h, batch.column(cols[k])[row].Hash());
    }
    return h;
  }
  static bool Equals(const RowBatch& a, const uint32_t* a_cols, uint32_t a_row,
                     const RowBatch& b, const uint32_t* b_cols, size_t arity,
                     uint32_t b_row) {
    for (size_t k = 0; k < arity; ++k) {
      if (Value::Compare(a.column(a_cols[k])[a_row],
                         b.column(b_cols[k])[b_row]) != 0) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

const KeyOps& CompiledKeyOps(size_t arity) {
  static const KeyOps kTable[] = {
      {&GenericKeyOps::Hash, &GenericKeyOps::Equals},  // arity 0 (degenerate)
      {&FixedKeyOps<1>::Hash, &FixedKeyOps<1>::Equals},
      {&FixedKeyOps<2>::Hash, &FixedKeyOps<2>::Equals},
      {&FixedKeyOps<3>::Hash, &FixedKeyOps<3>::Equals},
      {&FixedKeyOps<4>::Hash, &FixedKeyOps<4>::Equals},
  };
  static const KeyOps kGeneric = {&GenericKeyOps::Hash, &GenericKeyOps::Equals};
  return arity < sizeof(kTable) / sizeof(kTable[0]) ? kTable[arity] : kGeneric;
}

void FlatJoinTable::Reset(size_t n) {
  size_t buckets = 16;
  while (buckets * 7 < n * 10) buckets <<= 1;  // keep load factor ≤ 0.7
  slots_.assign(buckets, Slot{});
  next_.clear();
  mask_ = buckets - 1;
  entries_ = 0;
}

void FlatJoinTable::Insert(uint64_t hash, uint32_t row_index) {
  if (next_.size() <= row_index) next_.resize(row_index + 1, kNone);
  next_[row_index] = kNone;
  size_t i = static_cast<size_t>(hash) & mask_;
  for (;;) {
    Slot& s = slots_[i];
    if (s.head == kNone) {
      s.hash = hash;
      s.head = s.tail = row_index;
      ++entries_;
      return;
    }
    if (s.hash == hash) {
      next_[s.tail] = row_index;
      s.tail = row_index;
      ++entries_;
      return;
    }
    i = (i + 1) & mask_;
  }
}

uint32_t FlatJoinTable::Head(uint64_t hash) const {
  if (slots_.empty()) return kNone;
  size_t i = static_cast<size_t>(hash) & mask_;
  for (;;) {
    const Slot& s = slots_[i];
    if (s.head == kNone) return kNone;
    if (s.hash == hash) return s.head;
    i = (i + 1) & mask_;
  }
}

}  // namespace estocada::engine
