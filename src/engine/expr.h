#ifndef ESTOCADA_ENGINE_EXPR_H_
#define ESTOCADA_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/batch.h"
#include "engine/value.h"

namespace estocada::engine {

/// Scalar expression over a row: column references (by position), literal
/// constants, comparisons, boolean connectives and basic arithmetic.
/// Evaluated against `Row`s by the Filter/Project/Aggregate operators.
class Expr {
 public:
  enum class Op {
    kColumn,   ///< row[index]
    kConst,    ///< literal
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAnd, kOr, kNot,
    kAdd, kSub, kMul, kDiv,
  };

  static std::shared_ptr<Expr> Column(size_t index);
  static std::shared_ptr<Expr> Const(Value v);
  static std::shared_ptr<Expr> Binary(Op op, std::shared_ptr<Expr> l,
                                      std::shared_ptr<Expr> r);
  static std::shared_ptr<Expr> Not(std::shared_ptr<Expr> e);

  /// Evaluates against `row`. Comparisons on null yield false (SQL-ish);
  /// arithmetic on null yields null. Type errors are reported.
  Result<Value> Eval(const Row& row) const;

  /// Evaluates and coerces to bool (null/absent → false).
  Result<bool> EvalBool(const Row& row) const;

  /// Vectorized predicate: narrows `sel` (ascending physical row indices
  /// into `batch`) to the rows where this expression is truthy. The common
  /// translator shapes — comparisons between columns and constants, and
  /// conjunctions of them — run as tight loops over the column vectors;
  /// anything else falls back to per-row Eval with identical semantics.
  Status FilterBatch(const RowBatch& batch, std::vector<uint32_t>* sel) const;

  /// Vectorized evaluation: one output value per index in `sel`. Column
  /// references copy straight out of the batch column; constants
  /// broadcast; compound expressions fall back to per-row Eval.
  Status EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                   std::vector<Value>* out) const;

  Op op() const { return op_; }
  size_t column_index() const { return column_; }

  std::string ToString() const;

 private:
  Op op_ = Op::kConst;
  size_t column_ = 0;
  Value value_;
  std::shared_ptr<Expr> left_;
  std::shared_ptr<Expr> right_;
};

using ExprPtr = std::shared_ptr<Expr>;

}  // namespace estocada::engine

#endif  // ESTOCADA_ENGINE_EXPR_H_
