#include "engine/batch.h"

#include <utility>

namespace estocada::engine {

void RowBatch::Reset(size_t arity) {
  columns_.resize(arity);
  for (std::vector<Value>& c : columns_) c.clear();
  physical_rows_ = 0;
  sel_.clear();
  has_sel_ = false;
}

void RowBatch::AppendRow(const Row& row) {
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].push_back(row[c]);
  ++physical_rows_;
}

void RowBatch::AppendRow(Row&& row) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++physical_rows_;
}

Row RowBatch::MaterializeRow(size_t i) const {
  const uint32_t p = ActiveIndex(i);
  Row out;
  out.reserve(columns_.size());
  for (const std::vector<Value>& c : columns_) out.push_back(c[p]);
  return out;
}

void RowBatch::AppendRowsTo(std::vector<Row>* out) const {
  const size_t n = size();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = ActiveIndex(i);
    Row row;
    row.reserve(columns_.size());
    for (const std::vector<Value>& c : columns_) row.push_back(c[p]);
    out->push_back(std::move(row));
  }
}

void RowBatch::Compact() {
  if (!has_sel_) return;
  for (std::vector<Value>& col : columns_) {
    std::vector<Value> packed;
    packed.reserve(sel_.size());
    for (uint32_t p : sel_) packed.push_back(std::move(col[p]));
    col = std::move(packed);
  }
  physical_rows_ = sel_.size();
  sel_.clear();
  has_sel_ = false;
}

}  // namespace estocada::engine
