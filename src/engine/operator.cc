#include "engine/operator.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/strings.h"

namespace estocada::engine {

Result<std::vector<Row>> Collect(Operator* op) {
  ESTOCADA_RETURN_NOT_OK(op->Open());
  std::vector<Row> out;
  RowBatch batch;
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(bool more, op->NextBatch(&batch));
    if (!more) break;
    batch.AppendRowsTo(&out);
  }
  return out;
}

Result<std::vector<Row>> CollectTuples(Operator* op) {
  ESTOCADA_RETURN_NOT_OK(op->Open());
  std::vector<Row> out;
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(std::optional<Row> row, op->Next());
    if (!row.has_value()) break;
    out.push_back(std::move(*row));
  }
  return out;
}

Result<bool> Operator::NextBatch(RowBatch* out) {
  // Compatibility adapter: chunk the tuple stream of an unconverted
  // operator. The first row decides the arity (some legacy operators
  // report columns() lazily or loosely).
  out->Reset(columns().size());
  for (size_t i = 0; i < RowBatch::kDefaultRows; ++i) {
    ESTOCADA_ASSIGN_OR_RETURN(std::optional<Row> row, Next());
    if (!row.has_value()) break;
    if (out->physical_rows() == 0 && row->size() != out->arity()) {
      out->Reset(row->size());
    }
    out->AppendRow(std::move(*row));
  }
  return !out->empty();
}

namespace {

/// Emits rows [*pos, *pos + kDefaultRows) of `rows` as one column-major
/// chunk; advances *pos. The shared source loop of the materialized-input
/// operators. `may_move` moves values out of `rows` (safe when Open
/// refetches them).
bool EmitSlice(std::vector<Row>& rows, size_t* pos, size_t fallback_arity,
               bool may_move, RowBatch* out) {
  if (*pos >= rows.size()) {
    out->Reset(fallback_arity);
    return false;
  }
  const size_t end = std::min(rows.size(), *pos + RowBatch::kDefaultRows);
  const size_t arity = rows[*pos].size();
  out->Reset(arity);
  for (size_t c = 0; c < arity; ++c) {
    out->column(c).reserve(end - *pos);
  }
  for (size_t i = *pos; i < end; ++i) {
    Row& row = rows[i];
    for (size_t c = 0; c < arity; ++c) {
      if (may_move) {
        out->column(c).push_back(std::move(row[c]));
      } else {
        out->column(c).push_back(row[c]);
      }
    }
  }
  out->SetPhysicalRows(end - *pos);
  *pos = end;
  return true;
}

}  // namespace

std::string PlanToString(const Operator& op, int indent) {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += op.label();
  out += "\n";
  for (const Operator* child : op.children()) {
    out += PlanToString(*child, indent + 1);
  }
  return out;
}

// --------------------------------------------------------------- Sources --

RowsOperator::RowsOperator(std::vector<std::string> columns,
                           std::vector<Row> rows, std::string label)
    : columns_(std::move(columns)),
      rows_(std::move(rows)),
      label_(std::move(label)) {}

Status RowsOperator::Open() {
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Row>> RowsOperator::Next() {
  if (pos_ >= rows_.size()) return std::optional<Row>();
  return std::optional<Row>(rows_[pos_++]);
}

Result<bool> RowsOperator::NextBatch(RowBatch* out) {
  // Copy, not move: RowsOperator re-serves the same rows after re-Open.
  return EmitSlice(rows_, &pos_, columns_.size(), /*may_move=*/false, out);
}

std::string RowsOperator::label() const {
  return StrCat(label_, " [", rows_.size(), " rows]");
}

CallbackScanOperator::CallbackScanOperator(std::vector<std::string> columns,
                                           Fetch fetch, std::string label)
    : columns_(std::move(columns)),
      fetch_(std::move(fetch)),
      label_(std::move(label)) {}

Status CallbackScanOperator::Open() {
  ESTOCADA_ASSIGN_OR_RETURN(rows_, fetch_());
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Row>> CallbackScanOperator::Next() {
  if (pos_ >= rows_.size()) return std::optional<Row>();
  return std::optional<Row>(rows_[pos_++]);
}

Result<bool> CallbackScanOperator::NextBatch(RowBatch* out) {
  // Open refetches, so the fetched rows can be moved out.
  return EmitSlice(rows_, &pos_, columns_.size(), /*may_move=*/true, out);
}

GraphFetchOperator::GraphFetchOperator(std::vector<std::string> columns,
                                       ChunkReset reset, ChunkFetch fetch,
                                       std::string label)
    : columns_(std::move(columns)),
      reset_(std::move(reset)),
      fetch_(std::move(fetch)),
      label_(std::move(label)) {}

Status GraphFetchOperator::Open() {
  buffer_.clear();
  pos_ = 0;
  done_ = false;
  return reset_();
}

Status GraphFetchOperator::Refill() {
  while (!done_ && pos_ >= buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
    ESTOCADA_ASSIGN_OR_RETURN(bool more, fetch_(&buffer_));
    if (!more) done_ = true;
  }
  return Status::OK();
}

Result<std::optional<Row>> GraphFetchOperator::Next() {
  ESTOCADA_RETURN_NOT_OK(Refill());
  if (pos_ >= buffer_.size()) return std::optional<Row>();
  return std::optional<Row>(buffer_[pos_++]);
}

Result<bool> GraphFetchOperator::NextBatch(RowBatch* out) {
  ESTOCADA_RETURN_NOT_OK(Refill());
  // One store page per batch; rows can be moved (Open resets the cursor).
  return EmitSlice(buffer_, &pos_, columns_.size(), /*may_move=*/true, out);
}

ScatterGatherOperator::ScatterGatherOperator(std::vector<std::string> columns,
                                             std::vector<Fetch> shard_fetches,
                                             std::vector<std::string> shard_keys,
                                             std::string label,
                                             ThreadPool* pool)
    : columns_(std::move(columns)),
      fetches_(std::move(shard_fetches)),
      shard_keys_(std::move(shard_keys)),
      label_(std::move(label)),
      pool_(pool) {}

Status ScatterGatherOperator::Open() {
  rows_.clear();
  pos_ = 0;
  const size_t n = fetches_.size();
  std::vector<std::vector<Row>> parts(n);
  std::vector<Status> statuses(n, Status::OK());
  auto run_one = [&](size_t i) {
    Result<std::vector<Row>> r = fetches_[i]();
    if (r.ok()) {
      parts[i] = std::move(*r);
    } else {
      statuses[i] = r.status();
    }
  };
  if (pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // One task per backing instance: shard fetches that share a store run
    // back to back inside it, so no store-side statistics sink is ever
    // written concurrently.
    std::map<std::string, std::vector<size_t>> by_key;
    for (size_t i = 0; i < n; ++i) {
      by_key[i < shard_keys_.size() ? shard_keys_[i] : StrCat("#", i)]
          .push_back(i);
    }
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
    const size_t tasks = by_key.size();
    for (const auto& [key, idxs] : by_key) {
      std::vector<size_t> mine = idxs;
      pool_->Submit([&run_one, &mu, &cv, &done, mine]() {
        for (size_t i : mine) run_one(i);
        // Notify while holding the lock: Open's stack frame (and with it
        // `cv`) may unwind the moment the waiter sees done == tasks, so an
        // unlocked notify_one could signal a destroyed condvar.
        std::lock_guard<std::mutex> lock(mu);
        ++done;
        cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == tasks; });
  }
  // Aggregate every failing shard into one status (first shard's code):
  // a partitioned read cannot answer soundly with any shard missing, and
  // keeping every failing store's name in the message lets the caller's
  // failure attribution mark all of them down in a single attempt instead
  // of rediscovering them one retry at a time.
  size_t failed = 0;
  std::string combined;
  StatusCode code = StatusCode::kOk;
  for (size_t i = 0; i < n; ++i) {
    if (statuses[i].ok()) continue;
    if (failed == 0) code = statuses[i].code();
    combined += (failed ? "; " : "") + statuses[i].message();
    ++failed;
  }
  if (failed > 0) {
    if (failed == 1) return Status(code, std::move(combined));
    return Status(code, StrCat(failed, " shards failed: ", combined));
  }
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  rows_.reserve(total);
  for (auto& p : parts) {
    rows_.insert(rows_.end(), std::make_move_iterator(p.begin()),
                 std::make_move_iterator(p.end()));
  }
  return Status::OK();
}

Result<std::optional<Row>> ScatterGatherOperator::Next() {
  if (pos_ >= rows_.size()) return std::optional<Row>();
  return std::optional<Row>(rows_[pos_++]);
}

Result<bool> ScatterGatherOperator::NextBatch(RowBatch* out) {
  // Open re-runs the shard fetches, so the gathered rows can be moved.
  return EmitSlice(rows_, &pos_, columns_.size(), /*may_move=*/true, out);
}

std::string ScatterGatherOperator::label() const {
  return StrCat(label_, " [", fetches_.size(), " shards]");
}

// ------------------------------------------------------- Unary operators --

FilterOperator::FilterOperator(OperatorPtr input, ExprPtr predicate)
    : input_(std::move(input)), predicate_(std::move(predicate)) {}

Status FilterOperator::Open() { return input_->Open(); }

Result<std::optional<Row>> FilterOperator::Next() {
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
    if (!row.has_value()) return std::optional<Row>();
    ESTOCADA_ASSIGN_OR_RETURN(bool keep, predicate_->EvalBool(*row));
    if (keep) return row;
  }
}

Result<bool> FilterOperator::NextBatch(RowBatch* out) {
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&in_));
    if (!more) {
      out->Reset(in_.arity());
      return false;
    }
    std::vector<uint32_t> sel;
    if (in_.has_selection()) {
      sel = in_.selection();
    } else {
      sel.reserve(in_.physical_rows());
      for (size_t i = 0; i < in_.physical_rows(); ++i) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    ESTOCADA_RETURN_NOT_OK(predicate_->FilterBatch(in_, &sel));
    if (sel.empty()) continue;  // whole chunk dropped; pull the next one
    *out = std::move(in_);
    out->SetSelection(std::move(sel));
    return true;
  }
}

std::string FilterOperator::label() const {
  return StrCat("Filter ", predicate_->ToString());
}

ProjectOperator::ProjectOperator(OperatorPtr input,
                                 std::vector<std::string> names,
                                 std::vector<ExprPtr> exprs)
    : input_(std::move(input)),
      names_(std::move(names)),
      exprs_(std::move(exprs)) {}

Status ProjectOperator::Open() {
  if (names_.size() != exprs_.size()) {
    return Status::InvalidArgument("Project: name/expr count mismatch");
  }
  return input_->Open();
}

Result<std::optional<Row>> ProjectOperator::Next() {
  ESTOCADA_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
  if (!row.has_value()) return std::optional<Row>();
  Row out;
  out.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    ESTOCADA_ASSIGN_OR_RETURN(Value v, e->Eval(*row));
    out.push_back(std::move(v));
  }
  return std::optional<Row>(std::move(out));
}

Result<bool> ProjectOperator::NextBatch(RowBatch* out) {
  ESTOCADA_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&in_));
  if (!more) {
    out->Reset(exprs_.size());
    return false;
  }
  sel_scratch_.clear();
  if (in_.has_selection()) {
    sel_scratch_ = in_.selection();
  } else {
    sel_scratch_.reserve(in_.physical_rows());
    for (size_t i = 0; i < in_.physical_rows(); ++i) {
      sel_scratch_.push_back(static_cast<uint32_t>(i));
    }
  }
  out->Reset(exprs_.size());
  for (size_t c = 0; c < exprs_.size(); ++c) {
    ESTOCADA_RETURN_NOT_OK(
        exprs_[c]->EvalBatch(in_, sel_scratch_, &out->column(c)));
  }
  out->SetPhysicalRows(sel_scratch_.size());
  return true;
}

std::string ProjectOperator::label() const {
  return StrCat("Project [", StrJoin(names_, ", "), "]");
}

LimitOperator::LimitOperator(OperatorPtr input, size_t limit)
    : input_(std::move(input)), limit_(limit) {}

Status LimitOperator::Open() {
  produced_ = 0;
  return input_->Open();
}

Result<std::optional<Row>> LimitOperator::Next() {
  if (produced_ >= limit_) return std::optional<Row>();
  ESTOCADA_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
  if (row.has_value()) ++produced_;
  return row;
}

Result<bool> LimitOperator::NextBatch(RowBatch* out) {
  if (produced_ >= limit_) {
    out->Reset(0);
    return false;
  }
  ESTOCADA_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&in_));
  if (!more) {
    out->Reset(in_.arity());
    return false;
  }
  const size_t want = limit_ - produced_;
  if (in_.size() > want) {
    std::vector<uint32_t> sel;
    sel.reserve(want);
    for (size_t i = 0; i < want; ++i) sel.push_back(in_.ActiveIndex(i));
    in_.SetSelection(std::move(sel));
  }
  produced_ += in_.size();
  *out = std::move(in_);
  return true;
}

std::string LimitOperator::label() const { return StrCat("Limit ", limit_); }

DistinctOperator::DistinctOperator(OperatorPtr input)
    : input_(std::move(input)) {}

Status DistinctOperator::Open() {
  seen_.clear();
  return input_->Open();
}

Result<std::optional<Row>> DistinctOperator::Next() {
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
    if (!row.has_value()) return std::optional<Row>();
    if (seen_.emplace(*row, true).second) return row;
  }
}

Result<bool> DistinctOperator::NextBatch(RowBatch* out) {
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&in_));
    if (!more) {
      out->Reset(in_.arity());
      return false;
    }
    std::vector<uint32_t> keep;
    const size_t n = in_.size();
    for (size_t i = 0; i < n; ++i) {
      if (seen_.emplace(in_.MaterializeRow(i), true).second) {
        keep.push_back(in_.ActiveIndex(i));
      }
    }
    if (keep.empty()) continue;  // all duplicates; pull the next chunk
    *out = std::move(in_);
    out->SetSelection(std::move(keep));
    return true;
  }
}

SortOperator::SortOperator(OperatorPtr input, std::vector<size_t> sort_columns)
    : input_(std::move(input)), sort_columns_(std::move(sort_columns)) {}

Status SortOperator::Open() {
  ESTOCADA_ASSIGN_OR_RETURN(rows_, Collect(input_.get()));
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (size_t c : sort_columns_) {
                       int cmp = Value::Compare(a[c], b[c]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Row>> SortOperator::Next() {
  if (pos_ >= rows_.size()) return std::optional<Row>();
  return std::optional<Row>(rows_[pos_++]);
}

std::string SortOperator::label() const {
  return StrCat("Sort [", StrJoin(sort_columns_, ", "), "]");
}

// ------------------------------------------------------ Binary operators --

HashJoinOperator::HashJoinOperator(
    OperatorPtr left, OperatorPtr right,
    std::vector<std::pair<size_t, size_t>> key_pairs)
    : left_(std::move(left)),
      right_(std::move(right)),
      key_pairs_(std::move(key_pairs)) {}

std::vector<std::string> HashJoinOperator::columns() const {
  std::vector<std::string> out = left_->columns();
  for (const std::string& c : right_->columns()) out.push_back(c);
  return out;
}

std::string HashJoinOperator::label() const {
  return StrCat("HashJoin [",
                StrJoinMapped(key_pairs_, ", ",
                              [](const std::pair<size_t, size_t>& p) {
                                return StrCat("l", p.first, "=r", p.second);
                              }),
                "]");
}

Status HashJoinOperator::Open() {
  build_.clear();
  map_built_ = false;
  table_built_ = false;
  current_probe_.reset();
  current_matches_ = nullptr;
  match_pos_ = 0;
  // Drain the build (left) input once; the structure over it — Row-keyed
  // map for the tuple path, columnar batch + compiled flat table for the
  // batch path — materializes lazily on first Next()/NextBatch().
  ESTOCADA_ASSIGN_OR_RETURN(build_rows_, Collect(left_.get()));
  return right_->Open();
}

void HashJoinOperator::BuildTupleMap() {
  map_built_ = true;
  for (Row& row : build_rows_) {
    Row key;
    key.reserve(key_pairs_.size());
    for (const auto& [l, r] : key_pairs_) key.push_back(row[l]);
    build_[std::move(key)].push_back(std::move(row));
  }
  build_rows_.clear();
}

void HashJoinOperator::BuildBatchTable() {
  table_built_ = true;
  build_key_cols_.clear();
  probe_key_cols_.clear();
  for (const auto& [l, r] : key_pairs_) {
    build_key_cols_.push_back(static_cast<uint32_t>(l));
    probe_key_cols_.push_back(static_cast<uint32_t>(r));
  }
  // Resolve the compiled kernel for this key arity once per Open.
  key_ops_ = &CompiledKeyOps(key_pairs_.size());
  const size_t arity =
      build_rows_.empty() ? left_->columns().size() : build_rows_[0].size();
  build_batch_.Reset(arity);
  for (Row& row : build_rows_) build_batch_.AppendRow(std::move(row));
  build_rows_.clear();
  table_.Reset(build_batch_.physical_rows());
  for (size_t i = 0; i < build_batch_.physical_rows(); ++i) {
    table_.Insert(key_ops_->hash(build_batch_, build_key_cols_.data(),
                                 build_key_cols_.size(),
                                 static_cast<uint32_t>(i)),
                  static_cast<uint32_t>(i));
  }
}

Result<std::optional<Row>> HashJoinOperator::Next() {
  if (!map_built_) BuildTupleMap();
  for (;;) {
    if (current_matches_ != nullptr && match_pos_ < current_matches_->size()) {
      Row out = (*current_matches_)[match_pos_++];
      out.insert(out.end(), current_probe_->begin(), current_probe_->end());
      return std::optional<Row>(std::move(out));
    }
    ESTOCADA_ASSIGN_OR_RETURN(current_probe_, right_->Next());
    if (!current_probe_.has_value()) return std::optional<Row>();
    Row key;
    key.reserve(key_pairs_.size());
    for (const auto& [l, r] : key_pairs_) key.push_back((*current_probe_)[r]);
    auto it = build_.find(key);
    current_matches_ = it == build_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
}

Result<bool> HashJoinOperator::NextBatch(RowBatch* out) {
  if (!table_built_) BuildBatchTable();
  const size_t left_arity = build_batch_.arity();
  const size_t key_arity = build_key_cols_.size();
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(bool more, right_->NextBatch(&probe_));
    if (!more) {
      out->Reset(left_arity);
      return false;
    }
    const size_t right_arity = probe_.arity();
    out->Reset(left_arity + right_arity);
    size_t emitted = 0;
    const size_t n = probe_.size();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = probe_.ActiveIndex(i);
      const uint64_t h =
          key_ops_->hash(probe_, probe_key_cols_.data(), key_arity, p);
      for (uint32_t m = table_.Head(h); m != FlatJoinTable::kNone;
           m = table_.Next(m)) {
        if (!key_ops_->equals(build_batch_, build_key_cols_.data(), m, probe_,
                              probe_key_cols_.data(), key_arity, p)) {
          continue;
        }
        for (size_t c = 0; c < left_arity; ++c) {
          out->column(c).push_back(build_batch_.column(c)[m]);
        }
        for (size_t c = 0; c < right_arity; ++c) {
          out->column(left_arity + c).push_back(probe_.column(c)[p]);
        }
        ++emitted;
      }
    }
    if (emitted == 0) continue;  // no matches in this probe chunk
    out->SetPhysicalRows(emitted);
    return true;
  }
}

BindJoinOperator::BindJoinOperator(OperatorPtr input,
                                   std::vector<size_t> bind_columns,
                                   std::vector<std::string> fetched_columns,
                                   Fetch fetch, std::string target_label)
    : input_(std::move(input)),
      bind_columns_(std::move(bind_columns)),
      fetched_columns_(std::move(fetched_columns)),
      fetch_(std::move(fetch)),
      target_label_(std::move(target_label)) {}

std::vector<std::string> BindJoinOperator::columns() const {
  std::vector<std::string> out = input_->columns();
  for (const std::string& c : fetched_columns_) out.push_back(c);
  return out;
}

std::string BindJoinOperator::label() const {
  return StrCat("BindJoin -> ", target_label_, " [bind: ",
                StrJoin(bind_columns_, ", "), "]");
}

Status BindJoinOperator::Open() {
  cache_.clear();
  current_input_.reset();
  current_matches_ = nullptr;
  match_pos_ = 0;
  fetch_calls_ = 0;
  return input_->Open();
}

Result<std::optional<Row>> BindJoinOperator::Next() {
  for (;;) {
    if (current_matches_ != nullptr && match_pos_ < current_matches_->size()) {
      Row out = *current_input_;
      const Row& fetched = (*current_matches_)[match_pos_++];
      out.insert(out.end(), fetched.begin(), fetched.end());
      return std::optional<Row>(std::move(out));
    }
    ESTOCADA_ASSIGN_OR_RETURN(current_input_, input_->Next());
    if (!current_input_.has_value()) return std::optional<Row>();
    Row binding;
    binding.reserve(bind_columns_.size());
    for (size_t c : bind_columns_) {
      if (c >= current_input_->size()) {
        return Status::OutOfRange(
            StrCat("BindJoin: bind column ", c, " out of range"));
      }
      binding.push_back((*current_input_)[c]);
    }
    auto it = cache_.find(binding);
    if (it == cache_.end()) {
      ++fetch_calls_;
      ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> fetched, fetch_(binding));
      it = cache_.emplace(std::move(binding), std::move(fetched)).first;
    }
    current_matches_ = &it->second;
    match_pos_ = 0;
  }
}

Result<bool> BindJoinOperator::NextBatch(RowBatch* out) {
  const size_t in_arity = input_->columns().size();
  const size_t out_arity = in_arity + fetched_columns_.size();
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&in_));
    if (!more) {
      out->Reset(out_arity);
      return false;
    }
    const size_t n = in_.size();
    // Materialize the binding key per logical row, then fetch the distinct
    // uncached bindings — in one batched call when the target supports it
    // and more than one is missing, else one fetch_ per binding.
    std::vector<Row> bindings(n);
    std::vector<Row> missing;
    std::unordered_set<Row, RowHash> missing_set;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = in_.ActiveIndex(i);
      Row& binding = bindings[i];
      binding.reserve(bind_columns_.size());
      for (size_t c : bind_columns_) {
        if (c >= in_.arity()) {
          return Status::OutOfRange(
              StrCat("BindJoin: bind column ", c, " out of range"));
        }
        binding.push_back(in_.column(c)[p]);
      }
      if (cache_.count(binding) == 0 && missing_set.insert(binding).second) {
        missing.push_back(binding);
      }
    }
    if (batch_fetch_ && missing.size() > 1) {
      fetch_calls_ += missing.size();
      ESTOCADA_ASSIGN_OR_RETURN(std::vector<std::vector<Row>> fetched,
                                batch_fetch_(missing));
      if (fetched.size() != missing.size()) {
        return Status::Internal(
            StrCat("BindJoin: batched fetch returned ", fetched.size(),
                   " result sets for ", missing.size(), " bindings"));
      }
      for (size_t i = 0; i < missing.size(); ++i) {
        cache_.emplace(std::move(missing[i]), std::move(fetched[i]));
      }
    } else {
      for (Row& binding : missing) {
        ++fetch_calls_;
        ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> fetched, fetch_(binding));
        cache_.emplace(std::move(binding), std::move(fetched));
      }
    }
    out->Reset(out_arity);
    size_t emitted = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = in_.ActiveIndex(i);
      const std::vector<Row>& matches = cache_.at(bindings[i]);
      for (const Row& fetched : matches) {
        for (size_t c = 0; c < in_arity; ++c) {
          out->column(c).push_back(in_.column(c)[p]);
        }
        for (size_t c = 0; c < fetched.size(); ++c) {
          out->column(in_arity + c).push_back(fetched[c]);
        }
        ++emitted;
      }
    }
    if (emitted == 0) continue;  // every binding in this chunk had no matches
    out->SetPhysicalRows(emitted);
    return true;
  }
}

UnionAllOperator::UnionAllOperator(std::vector<OperatorPtr> inputs)
    : inputs_(std::move(inputs)) {}

std::vector<std::string> UnionAllOperator::columns() const {
  return inputs_.empty() ? std::vector<std::string>{} : inputs_[0]->columns();
}

std::vector<const Operator*> UnionAllOperator::children() const {
  std::vector<const Operator*> out;
  out.reserve(inputs_.size());
  for (const OperatorPtr& in : inputs_) out.push_back(in.get());
  return out;
}

Status UnionAllOperator::Open() {
  if (inputs_.empty()) {
    return Status::InvalidArgument("UnionAll needs at least one input");
  }
  current_ = 0;
  return inputs_[0]->Open();
}

Result<std::optional<Row>> UnionAllOperator::Next() {
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(std::optional<Row> row,
                              inputs_[current_]->Next());
    if (row.has_value()) return row;
    if (++current_ >= inputs_.size()) return std::optional<Row>();
    ESTOCADA_RETURN_NOT_OK(inputs_[current_]->Open());
  }
}

Result<bool> UnionAllOperator::NextBatch(RowBatch* out) {
  for (;;) {
    ESTOCADA_ASSIGN_OR_RETURN(bool more, inputs_[current_]->NextBatch(out));
    if (more) return true;
    if (++current_ >= inputs_.size()) return false;
    ESTOCADA_RETURN_NOT_OK(inputs_[current_]->Open());
  }
}

// ------------------------------------------------------ Nested / groups --

NestOperator::NestOperator(OperatorPtr input, std::vector<size_t> group_columns,
                           std::string nested_column_name)
    : input_(std::move(input)),
      group_columns_(std::move(group_columns)),
      nested_name_(std::move(nested_column_name)) {}

std::vector<std::string> NestOperator::columns() const {
  std::vector<std::string> in_cols = input_->columns();
  std::vector<std::string> out;
  for (size_t c : group_columns_) {
    out.push_back(c < in_cols.size() ? in_cols[c] : StrCat("c", c));
  }
  out.push_back(nested_name_);
  return out;
}

std::string NestOperator::label() const {
  return StrCat("Nest group=[", StrJoin(group_columns_, ", "), "] as ",
                nested_name_);
}

Status NestOperator::Open() {
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect(input_.get()));
  // Preserve first-seen group order (deterministic output).
  std::unordered_map<Row, size_t, RowHash> group_pos;
  output_.clear();
  std::vector<bool> grouped;
  const size_t in_arity = rows.empty() ? 0 : rows[0].size();
  grouped.assign(in_arity, false);
  for (size_t c : group_columns_) {
    if (!rows.empty() && c >= in_arity) {
      return Status::OutOfRange(StrCat("Nest: group column ", c,
                                       " out of range (arity ", in_arity,
                                       ")"));
    }
    if (c < grouped.size()) grouped[c] = true;
  }
  for (Row& row : rows) {
    Row key;
    key.reserve(group_columns_.size());
    for (size_t c : group_columns_) key.push_back(row[c]);
    Row rest;
    for (size_t i = 0; i < row.size(); ++i) {
      if (!grouped[i]) rest.push_back(row[i]);
    }
    Value rest_value = rest.size() == 1 ? rest[0] : Value::List(rest);
    auto it = group_pos.find(key);
    if (it == group_pos.end()) {
      group_pos.emplace(key, output_.size());
      Row out = key;
      out.push_back(Value::List({rest_value}));
      output_.push_back(std::move(out));
    } else {
      output_[it->second].back().mutable_list().push_back(rest_value);
    }
  }
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Row>> NestOperator::Next() {
  if (pos_ >= output_.size()) return std::optional<Row>();
  return std::optional<Row>(output_[pos_++]);
}

UnnestOperator::UnnestOperator(OperatorPtr input, size_t list_column)
    : input_(std::move(input)), list_column_(list_column) {}

std::string UnnestOperator::label() const {
  return StrCat("Unnest $", list_column_);
}

Status UnnestOperator::Open() {
  current_.reset();
  elem_pos_ = 0;
  return input_->Open();
}

Result<std::optional<Row>> UnnestOperator::Next() {
  for (;;) {
    if (current_.has_value()) {
      const Value& lv = (*current_)[list_column_];
      if (!lv.is_list()) {
        return Status::InvalidArgument(
            StrCat("Unnest: column ", list_column_, " is not a list: ",
                   lv.ToString()));
      }
      if (elem_pos_ < lv.list().size()) {
        Row out = *current_;
        out[list_column_] = lv.list()[elem_pos_++];
        return std::optional<Row>(std::move(out));
      }
      current_.reset();
    }
    ESTOCADA_ASSIGN_OR_RETURN(current_, input_->Next());
    if (!current_.has_value()) return std::optional<Row>();
    if (list_column_ >= current_->size()) {
      return Status::OutOfRange(
          StrCat("Unnest: column ", list_column_, " out of range"));
    }
    elem_pos_ = 0;
  }
}

AggregateOperator::AggregateOperator(OperatorPtr input,
                                     std::vector<size_t> group_columns,
                                     std::vector<AggSpec> aggregates)
    : input_(std::move(input)),
      group_columns_(std::move(group_columns)),
      aggs_(std::move(aggregates)) {}

std::vector<std::string> AggregateOperator::columns() const {
  std::vector<std::string> in_cols = input_->columns();
  std::vector<std::string> out;
  for (size_t c : group_columns_) {
    out.push_back(c < in_cols.size() ? in_cols[c] : StrCat("c", c));
  }
  for (const AggSpec& a : aggs_) out.push_back(a.output_name);
  return out;
}

std::string AggregateOperator::label() const {
  auto fn_name = [](AggFn f) {
    switch (f) {
      case AggFn::kCount: return "count";
      case AggFn::kSum: return "sum";
      case AggFn::kMin: return "min";
      case AggFn::kMax: return "max";
      case AggFn::kAvg: return "avg";
    }
    return "?";
  };
  return StrCat("Aggregate group=[", StrJoin(group_columns_, ", "), "] [",
                StrJoinMapped(aggs_, ", ",
                              [&](const AggSpec& a) {
                                return StrCat(fn_name(a.fn), "($", a.column,
                                              ")");
                              }),
                "]");
}

Status AggregateOperator::Open() {
  ESTOCADA_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect(input_.get()));
  struct Acc {
    int64_t count = 0;    ///< All rows (COUNT(*)).
    int64_t nonnull = 0;  ///< Non-null inputs (AVG denominator).
    double sum = 0;
    bool sum_is_int = true;
    int64_t isum = 0;
    std::optional<Value> min;
    std::optional<Value> max;
  };
  std::unordered_map<Row, size_t, RowHash> group_pos;
  std::vector<Row> keys;
  std::vector<std::vector<Acc>> accs;
  for (const Row& row : rows) {
    Row key;
    key.reserve(group_columns_.size());
    for (size_t c : group_columns_) {
      if (c >= row.size()) {
        return Status::OutOfRange(
            StrCat("Aggregate: group column ", c, " out of range"));
      }
      key.push_back(row[c]);
    }
    auto it = group_pos.find(key);
    size_t gi;
    if (it == group_pos.end()) {
      gi = keys.size();
      group_pos.emplace(key, gi);
      keys.push_back(key);
      accs.emplace_back(aggs_.size());
    } else {
      gi = it->second;
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      Acc& acc = accs[gi][a];
      ++acc.count;
      if (aggs_[a].fn == AggFn::kCount) continue;
      if (aggs_[a].column >= row.size()) {
        return Status::OutOfRange(
            StrCat("Aggregate: column ", aggs_[a].column, " out of range"));
      }
      const Value& v = row[aggs_[a].column];
      if (v.is_null()) continue;
      ++acc.nonnull;
      if (aggs_[a].fn == AggFn::kSum || aggs_[a].fn == AggFn::kAvg) {
        if (!v.is_int() && !v.is_real()) {
          return Status::InvalidArgument(
              StrCat("Aggregate: sum/avg over non-numeric ", v.ToString()));
        }
        acc.sum += v.as_real();
        if (v.is_int()) {
          acc.isum += v.int_value();
        } else {
          acc.sum_is_int = false;
        }
      }
      if (!acc.min || Value::Compare(v, *acc.min) < 0) acc.min = v;
      if (!acc.max || Value::Compare(v, *acc.max) > 0) acc.max = v;
    }
  }
  output_.clear();
  for (size_t gi = 0; gi < keys.size(); ++gi) {
    Row out = keys[gi];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const Acc& acc = accs[gi][a];
      switch (aggs_[a].fn) {
        case AggFn::kCount:
          out.push_back(Value::Int(acc.count));
          break;
        case AggFn::kSum:
          out.push_back(acc.sum_is_int ? Value::Int(acc.isum)
                                       : Value::Real(acc.sum));
          break;
        case AggFn::kAvg:
          out.push_back(acc.nonnull == 0
                            ? Value::Null()
                            : Value::Real(acc.sum /
                                          static_cast<double>(acc.nonnull)));
          break;
        case AggFn::kMin:
          out.push_back(acc.min.value_or(Value::Null()));
          break;
        case AggFn::kMax:
          out.push_back(acc.max.value_or(Value::Null()));
          break;
      }
    }
    output_.push_back(std::move(out));
  }
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Row>> AggregateOperator::Next() {
  if (pos_ >= output_.size()) return std::optional<Row>();
  return std::optional<Row>(output_[pos_++]);
}

}  // namespace estocada::engine
