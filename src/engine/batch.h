#ifndef ESTOCADA_ENGINE_BATCH_H_
#define ESTOCADA_ENGINE_BATCH_H_

#include <cstdint>
#include <vector>

#include "engine/value.h"

namespace estocada::engine {

/// One chunk of the batch-at-a-time execution engine: up to a few thousand
/// rows stored column-major (one `Value` vector per output column) plus an
/// optional *selection vector* — the indices of the rows that are logically
/// present. Filters narrow the selection instead of copying survivors, so
/// a whole pipeline of predicates over one scanned chunk touches each
/// column vector once and moves no row data.
///
/// Invariants: every column vector has exactly `physical_rows()` entries,
/// and when a selection is set each entry is a valid physical index in
/// ascending order (operators rely on the order for deterministic output).
class RowBatch {
 public:
  /// Preferred granularity: big enough to amortize per-batch virtual
  /// dispatch, small enough to keep a chunk's columns cache-resident.
  static constexpr size_t kDefaultRows = 1024;
  /// Upper bound sources aim for; join outputs may exceed it transiently
  /// (a single probe chunk emits all its matches in one batch).
  static constexpr size_t kMaxRows = 4096;

  RowBatch() = default;
  explicit RowBatch(size_t arity) { Reset(arity); }

  /// Clears all rows and the selection, re-shaping to `arity` columns.
  void Reset(size_t arity);

  size_t arity() const { return columns_.size(); }

  /// Rows physically stored in the columns (ignoring the selection).
  size_t physical_rows() const { return physical_rows_; }

  /// Logical row count: selection size when set, else physical rows.
  size_t size() const { return has_sel_ ? sel_.size() : physical_rows_; }
  bool empty() const { return size() == 0; }

  std::vector<Value>& column(size_t c) { return columns_[c]; }
  const std::vector<Value>& column(size_t c) const { return columns_[c]; }

  bool has_selection() const { return has_sel_; }
  const std::vector<uint32_t>& selection() const { return sel_; }
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }
  void ClearSelection() {
    sel_.clear();
    has_sel_ = false;
  }

  /// Physical index of the i-th logical row.
  uint32_t ActiveIndex(size_t i) const {
    return has_sel_ ? sel_[i] : static_cast<uint32_t>(i);
  }

  /// Bulk writers that push straight into `column(c)` call this once at
  /// the end so `physical_rows()` stays consistent.
  void SetPhysicalRows(size_t n) { physical_rows_ = n; }

  /// Appends one row-major tuple (must match `arity()`); ignores any
  /// selection — callers append to fresh batches.
  void AppendRow(const Row& row);
  void AppendRow(Row&& row);

  /// Materializes the i-th logical row as a row-major tuple.
  Row MaterializeRow(size_t i) const;

  /// Appends every logical row to `out` in order (the batch → tuple-vector
  /// bridge used by Collect and the blocking operators).
  void AppendRowsTo(std::vector<Row>* out) const;

  /// Rewrites the columns to contain exactly the selected rows and drops
  /// the selection (used before handing a batch to code that indexes
  /// columns physically).
  void Compact();

 private:
  std::vector<std::vector<Value>> columns_;
  size_t physical_rows_ = 0;
  std::vector<uint32_t> sel_;
  bool has_sel_ = false;
};

}  // namespace estocada::engine

#endif  // ESTOCADA_ENGINE_BATCH_H_
